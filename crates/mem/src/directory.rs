//! Global sub-page holder map.
//!
//! The real ALLCACHE is *directoryless*: a request circulates the ring and
//! whichever cell holds a valid copy answers in passing. The simulator
//! keeps this map purely as an efficiency device — it answers "who holds
//! sub-page S, in what state?" in O(holders) instead of by walking every
//! cache — while all *timing* still flows through the ring model. It is
//! the single source of truth for sub-page coherence state.

use ksr_core::FxHashMap;

use crate::state::SubpageState;

/// Per-sub-page holder list. Cells are few (≤ 1088) and holder lists are
/// short in practice, so a flat vector beats any fancier structure.
#[derive(Debug, Clone, Default)]
pub struct Holders {
    entries: Vec<(usize, SubpageState)>,
}

impl Holders {
    /// State of `cell`'s copy, or `Missing`.
    #[must_use]
    pub fn state_of(&self, cell: usize) -> SubpageState {
        self.entries
            .iter()
            .find(|(c, _)| *c == cell)
            .map_or(SubpageState::Missing, |&(_, s)| s)
    }

    /// Set `cell`'s state; `Missing` removes the entry.
    pub fn set(&mut self, cell: usize, st: SubpageState) {
        match self.entries.iter_mut().find(|(c, _)| *c == cell) {
            Some(e) => {
                if st == SubpageState::Missing {
                    self.entries.retain(|(c, _)| *c != cell);
                } else {
                    e.1 = st;
                }
            }
            None => {
                if st != SubpageState::Missing {
                    self.entries.push((cell, st));
                }
            }
        }
    }

    /// All `(cell, state)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, SubpageState)> + '_ {
        self.entries.iter().copied()
    }

    /// Cells holding a readable copy.
    pub fn readable_cells(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries
            .iter()
            .filter(|(_, s)| s.readable())
            .map(|&(c, _)| c)
    }

    /// The cell holding the sub-page in `Atomic` state, if any.
    #[must_use]
    pub fn atomic_holder(&self) -> Option<usize> {
        self.entries
            .iter()
            .find(|(_, s)| *s == SubpageState::Atomic)
            .map(|&(c, _)| c)
    }

    /// Whether any valid copy exists anywhere.
    #[must_use]
    pub fn any_valid(&self) -> bool {
        self.entries.iter().any(|(_, s)| s.readable())
    }

    /// Whether the list is completely empty (no copies, no place holders).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The global sub-page → holders map.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    map: FxHashMap<u64, Holders>,
}

impl Directory {
    /// Empty directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Holder list for a sub-page (empty list if never seen).
    #[must_use]
    pub fn holders(&self, subpage: u64) -> Option<&Holders> {
        self.map.get(&subpage)
    }

    /// State of `cell`'s copy of `subpage`.
    #[must_use]
    pub fn state_of(&self, subpage: u64, cell: usize) -> SubpageState {
        self.map
            .get(&subpage)
            .map_or(SubpageState::Missing, |h| h.state_of(cell))
    }

    /// Set `cell`'s state for `subpage`.
    pub fn set(&mut self, subpage: u64, cell: usize, st: SubpageState) {
        let h = self.map.entry(subpage).or_default();
        h.set(cell, st);
        if h.is_empty() {
            self.map.remove(&subpage);
        }
    }

    /// Mutable holder list, created on demand.
    pub fn holders_mut(&mut self, subpage: u64) -> &mut Holders {
        self.map.entry(subpage).or_default()
    }

    /// Drop a sub-page's entry entirely if now empty (housekeeping after
    /// in-place mutation through [`Self::holders_mut`]).
    pub fn gc(&mut self, subpage: u64) {
        if self.map.get(&subpage).is_some_and(Holders::is_empty) {
            self.map.remove(&subpage);
        }
    }

    /// Coherence invariant check: at most one writable copy per sub-page,
    /// and no readable copy coexisting with a writable one elsewhere.
    /// Returns the violating sub-page, if any. Used by tests and debug
    /// assertions.
    #[must_use]
    pub fn find_violation(&self) -> Option<u64> {
        for (&sp, h) in &self.map {
            let writers = h.iter().filter(|(_, s)| s.writable()).count();
            let readers = h.iter().filter(|(_, s)| s.readable()).count();
            if writers > 1 || (writers == 1 && readers > 1) {
                return Some(sp);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut d = Directory::new();
        assert_eq!(d.state_of(5, 0), SubpageState::Missing);
        d.set(5, 0, SubpageState::Exclusive);
        assert_eq!(d.state_of(5, 0), SubpageState::Exclusive);
        assert_eq!(d.state_of(5, 1), SubpageState::Missing);
    }

    #[test]
    fn setting_missing_removes() {
        let mut d = Directory::new();
        d.set(5, 0, SubpageState::Shared);
        d.set(5, 0, SubpageState::Missing);
        assert!(d.holders(5).is_none(), "empty holder lists are dropped");
    }

    #[test]
    fn atomic_holder_found() {
        let mut d = Directory::new();
        d.set(9, 2, SubpageState::Shared);
        assert_eq!(d.holders(9).unwrap().atomic_holder(), None);
        d.set(9, 2, SubpageState::Missing);
        d.set(9, 3, SubpageState::Atomic);
        assert_eq!(d.holders(9).unwrap().atomic_holder(), Some(3));
    }

    #[test]
    fn readable_cells_excludes_placeholders() {
        let mut d = Directory::new();
        d.set(1, 0, SubpageState::Shared);
        d.set(1, 1, SubpageState::Invalid);
        let cells: Vec<_> = d.holders(1).unwrap().readable_cells().collect();
        assert_eq!(cells, vec![0]);
        assert!(d.holders(1).unwrap().any_valid());
    }

    #[test]
    fn violation_detection() {
        let mut d = Directory::new();
        d.set(1, 0, SubpageState::Shared);
        d.set(1, 1, SubpageState::Shared);
        assert_eq!(d.find_violation(), None);
        d.set(1, 2, SubpageState::Exclusive);
        assert_eq!(d.find_violation(), Some(1));
        d.set(1, 0, SubpageState::Missing);
        d.set(1, 1, SubpageState::Invalid);
        assert_eq!(
            d.find_violation(),
            None,
            "placeholders may coexist with a writer"
        );
    }

    #[test]
    fn two_writable_is_a_violation() {
        let mut d = Directory::new();
        d.set(7, 0, SubpageState::Exclusive);
        d.set(7, 1, SubpageState::Atomic);
        assert_eq!(d.find_violation(), Some(7));
    }
}

//! Sub-page coherence states.
//!
//! §2: "Each sub-page can be in one of shared, exclusive, invalid, or
//! atomic state. The atomic state is similar to the exclusive state except
//! that a node succeeds in getting atomic access to a sub-page only if that
//! sub-page is not already in an atomic state."
//!
//! A sub-page slot in a local-cache page descriptor can additionally be
//! *missing* (never brought in since the page was allocated): the KSR
//! distinguishes an allocated-but-invalid **place holder** — which
//! read-snarfing and poststore refill for free — from a slot that was never
//! touched.

/// Coherence state of one 128 B sub-page in one cell's local cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubpageState {
    /// No copy and no place holder (page allocated, sub-page never seen).
    #[default]
    Missing,
    /// Place holder present but contents stale. Eligible for read-snarfing
    /// and poststore refill.
    Invalid,
    /// Valid read-only copy; other cells may also hold `Shared` copies.
    Shared,
    /// The only valid copy; read/write permitted.
    Exclusive,
    /// Exclusive plus the sub-page lock held via `get_sub_page`.
    Atomic,
}

impl SubpageState {
    /// Whether this copy can satisfy a read.
    #[must_use]
    pub fn readable(self) -> bool {
        matches!(self, Self::Shared | Self::Exclusive | Self::Atomic)
    }

    /// Whether this copy can satisfy a write without a coherence action.
    #[must_use]
    pub fn writable(self) -> bool {
        matches!(self, Self::Exclusive | Self::Atomic)
    }

    /// Whether this slot holds a place holder that snarfing/poststore can
    /// refill.
    #[must_use]
    pub fn is_placeholder(self) -> bool {
        matches!(self, Self::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_matrix() {
        use SubpageState::*;
        assert!(!Missing.readable() && !Missing.writable());
        assert!(!Invalid.readable() && !Invalid.writable());
        assert!(Shared.readable() && !Shared.writable());
        assert!(Exclusive.readable() && Exclusive.writable());
        assert!(Atomic.readable() && Atomic.writable());
    }

    #[test]
    fn only_invalid_is_placeholder() {
        use SubpageState::*;
        assert!(Invalid.is_placeholder());
        for s in [Missing, Shared, Exclusive, Atomic] {
            assert!(!s.is_placeholder());
        }
    }

    #[test]
    fn default_is_missing() {
        assert_eq!(SubpageState::default(), SubpageState::Missing);
    }
}

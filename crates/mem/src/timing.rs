//! Cache and controller timing constants.
//!
//! Calibration targets, all from the paper (Figure 1 and §3.1):
//!
//! * sub-cache hit: **2 cycles** (measured == published);
//! * local-cache hit: **18 cycles**, "writes slightly more expensive than
//!   reads" (replacement cost in the sub-cache);
//! * remote (ring) access: **175 cycles** end-to-end at idle, writes again
//!   slightly dearer;
//! * access at a 2 KB-block-allocating stride: **+50%** over a local-cache
//!   hit;
//! * remote access at a 16 KB-page-allocating stride: **+60%** over a
//!   plain remote access.
//!
//! The ring model contributes `circumference + slot-wait` (141 cycles at
//! idle for the 34-station leaf ring); the remainder of the 175 is the
//! controller overhead constant here.

use ksr_core::time::Cycles;

/// Fixed controller/SRAM costs for one cell's memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheTiming {
    /// Sub-cache read hit.
    pub subcache_read: Cycles,
    /// Sub-cache write hit (slightly dearer: replacement bookkeeping).
    pub subcache_write: Cycles,
    /// Local-cache read hit (includes the 64 B sub-block fill).
    pub localcache_read: Cycles,
    /// Local-cache write hit.
    pub localcache_write: Cycles,
    /// Extra cycles when the access allocates a fresh 2 KB sub-cache block
    /// (calibrated to the paper's "+50% at block-allocating strides").
    pub block_alloc_penalty: Cycles,
    /// Extra cycles when the access allocates a fresh 16 KB local-cache
    /// page (calibrated to "+60% for page-allocating remote strides").
    pub page_alloc_penalty: Cycles,
    /// Cell-controller overhead bracketing a ring transaction (local
    /// lookup + remote cell service + install), added to the fabric time.
    pub remote_overhead: Cycles,
    /// Additional cycles for remote *write* transactions.
    pub remote_write_extra: Cycles,
    /// Extra processing for `get_sub_page` atomic acquisition.
    pub atomic_overhead: Cycles,
    /// Processor stall for a `poststore` ("stalled until the data is
    /// written out to the second level cache", §3.3.3) before the update
    /// packet is launched.
    pub poststore_issue: Cycles,
    /// Processor cost to issue a non-blocking `prefetch`.
    pub prefetch_issue: Cycles,
}

impl CacheTiming {
    /// KSR-1 calibration. With the 34-station leaf ring (136-cycle
    /// rotation + ~5-cycle average slot alignment), `remote_overhead = 34`
    /// lands an idle remote read at the published 175 cycles.
    #[must_use]
    pub fn ksr1() -> Self {
        Self {
            subcache_read: 2,
            subcache_write: 3,
            localcache_read: 18,
            localcache_write: 20,
            block_alloc_penalty: 9,
            page_alloc_penalty: 105,
            remote_overhead: 34,
            remote_write_extra: 8,
            atomic_overhead: 10,
            poststore_issue: 24,
            prefetch_issue: 5,
        }
    }

    /// Sequent Symmetry flavour: a bus-based machine with small coherent
    /// caches; only *relative* behaviour matters for §3.2.3.
    #[must_use]
    pub fn symmetry() -> Self {
        Self {
            subcache_read: 1,
            subcache_write: 1,
            localcache_read: 4,
            localcache_write: 4,
            block_alloc_penalty: 2,
            page_alloc_penalty: 8,
            remote_overhead: 6,
            remote_write_extra: 2,
            atomic_overhead: 4,
            poststore_issue: 6,
            prefetch_issue: 2,
        }
    }

    /// BBN Butterfly flavour: no caches; the constants that remain
    /// meaningful are the controller overheads around MIN transactions.
    #[must_use]
    pub fn butterfly() -> Self {
        Self {
            subcache_read: 1,
            subcache_write: 1,
            localcache_read: 1,
            localcache_write: 1,
            block_alloc_penalty: 0,
            page_alloc_penalty: 0,
            remote_overhead: 4,
            remote_write_extra: 0,
            atomic_overhead: 4,
            poststore_issue: 1,
            prefetch_issue: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ksr1_hits_published_numbers() {
        let t = CacheTiming::ksr1();
        assert_eq!(t.subcache_read, 2, "published sub-cache latency");
        assert_eq!(t.localcache_read, 18, "published local-cache latency");
        // Idle remote read: overhead + ring (136 + 5 half-spacing) = 175.
        assert_eq!(t.remote_overhead + 136 + 5, 175, "published ring latency");
    }

    #[test]
    fn writes_cost_more_than_reads() {
        {
            let t = CacheTiming::ksr1();
            assert!(t.subcache_write > t.subcache_read);
            assert!(t.localcache_write > t.localcache_read);
            assert!(t.remote_write_extra > 0);
        }
    }

    #[test]
    fn block_alloc_is_roughly_half_a_localcache_hit() {
        let t = CacheTiming::ksr1();
        let ratio = t.block_alloc_penalty as f64 / t.localcache_read as f64;
        assert!((0.4..=0.6).contains(&ratio), "+50% target, got {ratio}");
    }

    #[test]
    fn page_alloc_is_roughly_sixty_percent_of_remote() {
        let t = CacheTiming::ksr1();
        let ratio = t.page_alloc_penalty as f64 / 175.0;
        assert!((0.5..=0.7).contains(&ratio), "+60% target, got {ratio}");
    }
}

//! The ALLCACHE coherence engine.
//!
//! This module ties the per-cell caches, the global directory, the SVA
//! backing store, and the interconnect fabric into one sequentially
//! consistent memory system with the KSR-1's invalidation protocol:
//!
//! * read miss → request circulates the ring, any valid holder responds,
//!   requester installs `Shared` (the previous `Exclusive` owner demotes to
//!   `Shared`); **read-snarfing** refills every invalid place holder the
//!   response passes;
//! * write to a non-writable copy → read-exclusive/upgrade transaction,
//!   all other copies demote to place holders (`Invalid`);
//! * `get_sub_page` → like a write miss but lands in `Atomic`; it *fails*
//!   if another cell already holds the sub-page atomic, and ordinary
//!   accesses by other cells block until `release_sub_page`;
//! * `prefetch` → non-blocking fetch into the local cache;
//! * `poststore` → update broadcast: every place holder becomes a valid
//!   `Shared` copy, *including the writer's* — the exact semantics that
//!   §3.3.3 found can hurt (the next writer pays an upgrade).
//!
//! **Hot-spot serialization**: transactions on the *same* sub-page
//! serialize through a per-sub-page busy time (same-location requests
//! "get serialized on the ring and the pipelining is of no help", §3.2.2),
//! while transactions on distinct sub-pages enjoy the full pipelining of
//! the slotted ring.
//!
//! **Eager-commit approximation**: state transitions and data values
//! commit when a transaction is processed, while its full latency is still
//! charged before the issuing processor may proceed. Conflicting
//! same-sub-page transactions are ordered by the busy table, so lock and
//! barrier handoffs are correctly ordered; the residual optimism window
//! for unrelated readers is bounded by one transaction latency
//! (≤ ~175 cycles), far below the phenomena measured in the paper.

use ksr_core::time::Cycles;
use ksr_core::trace::{TraceEvent, TraceState, Tracer};
use ksr_core::{FxHashMap, FxHashSet, Result, XorShift64};
use ksr_net::{Fabric, PacketKind, Transit};

use crate::directory::Directory;
use crate::geometry::{subpage_of, MemGeometry, SUBPAGES_PER_PAGE, SUBPAGE_BYTES};
use crate::localcache::{LocalCache, PageAlloc};
use crate::perfmon::PerfMon;
use crate::state::SubpageState;
use crate::subcache::{SubCache, SubCacheFill};
use crate::sva::SvaStore;
use crate::timing::CacheTiming;

/// A processor-issued memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Load.
    Read,
    /// Store.
    Write,
    /// `get_sub_page`: acquire the sub-page in atomic state.
    GetSubPage,
    /// `release_sub_page`: drop the atomic state.
    ReleaseSubPage,
    /// `prefetch`: non-blocking fetch into the local cache.
    Prefetch {
        /// Fetch in exclusive (write-ready) state.
        exclusive: bool,
    },
    /// `poststore`: broadcast the updated sub-page to all place holders.
    Poststore,
    /// A native atomic read-modify-write (one fabric transaction). The
    /// KSR-1 has no such instruction — its fetch-and-Φ is synthesised
    /// from `get_sub_page` — but the §3.2.3 comparison machines
    /// (Symmetry, Butterfly) do, and their barrier results depend on it.
    AtomicRmw,
    /// **Extension** (§4 wish list): prefetch from the local cache into
    /// the sub-cache — "given that there is roughly an order of magnitude
    /// difference between their access times". Non-blocking; a no-op if
    /// the sub-page is not locally readable.
    SubcachePrefetch,
}

/// Result of presenting an operation to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The operation completed; the processor may continue at `done_at`.
    Done {
        /// Completion time.
        done_at: Cycles,
    },
    /// A `get_sub_page` lost to an existing atomic holder.
    AtomicFailed {
        /// When the rejection came back.
        done_at: Cycles,
    },
    /// An ordinary access hit a sub-page held atomic by another cell; the
    /// caller should park until the sub-page is released and retry.
    BlockedOnAtomic {
        /// The locked sub-page.
        subpage: u64,
    },
}

impl Outcome {
    /// Completion time of a finished (or failed) operation.
    ///
    /// # Panics
    /// Panics on [`Outcome::BlockedOnAtomic`] — callers that can receive
    /// that outcome must use [`Outcome::try_done_at`] (or park and retry,
    /// as the machine coordinator does) instead of asserting.
    #[must_use]
    pub fn done_at(&self) -> Cycles {
        self.try_done_at().unwrap_or_else(|e| {
            panic!("invariant (operation cannot block on an atomic sub-page) broken: {e}")
        })
    }

    /// Completion time of a finished (or failed) operation, or a typed
    /// [`ksr_core::Error::Protocol`] for an access blocked on a sub-page
    /// another cell holds atomic.
    pub fn try_done_at(&self) -> Result<Cycles> {
        match self {
            Self::Done { done_at } | Self::AtomicFailed { done_at } => Ok(*done_at),
            Self::BlockedOnAtomic { subpage } => Err(ksr_core::Error::Protocol(format!(
                "access blocked on sub-page {subpage} held atomic by another cell: \
                 no completion time exists until release_sub_page"
            ))),
        }
    }
}

/// A visibility event on a watched sub-page (used by the machine layer to
/// wake fast-forwarded spinners at the correct virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// The sub-page whose value or lock state changed.
    pub subpage: u64,
    /// When the change becomes visible.
    pub at: Cycles,
}

/// What a coherence fetch wants to end up holding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Want {
    Shared,
    Exclusive,
    Atomic,
}

/// A deliberately seeded protocol bug, used to validate that the
/// `ksr-verify` coherence checker actually catches broken protocols.
/// Never enabled on a measurement machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolFault {
    /// Exclusive/atomic fetches skip invalidating the other copies, so
    /// two writable copies of one sub-page can coexist.
    MissedInvalidation,
    /// Read fetches skip demoting the `Exclusive` owner, so a `Shared`
    /// copy coexists with an `Exclusive` one.
    MissedDemotion,
}

/// Protocol feature toggles for ablation studies (everything on matches
/// the real KSR-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolOptions {
    /// Read-snarfing: a read response refills every invalid place holder
    /// it passes. §3.2.2 credits this for the cheap global-flag wake-ups.
    pub read_snarfing: bool,
    /// Whether `poststore` actually broadcasts (off = the instruction is
    /// a cheap no-op, so algorithms fall back to invalidate-and-refetch
    /// and read-snarfing carries the wake-up alone).
    pub poststore: bool,
    /// Seeded protocol bug for checker validation (`None` = the correct
    /// protocol).
    pub fault: Option<ProtocolFault>,
}

impl Default for ProtocolOptions {
    fn default() -> Self {
        Self {
            read_snarfing: true,
            poststore: true,
            fault: None,
        }
    }
}

/// The complete memory system of one simulated machine.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    timing: CacheTiming,
    fabric: Fabric,
    subcaches: Vec<SubCache>,
    localcaches: Vec<LocalCache>,
    dir: Directory,
    subpage_busy: FxHashMap<u64, Cycles>,
    pending_fill: FxHashMap<(usize, u64), Cycles>,
    /// Sub-pages whose last cached copy was evicted. A real COMA never
    /// loses data: the ALLCACHE engine moves the page to some other
    /// cell's cache, so re-fetching a spilled sub-page costs a full ring
    /// transaction — the "overflowing the local-cache causes remote
    /// accesses" effect behind the paper's CG and IS low-processor-count
    /// behaviour.
    spilled: FxHashSet<u64>,
    /// **Extension** (§4 wish list): address ranges with sub-caching
    /// selectively turned off — streaming data bypasses the sub-cache so
    /// it cannot thrash the hot working set out of it.
    uncached: Vec<(u64, u64)>,
    options: ProtocolOptions,
    data: SvaStore,
    perf: Vec<PerfMon>,
    watched: FxHashMap<u64, usize>,
    events: Vec<MemEvent>,
    /// Reusable buffer for the holder snapshots `coherence_fetch` and
    /// `poststore` take before mutating directory state. Swapped out
    /// during use (never borrowed across a `&mut self` call) and kept
    /// around so the request path stops allocating a fresh `Vec` per
    /// invalidation/snarf sweep.
    scratch_holders: Vec<(usize, SubpageState)>,
    coherent: bool,
    n_cells: usize,
    tracer: Tracer,
}

/// Mirror a directory state into the fabric-agnostic trace vocabulary.
fn trace_state(s: SubpageState) -> TraceState {
    match s {
        SubpageState::Missing => TraceState::Missing,
        SubpageState::Invalid => TraceState::Invalid,
        SubpageState::Shared => TraceState::Shared,
        SubpageState::Exclusive => TraceState::Exclusive,
        SubpageState::Atomic => TraceState::Atomic,
    }
}

impl MemorySystem {
    /// Build a memory system for `n_cells` processors over `fabric`.
    /// `seed` drives the random replacement policies.
    pub fn new(
        geom: MemGeometry,
        timing: CacheTiming,
        fabric: Fabric,
        n_cells: usize,
        seed: u64,
    ) -> Result<Self> {
        Self::with_options(
            geom,
            timing,
            fabric,
            n_cells,
            seed,
            ProtocolOptions::default(),
        )
    }

    /// Like [`Self::new`] with explicit [`ProtocolOptions`] (ablations).
    pub fn with_options(
        geom: MemGeometry,
        timing: CacheTiming,
        fabric: Fabric,
        n_cells: usize,
        seed: u64,
        options: ProtocolOptions,
    ) -> Result<Self> {
        geom.validate()?;
        let root = XorShift64::new(seed);
        let coherent = fabric.has_coherent_caches();
        Ok(Self {
            timing,
            fabric,
            subcaches: (0..n_cells)
                .map(|c| SubCache::new(&geom, root.derive(2 * c as u64)))
                .collect(),
            localcaches: (0..n_cells)
                .map(|c| LocalCache::new(&geom, root.derive(2 * c as u64 + 1)))
                .collect(),
            dir: Directory::new(),
            subpage_busy: FxHashMap::default(),
            pending_fill: FxHashMap::default(),
            spilled: FxHashSet::default(),
            uncached: Vec::new(),
            options,
            data: SvaStore::new(),
            perf: vec![PerfMon::default(); n_cells],
            watched: FxHashMap::default(),
            events: Vec::new(),
            scratch_holders: Vec::new(),
            coherent,
            n_cells,
            tracer: Tracer::disabled(),
        })
    }

    /// Attach a tracer to the memory system *and* its fabric. Coherence
    /// transitions, snarfs, invalidations, and atomic rejections emit
    /// from here; slot grants emit from the fabric.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.fabric.set_tracer(&tracer);
        self.tracer = tracer;
    }

    /// Set a sub-page's directory state in one cell, emitting a
    /// [`TraceEvent::Coherence`] when the state actually changes. *Every*
    /// transition routes through here — including warm-up (stamped at
    /// cycle 0) and evictions — so a checking sink shadowing the event
    /// stream reconstructs the directory exactly.
    fn set_state(&mut self, sp: u64, cell: usize, to: SubpageState, at: Cycles) {
        let from = self.dir.state_of(sp, cell);
        if from != to {
            self.tracer.emit_with(|| TraceEvent::Coherence {
                at,
                cell,
                subpage: sp,
                from: trace_state(from),
                to: trace_state(to),
            });
        }
        self.dir.set(sp, cell, to);
    }

    /// Number of processor cells.
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// The data plane (authoritative bytes).
    pub fn data_mut(&mut self) -> &mut SvaStore {
        &mut self.data
    }

    /// Performance-monitor block of one cell.
    #[must_use]
    pub fn perfmon(&self, cell: usize) -> &PerfMon {
        &self.perf[cell]
    }

    /// Machine-wide sum of all performance monitors.
    #[must_use]
    pub fn perfmon_total(&self) -> PerfMon {
        self.perf
            .iter()
            .fold(PerfMon::default(), |acc, p| acc.merged(*p))
    }

    /// The interconnect (for its counters).
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Directory access for invariant checks in tests.
    #[must_use]
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Start emitting [`MemEvent`]s for a sub-page (ref-counted).
    pub fn watch(&mut self, subpage: u64) {
        *self.watched.entry(subpage).or_insert(0) += 1;
    }

    /// Stop watching a sub-page (one reference).
    pub fn unwatch(&mut self, subpage: u64) {
        if let Some(n) = self.watched.get_mut(&subpage) {
            *n -= 1;
            if *n == 0 {
                self.watched.remove(&subpage);
            }
        }
    }

    /// Drain pending visibility events.
    pub fn take_events(&mut self) -> Vec<MemEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drain pending visibility events into a caller-owned buffer,
    /// keeping both buffers' capacity. The coordinator calls this once
    /// per scheduled request; unlike [`Self::take_events`] it stops
    /// allocating once the buffers reach their high-water mark.
    pub fn drain_events_into(&mut self, out: &mut Vec<MemEvent>) {
        out.append(&mut self.events);
    }

    fn emit(&mut self, subpage: u64, at: Cycles) {
        if self.watched.contains_key(&subpage) {
            self.events.push(MemEvent { subpage, at });
        }
    }

    /// Pre-install a range of addresses as `Exclusive` in `cell`'s local
    /// cache with no simulated cost. Stands in for untimed setup (e.g. the
    /// OS zeroing freshly allocated pages, or a workload's untimed
    /// initialisation phase). Evictions proceed normally so capacity
    /// behaviour stays honest.
    pub fn warm(&mut self, cell: usize, addr: u64, len: u64) {
        if !self.coherent {
            return;
        }
        let first = subpage_of(addr);
        let last = subpage_of(addr + len.saturating_sub(1));
        for sp in first..=last {
            self.ensure_page_costed(cell, sp * SUBPAGE_BYTES, 0);
            // Steal the sub-page from whoever holds it.
            let holders: Vec<(usize, SubpageState)> = self
                .dir
                .holders(sp)
                .map(|h| h.iter().collect())
                .unwrap_or_default();
            for (c, s) in holders {
                if c != cell && s != SubpageState::Missing {
                    self.set_state(sp, c, SubpageState::Missing, 0);
                    self.subcaches[c].invalidate_subpage(sp);
                }
            }
            self.set_state(sp, cell, SubpageState::Exclusive, 0);
            self.spilled.remove(&sp);
        }
    }

    /// Present one operation. `now` is the issuing processor's local time.
    pub fn access(&mut self, cell: usize, addr: u64, op: MemOp, now: Cycles) -> Outcome {
        assert!(cell < self.n_cells, "cell index out of range");
        if !self.coherent {
            return self.access_dancehall(cell, addr, op, now);
        }
        let sp = subpage_of(addr);
        match op {
            MemOp::Read => self.access_data(cell, addr, sp, false, now),
            // A native RMW behaves like a write plus the atomic-unit
            // overhead; the caller performs the data-plane update.
            MemOp::Write | MemOp::AtomicRmw => self.access_data(cell, addr, sp, true, now),
            MemOp::GetSubPage => self.get_sub_page(cell, sp, now),
            MemOp::ReleaseSubPage => self.release_sub_page(cell, sp, now),
            MemOp::Prefetch { exclusive } => self.prefetch(cell, sp, exclusive, now),
            MemOp::Poststore => self.poststore(cell, sp, now),
            MemOp::SubcachePrefetch => self.subcache_prefetch(cell, addr, sp, now),
        }
    }

    /// Mark `[addr, addr+len)` as not sub-cached (§4 extension). Applies
    /// to subsequent accesses on every cell.
    pub fn set_uncached(&mut self, addr: u64, len: u64) {
        self.uncached.push((addr, addr + len));
    }

    fn is_uncached(&self, addr: u64) -> bool {
        self.uncached
            .iter()
            .any(|&(lo, hi)| addr >= lo && addr < hi)
    }

    /// §4-extension instruction: pull a locally readable sub-page's
    /// sub-blocks into the sub-cache without stalling.
    fn subcache_prefetch(&mut self, cell: usize, addr: u64, sp: u64, now: Cycles) -> Outcome {
        let done_at = now + self.timing.prefetch_issue;
        if self.dir.state_of(sp, cell).readable() && !self.is_uncached(addr) {
            // Touch both sub-blocks of the sub-page.
            let base = sp * SUBPAGE_BYTES;
            for half in 0..2 {
                if let SubCacheFill::AllocatedBlock { .. } =
                    self.subcaches[cell].touch(base + half * 64)
                {
                    self.perf[cell].block_allocations += 1;
                }
            }
        }
        Outcome::Done { done_at }
    }

    // ----- coherent read/write -------------------------------------------------

    fn access_data(
        &mut self,
        cell: usize,
        addr: u64,
        sp: u64,
        is_write: bool,
        now: Cycles,
    ) -> Outcome {
        if let Some(owner) = self.dir.holders(sp).and_then(|h| h.atomic_holder()) {
            if owner != cell {
                return Outcome::BlockedOnAtomic { subpage: sp };
            }
        }
        let st = self.dir.state_of(sp, cell);
        let perm = if is_write {
            st.writable()
        } else {
            st.readable()
        };
        let uncached = self.is_uncached(addr);

        // Fast path: sub-cache hit with sufficient permission.
        if perm && !uncached && self.subcaches[cell].contains(addr) {
            self.perf[cell].subcache_hits += 1;
            let cost = if is_write {
                self.timing.subcache_write
            } else {
                self.timing.subcache_read
            };
            let done_at = now + cost;
            if is_write {
                self.emit(sp, done_at);
            }
            return Outcome::Done { done_at };
        }
        self.perf[cell].subcache_misses += 1;

        // If a prefetch for this sub-page is in flight, ride it.
        let mut t = now;
        if let Some(ready) = self.pending_fill.remove(&(cell, sp)) {
            t = t.max(ready);
        }

        if perm {
            self.perf[cell].localcache_hits += 1;
            t += if is_write {
                self.timing.localcache_write
            } else {
                self.timing.localcache_read
            };
        } else {
            self.perf[cell].localcache_misses += 1;
            let want = if is_write {
                Want::Exclusive
            } else {
                Want::Shared
            };
            t = self.coherence_fetch(cell, sp, t, want);
        }

        // Fill the sub-cache (block allocation may add the §3.1 "+50%") —
        // unless the range has sub-caching turned off (§4 extension).
        if !uncached {
            if let SubCacheFill::AllocatedBlock { .. } = self.subcaches[cell].touch(addr) {
                t += self.timing.block_alloc_penalty;
                self.perf[cell].block_allocations += 1;
            }
        }
        if is_write {
            self.emit(sp, t);
        }
        // Single-writer invariant — suspended when a fault is seeded on
        // purpose, so the checker (not this assert) is what reports it.
        debug_assert!(
            self.options.fault.is_some() || self.dir.find_violation().is_none(),
            "ALLCACHE invariant (at most one writable copy, no Shared beside \
             Exclusive) broken: {:?}",
            self.dir.find_violation()
        );
        Outcome::Done { done_at: t }
    }

    /// One ring (or bus) coherence transaction ending with `cell` holding
    /// `sp` in the `want` state. Returns the completion time.
    fn coherence_fetch(&mut self, cell: usize, sp: u64, t_req: Cycles, want: Want) -> Cycles {
        // Same-sub-page transactions serialize (hot-spot behaviour).
        let t0 = t_req.max(self.subpage_busy.get(&sp).copied().unwrap_or(0));
        // Snapshot the holder set into the reusable scratch buffer (the
        // sweeps below mutate the directory while iterating it).
        let mut holders = std::mem::take(&mut self.scratch_holders);
        holders.clear();
        if let Some(h) = self.dir.holders(sp) {
            holders.extend(h.iter());
        }
        let any_valid = holders.iter().any(|(_, s)| s.readable());

        let done = if !any_valid {
            let spilled = self.spilled.remove(&sp);
            let mut t = if spilled {
                // The last copy was evicted earlier: the ALLCACHE engine
                // holds it in some other cell's cache, a full ring fetch
                // away.
                let timing =
                    self.fabric
                        .transact(t0, cell, Transit::Local, sp, PacketKind::ReadData);
                self.perf[cell].ring_transactions += 1;
                self.perf[cell].ring_wait_cycles += timing.slot_wait;
                let done = timing.response_at + self.timing.remote_overhead;
                self.perf[cell].ring_latency_cycles += done - t_req;
                done
            } else {
                // Genuine first touch: the OS maps the page at the
                // requester, no ring traffic.
                t0 + self.timing.localcache_write
            };
            if self.ensure_page_costed(cell, sp * SUBPAGE_BYTES, t) {
                t += self.timing.page_alloc_penalty;
                self.perf[cell].page_allocations += 1;
            }
            let final_state = match want {
                Want::Shared => SubpageState::Exclusive, // sole copy
                Want::Exclusive => SubpageState::Exclusive,
                Want::Atomic => SubpageState::Atomic,
            };
            self.set_state(sp, cell, final_state, t);
            t
        } else {
            let transit = self.transit_for(cell, &holders);
            let self_shared = self.dir.state_of(sp, cell) == SubpageState::Shared;
            let kind = match want {
                Want::Shared => PacketKind::ReadData,
                Want::Exclusive if self_shared => PacketKind::Invalidate,
                Want::Exclusive => PacketKind::ReadExclusive,
                Want::Atomic => PacketKind::GetSubPage,
            };
            let timing = self.fabric.transact(t0, cell, transit, sp, kind);
            self.perf[cell].ring_transactions += 1;
            if matches!(transit, Transit::CrossRing { .. }) {
                // Golab RMR accounting: the packet left the requester's
                // leaf ring (LCA above level 0), so this is a remote
                // memory reference in the DSM/NUMA cost model.
                self.perf[cell].remote_references += 1;
            }
            self.perf[cell].ring_wait_cycles += timing.slot_wait;
            let mut t = timing.response_at + self.timing.remote_overhead;
            if want != Want::Shared {
                t += self.timing.remote_write_extra;
            }
            if self.ensure_page_costed(cell, sp * SUBPAGE_BYTES, t) {
                t += self.timing.page_alloc_penalty;
                self.perf[cell].page_allocations += 1;
            }
            self.perf[cell].ring_latency_cycles += t - t_req;
            let fault = self.options.fault;

            match want {
                Want::Shared => {
                    // The old owner demotes *first*: no point in the event
                    // stream may show a Shared copy beside a writable one.
                    for (c, s) in &holders {
                        if *s == SubpageState::Exclusive
                            && fault != Some(ProtocolFault::MissedDemotion)
                        {
                            self.set_state(sp, *c, SubpageState::Shared, t);
                        }
                    }
                    // Read-snarfing: place holders refill for free.
                    for (c, s) in &holders {
                        if *s == SubpageState::Invalid && self.options.read_snarfing {
                            self.set_state(sp, *c, SubpageState::Shared, t);
                            self.perf[*c].snarfs += 1;
                            let c = *c;
                            self.tracer.emit_with(|| TraceEvent::Snarf {
                                at: t,
                                cell: c,
                                subpage: sp,
                            });
                        }
                    }
                    self.set_state(sp, cell, SubpageState::Shared, t);
                }
                Want::Exclusive | Want::Atomic => {
                    // The seeded MissedInvalidation fault leaves every
                    // other copy valid — the two-writable-copies bug the
                    // ksr-verify checker must catch.
                    let skip = fault == Some(ProtocolFault::MissedInvalidation);
                    for (c, s) in &holders {
                        if !skip && *c != cell && *s != SubpageState::Missing {
                            self.set_state(sp, *c, SubpageState::Invalid, t);
                            self.subcaches[*c].invalidate_subpage(sp);
                            self.perf[*c].invalidations_received += 1;
                            let c = *c;
                            self.tracer.emit_with(|| TraceEvent::Invalidation {
                                at: t,
                                cell: c,
                                subpage: sp,
                            });
                        }
                    }
                    let st = if want == Want::Atomic {
                        SubpageState::Atomic
                    } else {
                        SubpageState::Exclusive
                    };
                    self.set_state(sp, cell, st, t);
                }
            }
            t
        };
        self.scratch_holders = holders;
        self.subpage_busy.insert(sp, done);
        done
    }

    /// Transit scope for a transaction given the current holder set.
    fn transit_for(&self, cell: usize, holders: &[(usize, SubpageState)]) -> Transit {
        self.transit_for_iter(cell, holders.iter().copied())
    }

    /// [`Self::transit_for`] reading the directory in place — for call
    /// sites that don't otherwise need a holder snapshot, so the request
    /// path stays allocation-free.
    fn transit_for_dir(&self, cell: usize, sp: u64) -> Transit {
        self.transit_for_iter(
            cell,
            self.dir.holders(sp).into_iter().flat_map(|h| h.iter()),
        )
    }

    fn transit_for_iter(
        &self,
        cell: usize,
        holders: impl Iterator<Item = (usize, SubpageState)>,
    ) -> Transit {
        match &self.fabric {
            Fabric::Ring(h) => {
                let my_leaf = h.leaf_of(cell);
                let mut first_remote = None;
                for (c, s) in holders {
                    if s.readable() {
                        let leaf = h.leaf_of(c);
                        if leaf == my_leaf {
                            return Transit::Local;
                        }
                        first_remote.get_or_insert(leaf);
                    }
                }
                first_remote.map_or(Transit::Local, |dst_leaf| Transit::CrossRing { dst_leaf })
            }
            _ => Transit::Local,
        }
    }

    /// Allocate the page frame for `addr` in `cell` if needed; purge any
    /// victim (eviction transitions are stamped `at`). Returns whether an
    /// allocation happened.
    fn ensure_page_costed(&mut self, cell: usize, addr: u64, at: Cycles) -> bool {
        let dir = &self.dir;
        let alloc = self.localcaches[cell].ensure_page_with(addr, |page| {
            let first = page * SUBPAGES_PER_PAGE as u64;
            (first..first + SUBPAGES_PER_PAGE as u64)
                .all(|s| dir.state_of(s, cell) != SubpageState::Atomic)
        });
        match alloc {
            PageAlloc::AlreadyPresent => false,
            PageAlloc::Allocated { evicted } => {
                if let Some(victim) = evicted {
                    self.purge_page(cell, victim, at);
                }
                true
            }
        }
    }

    /// Remove every trace of a page from one cell (local-cache eviction).
    /// The SVA backing store retains the bytes, standing in for the
    /// ALLCACHE guarantee that the last copy of a sub-page is never lost;
    /// sub-pages whose last copy this eviction removed are marked
    /// *spilled*, and cost a ring fetch to get back.
    fn purge_page(&mut self, cell: usize, page: u64, at: Cycles) {
        let first = page * SUBPAGES_PER_PAGE as u64;
        for sp in first..first + SUBPAGES_PER_PAGE as u64 {
            if self.dir.state_of(sp, cell) != SubpageState::Missing {
                let had_data = self.dir.state_of(sp, cell).readable();
                self.set_state(sp, cell, SubpageState::Missing, at);
                if had_data && !self.dir.holders(sp).is_some_and(|h| h.any_valid()) {
                    self.spilled.insert(sp);
                }
            }
        }
        self.subcaches[cell].invalidate_page(page);
    }

    // ----- atomic sub-page operations ------------------------------------------

    fn get_sub_page(&mut self, cell: usize, sp: u64, now: Cycles) -> Outcome {
        if let Some(owner) = self.dir.holders(sp).and_then(|h| h.atomic_holder()) {
            if owner == cell {
                // Re-acquire by the holder is a cheap local test.
                return Outcome::Done {
                    done_at: now + self.timing.subcache_read,
                };
            }
            // Rejected: the request still circulates the ring and still
            // serializes against other same-sub-page traffic.
            let t0 = now.max(self.subpage_busy.get(&sp).copied().unwrap_or(0));
            let transit = self.transit_for_dir(cell, sp);
            let timing = self
                .fabric
                .transact(t0, cell, transit, sp, PacketKind::GetSubPage);
            self.perf[cell].ring_transactions += 1;
            if matches!(transit, Transit::CrossRing { .. }) {
                self.perf[cell].remote_references += 1;
            }
            self.perf[cell].ring_wait_cycles += timing.slot_wait;
            self.perf[cell].atomic_rejections += 1;
            let done_at = timing.response_at + self.timing.remote_overhead;
            self.perf[cell].ring_latency_cycles += done_at - now;
            self.tracer.emit_with(|| TraceEvent::AtomicRejection {
                at: done_at,
                cell,
                subpage: sp,
            });
            // A rejection transfers nothing — the holder answers "busy"
            // in passing — so it does NOT extend the sub-page busy time:
            // simultaneous rejected requests pipeline on the slotted ring
            // (this is what keeps hardware-lock contention linear rather
            // than quadratic in the processor count).
            return Outcome::AtomicFailed { done_at };
        }
        let st = self.dir.state_of(sp, cell);
        if st.writable() {
            // Already exclusive here: flip to atomic locally.
            let done_at = now + self.timing.atomic_overhead;
            self.set_state(sp, cell, SubpageState::Atomic, done_at);
            return Outcome::Done { done_at };
        }
        let done = self.coherence_fetch(cell, sp, now, Want::Atomic) + self.timing.atomic_overhead;
        Outcome::Done { done_at: done }
    }

    fn release_sub_page(&mut self, cell: usize, sp: u64, now: Cycles) -> Outcome {
        let st = self.dir.state_of(sp, cell);
        debug_assert_eq!(
            st,
            SubpageState::Atomic,
            "get_sub_page invariant (release_sub_page is only legal while the \
             releasing cell holds the sub-page Atomic) broken: cell {cell}, \
             sub-page {sp}"
        );
        let done_at = now + self.timing.localcache_write;
        if st == SubpageState::Atomic {
            self.set_state(sp, cell, SubpageState::Exclusive, done_at);
            self.emit(sp, done_at);
        }
        Outcome::Done { done_at }
    }

    // ----- prefetch / poststore -------------------------------------------------

    fn prefetch(&mut self, cell: usize, sp: u64, exclusive: bool, now: Cycles) -> Outcome {
        let issue_done = now + self.timing.prefetch_issue;
        if let Some(owner) = self.dir.holders(sp).and_then(|h| h.atomic_holder()) {
            if owner != cell {
                // Prefetching a locked sub-page quietly does nothing.
                return Outcome::Done {
                    done_at: issue_done,
                };
            }
        }
        let st = self.dir.state_of(sp, cell);
        let satisfied = if exclusive {
            st.writable()
        } else {
            st.readable()
        };
        if satisfied || self.pending_fill.contains_key(&(cell, sp)) {
            return Outcome::Done {
                done_at: issue_done,
            };
        }
        self.perf[cell].prefetches += 1;
        let want = if exclusive {
            Want::Exclusive
        } else {
            Want::Shared
        };
        let ready = self.coherence_fetch(cell, sp, now, want);
        self.pending_fill.insert((cell, sp), ready);
        Outcome::Done {
            done_at: issue_done,
        }
    }

    fn poststore(&mut self, cell: usize, sp: u64, now: Cycles) -> Outcome {
        if !self.options.poststore {
            return Outcome::Done { done_at: now + 1 };
        }
        let st = self.dir.state_of(sp, cell);
        if st != SubpageState::Exclusive {
            // Nothing modified to broadcast — and a sub-page held *atomic*
            // must keep its lock: broadcasting it shared would silently
            // release `get_sub_page` (the hardware forbids this).
            return Outcome::Done {
                done_at: now + self.timing.poststore_issue,
            };
        }
        self.perf[cell].poststores += 1;
        let t0 = now.max(self.subpage_busy.get(&sp).copied().unwrap_or(0));
        // If any place holder lives on another leaf ring, the update must
        // cross Ring:1. Snapshot the holders (scratch buffer — the refill
        // sweep below mutates directory state while iterating).
        let mut holders = std::mem::take(&mut self.scratch_holders);
        holders.clear();
        if let Some(h) = self.dir.holders(sp) {
            holders.extend(h.iter());
        }
        let transit = match &self.fabric {
            Fabric::Ring(h) => {
                let my_leaf = h.leaf_of(cell);
                holders
                    .iter()
                    .find(|(c, s)| s.is_placeholder() && h.leaf_of(*c) != my_leaf)
                    .map_or(Transit::Local, |(c, _)| Transit::CrossRing {
                        dst_leaf: h.leaf_of(*c),
                    })
            }
            _ => Transit::Local,
        };
        let timing = self
            .fabric
            .transact(t0, cell, transit, sp, PacketKind::Poststore);
        self.perf[cell].ring_transactions += 1;
        if matches!(transit, Transit::CrossRing { .. }) {
            self.perf[cell].remote_references += 1;
        }
        self.perf[cell].ring_wait_cycles += timing.slot_wait;
        // The writer's copy stops being exclusive as the broadcast
        // launches — demote it before any place holder refills, so the
        // event stream never shows a Shared copy beside a writable one.
        self.set_state(sp, cell, SubpageState::Shared, timing.response_at);
        for (c, s) in &holders {
            if s.is_placeholder() {
                self.set_state(sp, *c, SubpageState::Shared, timing.response_at);
            }
        }
        self.scratch_holders = holders;
        self.subpage_busy.insert(sp, timing.response_at);
        self.emit(sp, timing.response_at);
        // The issuing processor stalls only until the packet is launched.
        Outcome::Done {
            done_at: now + self.timing.poststore_issue + timing.slot_wait,
        }
    }

    // ----- cache-less (Butterfly) path ------------------------------------------

    fn access_dancehall(&mut self, cell: usize, addr: u64, op: MemOp, now: Cycles) -> Outcome {
        let sp = subpage_of(addr);
        match op {
            MemOp::Read | MemOp::Write | MemOp::Poststore | MemOp::AtomicRmw => {
                let is_write = !matches!(op, MemOp::Read);
                if let Some(owner) = self.dir.holders(sp).and_then(|h| h.atomic_holder()) {
                    if owner != cell {
                        return Outcome::BlockedOnAtomic { subpage: sp };
                    }
                }
                let kind = if is_write {
                    PacketKind::ReadExclusive
                } else {
                    PacketKind::ReadData
                };
                let timing = self.fabric.transact(now, cell, Transit::Local, sp, kind);
                self.perf[cell].localcache_misses += 1;
                self.perf[cell].ring_transactions += 1;
                self.perf[cell].ring_wait_cycles += timing.slot_wait;
                let mut done_at = timing.response_at + self.timing.remote_overhead;
                if is_write {
                    done_at += self.timing.remote_write_extra;
                }
                self.perf[cell].ring_latency_cycles += done_at - now;
                if is_write {
                    self.emit(sp, done_at);
                }
                Outcome::Done { done_at }
            }
            MemOp::GetSubPage => {
                if let Some(owner) = self.dir.holders(sp).and_then(|h| h.atomic_holder()) {
                    let timing =
                        self.fabric
                            .transact(now, cell, Transit::Local, sp, PacketKind::GetSubPage);
                    self.perf[cell].ring_transactions += 1;
                    let done_at = timing.response_at + self.timing.atomic_overhead;
                    if owner == cell {
                        return Outcome::Done { done_at };
                    }
                    self.perf[cell].atomic_rejections += 1;
                    self.tracer.emit_with(|| TraceEvent::AtomicRejection {
                        at: done_at,
                        cell,
                        subpage: sp,
                    });
                    return Outcome::AtomicFailed { done_at };
                }
                let timing =
                    self.fabric
                        .transact(now, cell, Transit::Local, sp, PacketKind::GetSubPage);
                self.perf[cell].ring_transactions += 1;
                let done_at = timing.response_at + self.timing.atomic_overhead;
                self.set_state(sp, cell, SubpageState::Atomic, done_at);
                Outcome::Done { done_at }
            }
            MemOp::ReleaseSubPage => {
                debug_assert_eq!(
                    self.dir.state_of(sp, cell),
                    SubpageState::Atomic,
                    "get_sub_page invariant (release_sub_page is only legal while \
                     the releasing cell holds the sub-page Atomic) broken: \
                     cell {cell}, sub-page {sp}"
                );
                let timing =
                    self.fabric
                        .transact(now, cell, Transit::Local, sp, PacketKind::ReleaseSubPage);
                self.perf[cell].ring_transactions += 1;
                let done_at = timing.response_at;
                self.set_state(sp, cell, SubpageState::Missing, done_at);
                self.emit(sp, done_at);
                Outcome::Done { done_at }
            }
            MemOp::Prefetch { .. } | MemOp::SubcachePrefetch => {
                // No caches to prefetch into.
                Outcome::Done {
                    done_at: now + self.timing.prefetch_issue,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ksr(n: usize) -> MemorySystem {
        MemorySystem::new(
            MemGeometry::ksr1(),
            CacheTiming::ksr1(),
            Fabric::ksr1_32().unwrap(),
            n,
            42,
        )
        .unwrap()
    }

    fn done(o: Outcome) -> Cycles {
        o.done_at()
    }

    #[test]
    fn first_touch_then_subcache_hit() {
        let mut m = ksr(2);
        let t1 = done(m.access(0, 0x1000, MemOp::Write, 0));
        assert!(t1 > 100, "first touch pays page allocation: {t1}");
        let t2 = done(m.access(0, 0x1000, MemOp::Write, t1)) - t1;
        assert_eq!(t2, 3, "sub-cache write hit");
        let t3 = done(m.access(0, 0x1000, MemOp::Read, t1)) - t1;
        assert_eq!(t3, 2, "sub-cache read hit");
    }

    #[test]
    fn localcache_hit_is_18_cycles() {
        let mut m = ksr(1);
        m.warm(0, 0, 4096);
        // Warm marks the local cache but not the sub-cache: first access is
        // a local-cache hit (plus one block allocation).
        let t = done(m.access(0, 0, MemOp::Read, 0));
        assert_eq!(t, 18 + 9, "local-cache hit plus block allocation");
        // Same sub-block again: pure sub-cache hit.
        let t2 = done(m.access(0, 0, MemOp::Read, t)) - t;
        assert_eq!(t2, 2);
        // Different sub-block, same block: local-cache hit, no alloc.
        let t3 = done(m.access(0, 64, MemOp::Read, t)) - t;
        assert_eq!(t3, 18);
    }

    #[test]
    fn remote_read_is_175_cycles() {
        let mut m = ksr(2);
        m.warm(1, 0, 256);
        // Cell 0 reads data exclusively held by cell 1: full ring trip.
        // An extra block+page allocation lands at the requester.
        let t = done(m.access(0, 0, MemOp::Read, 0));
        assert_eq!(
            t,
            175 + 105 + 9,
            "published 175 + page alloc 105 + block alloc 9"
        );
        // Second sub-page of the same page: no page allocation.
        let t2 = done(m.access(0, 128, MemOp::Read, t)) - t;
        assert_eq!(t2, 175);
    }

    /// RMR attribution: only transactions whose LCA sits above the leaf
    /// ring count as remote references; same-leaf ring trips do not.
    #[test]
    fn remote_references_count_cross_ring_only() {
        let mut m = MemorySystem::new(
            MemGeometry::ksr1(),
            CacheTiming::ksr1(),
            Fabric::ksr_64().unwrap(),
            64,
            42,
        )
        .unwrap();
        m.warm(32, 0, 128);
        // Cell 0 (leaf 0) fetches from cell 32 (leaf 1): crosses Ring:1.
        m.access(0, 0, MemOp::Read, 0);
        assert_eq!(m.perfmon(0).ring_transactions, 1);
        assert_eq!(m.perfmon(0).remote_references, 1);
        // Cell 1 (leaf 0) can now fetch from cell 0 on its own leaf:
        // a ring transaction, but not a remote reference.
        m.access(1, 0, MemOp::Read, 10_000);
        assert_eq!(m.perfmon(1).ring_transactions, 1);
        assert_eq!(m.perfmon(1).remote_references, 0);
    }

    #[test]
    fn read_demotes_owner_to_shared() {
        let mut m = ksr(2);
        m.warm(1, 0, 128);
        m.access(0, 0, MemOp::Read, 0);
        assert_eq!(m.directory().state_of(0, 0), SubpageState::Shared);
        assert_eq!(m.directory().state_of(0, 1), SubpageState::Shared);
    }

    #[test]
    fn write_invalidates_other_copies_leaving_placeholders() {
        let mut m = ksr(3);
        m.warm(1, 0, 128);
        m.access(0, 0, MemOp::Read, 0);
        m.access(2, 0, MemOp::Read, 0);
        // Cell 1 upgrades its shared copy.
        let o = m.access(1, 0, MemOp::Write, 10_000);
        assert!(done(o) > 10_100, "upgrade pays a ring transaction");
        assert_eq!(m.directory().state_of(0, 1), SubpageState::Exclusive);
        assert_eq!(
            m.directory().state_of(0, 0),
            SubpageState::Invalid,
            "place holder"
        );
        assert_eq!(m.directory().state_of(0, 2), SubpageState::Invalid);
        assert_eq!(m.perfmon(0).invalidations_received, 1);
    }

    #[test]
    fn read_snarfing_refills_all_placeholders() {
        let mut m = ksr(4);
        m.warm(1, 0, 128);
        m.access(0, 0, MemOp::Read, 0);
        m.access(2, 0, MemOp::Read, 0);
        m.access(1, 0, MemOp::Write, 10_000); // invalidate 0 and 2
                                              // One re-read by cell 0 snarf-refills cell 2 as well.
        m.access(0, 0, MemOp::Read, 20_000);
        assert_eq!(m.directory().state_of(0, 2), SubpageState::Shared);
        assert_eq!(m.perfmon(2).snarfs, 1);
        // Cell 2's next read is a local hit, not a ring trip.
        let before = m.perfmon(2).ring_transactions;
        m.access(2, 0, MemOp::Read, 30_000);
        assert_eq!(m.perfmon(2).ring_transactions, before);
    }

    #[test]
    fn same_subpage_transactions_serialize() {
        let mut m = ksr(4);
        m.warm(3, 0, 128);
        // Three cells read the same sub-page at the same instant: the
        // completions must be strictly staggered (hot-spot serialization).
        let t0 = done(m.access(0, 0, MemOp::Read, 0));
        let t1 = done(m.access(1, 0, MemOp::Read, 0));
        let t2 = done(m.access(2, 0, MemOp::Read, 0));
        assert!(t1 > t0 && t2 > t1, "{t0} {t1} {t2}");
    }

    #[test]
    fn distinct_subpages_pipeline() {
        let mut m = ksr(3);
        m.warm(2, 0, 4096);
        // Two cells read distinct sub-pages concurrently: near-identical
        // latency (the second sees one extra cycle of slot-entry wait —
        // nothing like the serialization of a same-sub-page conflict).
        let a = done(m.access(0, 0, MemOp::Read, 0));
        let b = done(m.access(1, 256, MemOp::Read, 0));
        assert!(
            b - a <= 2,
            "pipelined ring serves distinct sub-pages in parallel: {a} vs {b}"
        );
    }

    #[test]
    fn get_sub_page_succeeds_then_blocks_others() {
        let mut m = ksr(3);
        let t = done(m.access(0, 0, MemOp::GetSubPage, 0));
        assert_eq!(m.directory().state_of(0, 0), SubpageState::Atomic);
        // Another cell's gsp fails.
        match m.access(1, 0, MemOp::GetSubPage, t) {
            Outcome::AtomicFailed { done_at } => assert!(done_at > t),
            other => panic!("expected AtomicFailed, got {other:?}"),
        }
        assert_eq!(m.perfmon(1).atomic_rejections, 1);
        // An ordinary access blocks.
        assert!(matches!(
            m.access(2, 0, MemOp::Read, t),
            Outcome::BlockedOnAtomic { subpage: 0 }
        ));
        // The holder itself may access freely.
        assert!(matches!(
            m.access(0, 0, MemOp::Write, t),
            Outcome::Done { .. }
        ));
    }

    #[test]
    fn release_reopens_the_subpage() {
        let mut m = ksr(2);
        m.access(0, 0, MemOp::GetSubPage, 0);
        let t = done(m.access(0, 0, MemOp::ReleaseSubPage, 100));
        assert_eq!(m.directory().state_of(0, 0), SubpageState::Exclusive);
        let o = m.access(1, 0, MemOp::GetSubPage, t);
        assert!(matches!(o, Outcome::Done { .. }));
        assert_eq!(m.directory().state_of(0, 1), SubpageState::Atomic);
        assert_eq!(m.directory().state_of(0, 0), SubpageState::Invalid);
    }

    #[test]
    fn release_emits_event_for_watchers() {
        let mut m = ksr(2);
        m.watch(0);
        m.access(0, 0, MemOp::GetSubPage, 0);
        m.access(0, 0, MemOp::ReleaseSubPage, 500);
        let ev = m.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].subpage, 0);
        assert!(ev[0].at >= 500);
        m.unwatch(0);
        m.access(0, 0, MemOp::GetSubPage, 1000);
        m.access(0, 0, MemOp::ReleaseSubPage, 2000);
        assert!(
            m.take_events().is_empty(),
            "unwatched sub-pages stay silent"
        );
    }

    #[test]
    fn writes_emit_events_for_watchers() {
        let mut m = ksr(1);
        m.watch(subpage_of(256));
        m.access(0, 256, MemOp::Write, 0);
        assert_eq!(m.take_events().len(), 1);
    }

    #[test]
    fn prefetch_hides_ring_latency() {
        let mut m = ksr(2);
        m.warm(1, 0, 256);
        // Prefetch at t=0 returns almost immediately.
        let issue = done(m.access(0, 0, MemOp::Prefetch { exclusive: false }, 0));
        assert!(issue < 20, "prefetch is non-blocking: {issue}");
        // An access long after the fill completes is a local-cache hit.
        let t = done(m.access(0, 0, MemOp::Read, 10_000)) - 10_000;
        assert_eq!(t, 18 + 9, "local hit + block alloc after prefetch");
        // Without prefetch the same read from cell 0 would cost 175+.
    }

    #[test]
    fn access_before_prefetch_completes_waits_for_it() {
        let mut m = ksr(2);
        m.warm(1, 0, 256);
        m.access(0, 0, MemOp::Prefetch { exclusive: false }, 0);
        let t = done(m.access(0, 0, MemOp::Read, 10));
        assert!(t > 100, "must wait for the in-flight fill: {t}");
        assert!(
            t < 175 + 105 + 50,
            "but cheaper than a fresh ring trip: {t}"
        );
    }

    #[test]
    fn poststore_refills_placeholders_and_demotes_writer() {
        let mut m = ksr(3);
        m.warm(0, 0, 128);
        m.access(1, 0, MemOp::Read, 0);
        m.access(2, 0, MemOp::Read, 0);
        m.access(0, 0, MemOp::Write, 10_000); // invalidates 1, 2
        assert_eq!(m.directory().state_of(0, 1), SubpageState::Invalid);
        let issue = done(m.access(0, 0, MemOp::Poststore, 20_000));
        assert!(issue - 20_000 < 100, "issuing processor continues quickly");
        assert_eq!(m.directory().state_of(0, 1), SubpageState::Shared);
        assert_eq!(m.directory().state_of(0, 2), SubpageState::Shared);
        assert_eq!(
            m.directory().state_of(0, 0),
            SubpageState::Shared,
            "writer demoted"
        );
        // The writer's next write pays an upgrade — the SP pathology.
        let before = m.perfmon(0).ring_transactions;
        m.access(0, 0, MemOp::Write, 30_000);
        assert_eq!(m.perfmon(0).ring_transactions, before + 1);
    }

    #[test]
    fn capacity_eviction_causes_refetch() {
        // Tiny caches: working set larger than the local cache forces
        // evictions and later re-fetches (cold first-touch path).
        let mut m = MemorySystem::new(
            MemGeometry::scaled(64),
            CacheTiming::ksr1(),
            Fabric::ksr1_32().unwrap(),
            1,
            7,
        )
        .unwrap();
        // 512 KB local cache (32 page frames) -> write 2 MB.
        let mut t = 0;
        for i in 0..(2 * 1024 * 1024 / 128) {
            t = done(m.access(0, i * 128, MemOp::Write, t));
        }
        let allocs = m.perfmon(0).page_allocations;
        assert!(allocs > 32, "pages must have been recycled: {allocs}");
        assert_eq!(m.localcaches[0].resident_pages(), 32);
    }

    #[test]
    fn butterfly_every_access_is_remote() {
        let mut m = MemorySystem::new(
            MemGeometry::ksr1(),
            CacheTiming::butterfly(),
            Fabric::butterfly(16).unwrap(),
            16,
            1,
        )
        .unwrap();
        let t1 = done(m.access(0, 0, MemOp::Read, 0));
        let t2 = done(m.access(0, 0, MemOp::Read, t1)) - t1;
        assert_eq!(t1, t2, "no caches: repeat reads cost the same");
        assert_eq!(m.perfmon(0).ring_transactions, 2);
    }

    #[test]
    fn butterfly_atomic_roundtrip() {
        let mut m = MemorySystem::new(
            MemGeometry::ksr1(),
            CacheTiming::butterfly(),
            Fabric::butterfly(4).unwrap(),
            4,
            1,
        )
        .unwrap();
        let t = done(m.access(0, 0, MemOp::GetSubPage, 0));
        assert!(matches!(
            m.access(1, 0, MemOp::GetSubPage, t),
            Outcome::AtomicFailed { .. }
        ));
        let t2 = done(m.access(0, 0, MemOp::ReleaseSubPage, t));
        assert!(matches!(
            m.access(1, 0, MemOp::GetSubPage, t2),
            Outcome::Done { .. }
        ));
    }

    #[test]
    fn warm_steals_cleanly() {
        let mut m = ksr(2);
        m.warm(0, 0, 1024);
        m.warm(1, 0, 1024);
        assert_eq!(m.directory().state_of(0, 0), SubpageState::Missing);
        assert_eq!(m.directory().state_of(0, 1), SubpageState::Exclusive);
        assert_eq!(m.directory().find_violation(), None);
    }

    #[test]
    fn perfmon_totals_merge() {
        let mut m = ksr(2);
        m.warm(1, 0, 128);
        m.access(0, 0, MemOp::Read, 0);
        let total = m.perfmon_total();
        assert_eq!(
            total.ring_transactions,
            m.perfmon(0).ring_transactions + m.perfmon(1).ring_transactions
        );
    }
}

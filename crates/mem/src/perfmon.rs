//! The per-cell hardware performance monitor.
//!
//! §2: "Each node in the KSR-1 has a hardware performance monitor that
//! gives useful information such as the number of sub-cache and local-cache
//! misses and the time spent in ring accesses. We used this piece of
//! hardware quite extensively in our measurements." The experiment harness
//! uses this structure exactly the way the authors used the monitor: to
//! attribute slowdowns to cache capacity vs. ring saturation (e.g. the IS
//! analysis in §3.3.2).

/// Counter block for one cell. All counters are cumulative from machine
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfMon {
    /// Accesses satisfied by the sub-cache.
    pub subcache_hits: u64,
    /// Accesses that missed the sub-cache.
    pub subcache_misses: u64,
    /// Sub-cache misses satisfied by the local cache.
    pub localcache_hits: u64,
    /// Accesses that left the cell (ring transactions for data).
    pub localcache_misses: u64,
    /// Ring transactions issued by this cell (all kinds).
    pub ring_transactions: u64,
    /// Cycles spent waiting for ring slots.
    pub ring_wait_cycles: u64,
    /// Total cycles of remote-access latency endured by this cell.
    pub ring_latency_cycles: u64,
    /// 16 KB page frames allocated in the local cache.
    pub page_allocations: u64,
    /// 2 KB blocks allocated in the sub-cache.
    pub block_allocations: u64,
    /// Sub-page invalidations received from other cells.
    pub invalidations_received: u64,
    /// Place-holder refills obtained via read-snarfing.
    pub snarfs: u64,
    /// Poststore packets issued.
    pub poststores: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// `get_sub_page` attempts that lost to an existing atomic holder.
    pub atomic_rejections: u64,
    /// Ring transactions that crossed at least one level boundary —
    /// the requester's leaf ring could not satisfy the request, so the
    /// packet climbed through an ARD. This is Golab's remote memory
    /// reference (RMR) count for the DSM/NUMA cost model: dividing it
    /// by lock acquisitions gives the per-acquire RMR complexity the
    /// LCK experiment reports.
    pub remote_references: u64,
}

impl PerfMon {
    /// Total processor-issued accesses observed.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.subcache_hits + self.subcache_misses
    }

    /// Sub-cache miss ratio (0 when no accesses).
    #[must_use]
    pub fn subcache_miss_ratio(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.subcache_misses as f64 / total as f64
        }
    }

    /// Mean latency of this cell's remote (ring) accesses in cycles.
    #[must_use]
    pub fn mean_ring_latency(&self) -> f64 {
        if self.ring_transactions == 0 {
            0.0
        } else {
            self.ring_latency_cycles as f64 / self.ring_transactions as f64
        }
    }

    /// Element-wise difference since an `earlier` reading — the counters
    /// attributable to whatever ran between the two snapshots (the
    /// counters are cumulative and monotonic, so a plain subtraction;
    /// saturating guards against comparing unrelated machines).
    #[must_use]
    pub fn delta(self, earlier: Self) -> Self {
        Self {
            subcache_hits: self.subcache_hits.saturating_sub(earlier.subcache_hits),
            subcache_misses: self.subcache_misses.saturating_sub(earlier.subcache_misses),
            localcache_hits: self.localcache_hits.saturating_sub(earlier.localcache_hits),
            localcache_misses: self
                .localcache_misses
                .saturating_sub(earlier.localcache_misses),
            ring_transactions: self
                .ring_transactions
                .saturating_sub(earlier.ring_transactions),
            ring_wait_cycles: self
                .ring_wait_cycles
                .saturating_sub(earlier.ring_wait_cycles),
            ring_latency_cycles: self
                .ring_latency_cycles
                .saturating_sub(earlier.ring_latency_cycles),
            page_allocations: self
                .page_allocations
                .saturating_sub(earlier.page_allocations),
            block_allocations: self
                .block_allocations
                .saturating_sub(earlier.block_allocations),
            invalidations_received: self
                .invalidations_received
                .saturating_sub(earlier.invalidations_received),
            snarfs: self.snarfs.saturating_sub(earlier.snarfs),
            poststores: self.poststores.saturating_sub(earlier.poststores),
            prefetches: self.prefetches.saturating_sub(earlier.prefetches),
            atomic_rejections: self
                .atomic_rejections
                .saturating_sub(earlier.atomic_rejections),
            remote_references: self
                .remote_references
                .saturating_sub(earlier.remote_references),
        }
    }

    /// Element-wise sum, for machine-wide aggregation. Saturating, to
    /// match `delta`'s policy: folding cumulative cycle counters over a
    /// 1024-cell machine must degrade to a pinned maximum, not panic in
    /// debug or wrap in release.
    #[must_use]
    pub fn merged(self, o: Self) -> Self {
        Self {
            subcache_hits: self.subcache_hits.saturating_add(o.subcache_hits),
            subcache_misses: self.subcache_misses.saturating_add(o.subcache_misses),
            localcache_hits: self.localcache_hits.saturating_add(o.localcache_hits),
            localcache_misses: self.localcache_misses.saturating_add(o.localcache_misses),
            ring_transactions: self.ring_transactions.saturating_add(o.ring_transactions),
            ring_wait_cycles: self.ring_wait_cycles.saturating_add(o.ring_wait_cycles),
            ring_latency_cycles: self
                .ring_latency_cycles
                .saturating_add(o.ring_latency_cycles),
            page_allocations: self.page_allocations.saturating_add(o.page_allocations),
            block_allocations: self.block_allocations.saturating_add(o.block_allocations),
            invalidations_received: self
                .invalidations_received
                .saturating_add(o.invalidations_received),
            snarfs: self.snarfs.saturating_add(o.snarfs),
            poststores: self.poststores.saturating_add(o.poststores),
            prefetches: self.prefetches.saturating_add(o.prefetches),
            atomic_rejections: self.atomic_rejections.saturating_add(o.atomic_rejections),
            remote_references: self.remote_references.saturating_add(o.remote_references),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let p = PerfMon::default();
        assert_eq!(p.subcache_miss_ratio(), 0.0);
        assert_eq!(p.mean_ring_latency(), 0.0);
    }

    #[test]
    fn miss_ratio() {
        let p = PerfMon {
            subcache_hits: 3,
            subcache_misses: 1,
            ..Default::default()
        };
        assert_eq!(p.total_accesses(), 4);
        assert!((p.subcache_miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_ring_latency() {
        let p = PerfMon {
            ring_transactions: 4,
            ring_latency_cycles: 700,
            ..Default::default()
        };
        assert!((p.mean_ring_latency() - 175.0).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_fields() {
        let earlier = PerfMon {
            snarfs: 3,
            ring_transactions: 10,
            ..Default::default()
        };
        let later = PerfMon {
            snarfs: 8,
            ring_transactions: 25,
            ..Default::default()
        };
        let d = later.delta(earlier);
        assert_eq!(d.snarfs, 5);
        assert_eq!(d.ring_transactions, 15);
        // Mismatched snapshots saturate instead of wrapping.
        assert_eq!(earlier.delta(later).snarfs, 0);
    }

    #[test]
    fn merged_adds_fields() {
        let a = PerfMon {
            subcache_hits: 1,
            poststores: 2,
            ..Default::default()
        };
        let b = PerfMon {
            subcache_hits: 10,
            snarfs: 5,
            ..Default::default()
        };
        let m = a.merged(b);
        assert_eq!(m.subcache_hits, 11);
        assert_eq!(m.poststores, 2);
        assert_eq!(m.snarfs, 5);
    }

    /// Regression: aggregating near-full cumulative counters (a
    /// 1024-cell fold of cycle counters can plausibly reach 2^64) must
    /// saturate like `delta`, not overflow.
    #[test]
    fn merged_saturates_instead_of_overflowing() {
        let near_full = PerfMon {
            ring_latency_cycles: u64::MAX - 5,
            ring_wait_cycles: u64::MAX,
            remote_references: u64::MAX - 1,
            ..Default::default()
        };
        let more = PerfMon {
            ring_latency_cycles: 100,
            ring_wait_cycles: 1,
            remote_references: 7,
            subcache_hits: 3,
            ..Default::default()
        };
        let m = near_full.merged(more);
        assert_eq!(m.ring_latency_cycles, u64::MAX);
        assert_eq!(m.ring_wait_cycles, u64::MAX);
        assert_eq!(m.remote_references, u64::MAX);
        assert_eq!(m.subcache_hits, 3);
    }
}

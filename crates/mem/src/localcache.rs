//! The per-cell second-level cache ("local cache") — page-frame side.
//!
//! 32 MB, 16-way set associative, allocated in 16 KB pages, random
//! replacement (§2). Sub-page *coherence states* live in the global
//! [`crate::directory`]; this structure tracks which page frames are
//! resident in each cell, because residency is what gates place-holders
//! (snarfing/poststore refill eligibility) and what a page eviction
//! destroys.

use ksr_core::{Error, Result, XorShift64};

use crate::geometry::{page_of, MemGeometry};

const EMPTY_TAG: u64 = u64::MAX;

/// Result of ensuring a page frame is allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageAlloc {
    /// The page was already resident.
    AlreadyPresent,
    /// A frame was allocated; if a victim page had to be evicted, its page
    /// index is reported so the protocol can purge its sub-pages.
    Allocated {
        /// Evicted page index, if any.
        evicted: Option<u64>,
    },
}

/// One cell's local-cache page-frame directory.
#[derive(Debug, Clone)]
pub struct LocalCache {
    sets: usize,
    ways: usize,
    tags: Vec<u64>,
    rng: XorShift64,
}

impl LocalCache {
    /// Build an empty local cache; `rng` drives random replacement.
    #[must_use]
    pub fn new(geom: &MemGeometry, rng: XorShift64) -> Self {
        let sets = geom.localcache_sets();
        let ways = geom.localcache_ways;
        Self {
            sets,
            ways,
            tags: vec![EMPTY_TAG; sets * ways],
            rng,
        }
    }

    fn set_of(&self, page: u64) -> usize {
        (page % self.sets as u64) as usize
    }

    /// Whether the page containing `addr` is resident.
    #[must_use]
    pub fn page_present(&self, addr: u64) -> bool {
        let page = page_of(addr);
        let set = self.set_of(page);
        self.tags[set * self.ways..(set + 1) * self.ways].contains(&page)
    }

    /// Allocate a frame for the page containing `addr` if needed.
    pub fn ensure_page(&mut self, addr: u64) -> PageAlloc {
        self.ensure_page_with(addr, |_| true)
    }

    /// Like [`Self::ensure_page`], but a resident victim page is only
    /// evicted if `evictable(page)` allows it — the protocol uses this to
    /// keep pages holding an `Atomic` sub-page pinned (a locked sub-page
    /// cannot be silently dropped).
    ///
    /// # Panics
    /// Panics where [`Self::try_ensure_page_with`] reports an error: the
    /// set is full and *no* way is evictable, meaning the simulated
    /// program holds more sub-page locks than the hardware could.
    pub fn ensure_page_with(&mut self, addr: u64, evictable: impl Fn(u64) -> bool) -> PageAlloc {
        self.try_ensure_page_with(addr, evictable)
            .unwrap_or_else(|e| {
                panic!("replacement invariant (every full set keeps one evictable way) broken: {e}")
            })
    }

    /// Fallible form of [`Self::ensure_page_with`]: returns a typed
    /// [`Error::Protocol`] instead of panicking when every way of the
    /// target set is pinned by an atomic sub-page.
    pub fn try_ensure_page_with(
        &mut self,
        addr: u64,
        evictable: impl Fn(u64) -> bool,
    ) -> Result<PageAlloc> {
        let page = page_of(addr);
        let set = self.set_of(page);
        let lane = set * self.ways;
        if self.tags[lane..lane + self.ways].contains(&page) {
            return Ok(PageAlloc::AlreadyPresent);
        }
        let way = match self.tags[lane..lane + self.ways]
            .iter()
            .position(|&t| t == EMPTY_TAG)
        {
            Some(i) => i,
            None => {
                // Random replacement over the evictable ways.
                let candidates: Vec<usize> = (0..self.ways)
                    .filter(|&i| evictable(self.tags[lane + i]))
                    .collect();
                if candidates.is_empty() {
                    return Err(Error::Protocol(format!(
                        "all {} ways of local-cache set {set} are pinned by \
                         atomic sub-pages",
                        self.ways
                    )));
                }
                candidates[self.rng.next_index(candidates.len())]
            }
        };
        let ways = &mut self.tags[lane..lane + self.ways];
        let evicted = (ways[way] != EMPTY_TAG).then_some(ways[way]);
        ways[way] = page;
        Ok(PageAlloc::Allocated { evicted })
    }

    /// Drop a page frame (used when the protocol migrates the last copy
    /// away or a test wants a cold cache).
    pub fn drop_page(&mut self, page: u64) {
        let set = self.set_of(page);
        let lane = set * self.ways;
        for t in &mut self.tags[lane..lane + self.ways] {
            if *t == page {
                *t = EMPTY_TAG;
            }
        }
    }

    /// Number of resident pages (diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PAGE_BYTES;

    fn cache() -> LocalCache {
        LocalCache::new(&MemGeometry::ksr1(), XorShift64::new(2))
    }

    #[test]
    fn allocate_then_present() {
        let mut c = cache();
        assert!(!c.page_present(0));
        assert_eq!(c.ensure_page(0), PageAlloc::Allocated { evicted: None });
        assert!(c.page_present(0));
        assert_eq!(c.ensure_page(100), PageAlloc::AlreadyPresent, "same page");
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut c = cache();
        c.ensure_page(0);
        c.ensure_page(PAGE_BYTES);
        assert_eq!(c.resident_pages(), 2);
    }

    #[test]
    fn eviction_when_set_full() {
        let mut c = cache();
        let sets = MemGeometry::ksr1().localcache_sets() as u64;
        // 16 ways + 1 conflicting page.
        for i in 0..16u64 {
            assert_eq!(
                c.ensure_page(i * sets * PAGE_BYTES),
                PageAlloc::Allocated { evicted: None }
            );
        }
        match c.ensure_page(16 * sets * PAGE_BYTES) {
            PageAlloc::Allocated { evicted: Some(_) } => {}
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(c.resident_pages(), 16);
    }

    #[test]
    fn drop_page_frees_frame() {
        let mut c = cache();
        c.ensure_page(0);
        c.drop_page(0);
        assert!(!c.page_present(0));
        assert_eq!(c.resident_pages(), 0);
    }

    #[test]
    fn replacement_is_seed_deterministic() {
        let sets = MemGeometry::ksr1().localcache_sets() as u64;
        let run = |seed| {
            let mut c = LocalCache::new(&MemGeometry::ksr1(), XorShift64::new(seed));
            for i in 0..40u64 {
                c.ensure_page(i * sets * PAGE_BYTES);
            }
            (0..40u64)
                .filter(|&i| c.page_present(i * sets * PAGE_BYTES))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let mut c = cache();
        let sets = MemGeometry::ksr1().localcache_sets() as u64;
        for i in 0..16u64 {
            c.ensure_page(i * sets * PAGE_BYTES);
        }
        // Pin page 0; the conflicting allocation must evict someone else.
        match c.ensure_page_with(16 * sets * PAGE_BYTES, |p| p != 0) {
            PageAlloc::Allocated {
                evicted: Some(victim),
            } => assert_ne!(victim, 0),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.page_present(0));
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn all_ways_pinned_panics() {
        let mut c = cache();
        let sets = MemGeometry::ksr1().localcache_sets() as u64;
        for i in 0..16u64 {
            c.ensure_page(i * sets * PAGE_BYTES);
        }
        let _ = c.ensure_page_with(16 * sets * PAGE_BYTES, |_| false);
    }

    #[test]
    fn all_ways_pinned_is_a_typed_error() {
        let mut c = cache();
        let sets = MemGeometry::ksr1().localcache_sets() as u64;
        for i in 0..16u64 {
            c.ensure_page(i * sets * PAGE_BYTES);
        }
        let err = c
            .try_ensure_page_with(16 * sets * PAGE_BYTES, |_| false)
            .unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err:?}");
        // An evictable way keeps the fallible path identical to the
        // panicking one.
        assert!(c
            .try_ensure_page_with(16 * sets * PAGE_BYTES, |_| true)
            .is_ok());
    }

    #[test]
    fn capacity_bounded() {
        let mut c = LocalCache::new(&MemGeometry::scaled(64), XorShift64::new(4));
        let total_frames = (512 * 1024 / PAGE_BYTES) as usize;
        for i in 0..10_000u64 {
            c.ensure_page(i * PAGE_BYTES);
        }
        assert_eq!(c.resident_pages(), total_frames);
    }
}

//! System Virtual Address space — the data plane.
//!
//! In a real COMA machine data lives *only* in the caches; the ALLCACHE
//! engine guarantees the last copy of a sub-page is never lost. The
//! simulator gets the same guarantee more cheaply: a sparse page-granular
//! backing store holds the authoritative bytes, while the caches hold only
//! residency/coherence metadata. Because the coordinator serializes
//! conflicting accesses in virtual-time order (sequential consistency, as
//! the KSR-1 provides), a single authoritative value per address is exact.

use ksr_core::{Error, FxHashMap, Result};

use crate::geometry::PAGE_BYTES;

/// Sparse byte store keyed by 16 KB page.
#[derive(Debug, Clone, Default)]
pub struct SvaStore {
    pages: FxHashMap<u64, Box<[u8]>>,
}

impl SvaStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&mut self, addr: u64) -> &mut [u8] {
        let idx = addr / PAGE_BYTES;
        self.pages
            .entry(idx)
            .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice())
    }

    /// Read a `u64` (must not straddle a page boundary; the heap allocator
    /// always aligns allocations, so this only fires on wild addresses).
    pub fn read_u64(&mut self, addr: u64) -> Result<u64> {
        if !addr.is_multiple_of(8) {
            return Err(Error::Misaligned { addr, required: 8 });
        }
        let off = (addr % PAGE_BYTES) as usize;
        let p = self.page(addr);
        let mut b = [0u8; 8];
        b.copy_from_slice(&p[off..off + 8]);
        Ok(u64::from_le_bytes(b))
    }

    /// Write a `u64`.
    pub fn write_u64(&mut self, addr: u64, val: u64) -> Result<()> {
        if !addr.is_multiple_of(8) {
            return Err(Error::Misaligned { addr, required: 8 });
        }
        let off = (addr % PAGE_BYTES) as usize;
        let p = self.page(addr);
        p[off..off + 8].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Read an `f64` through its bit pattern.
    pub fn read_f64(&mut self, addr: u64) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Write an `f64` through its bit pattern.
    pub fn write_f64(&mut self, addr: u64, val: f64) -> Result<()> {
        self.write_u64(addr, val.to_bits())
    }

    /// Number of materialized pages (diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mut s = SvaStore::new();
        assert_eq!(s.read_u64(0).unwrap(), 0);
        assert_eq!(s.read_u64(8 * 1024 * 1024).unwrap(), 0);
    }

    #[test]
    fn u64_roundtrip() {
        let mut s = SvaStore::new();
        s.write_u64(64, 0xDEAD_BEEF_0123_4567).unwrap();
        assert_eq!(s.read_u64(64).unwrap(), 0xDEAD_BEEF_0123_4567);
    }

    #[test]
    fn f64_roundtrip_preserves_bits() {
        let mut s = SvaStore::new();
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            s.write_f64(128, v).unwrap();
            assert_eq!(s.read_f64(128).unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn misalignment_rejected() {
        let mut s = SvaStore::new();
        assert!(matches!(s.read_u64(4), Err(Error::Misaligned { .. })));
        assert!(matches!(s.write_u64(9, 1), Err(Error::Misaligned { .. })));
    }

    #[test]
    fn pages_materialize_lazily() {
        let mut s = SvaStore::new();
        assert_eq!(s.resident_pages(), 0);
        s.write_u64(0, 1).unwrap();
        s.write_u64(PAGE_BYTES, 1).unwrap();
        s.write_u64(PAGE_BYTES + 8, 1).unwrap();
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn adjacent_words_do_not_clobber() {
        let mut s = SvaStore::new();
        s.write_u64(0, u64::MAX).unwrap();
        s.write_u64(8, 0x1111).unwrap();
        assert_eq!(s.read_u64(0).unwrap(), u64::MAX);
        assert_eq!(s.read_u64(8).unwrap(), 0x1111);
    }
}

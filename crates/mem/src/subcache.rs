//! The per-cell first-level cache ("sub-cache").
//!
//! 2-way set associative, allocated in 2 KB blocks, filled on demand in
//! 64 B sub-blocks from the local cache, random replacement (§2). The
//! sub-cache holds no coherence state of its own — permissions live at the
//! local-cache/directory level — but its presence bits determine whether an
//! access costs 2 cycles or ~18, and the 2 KB *allocation* unit is what
//! produces the "+50% access time at block-allocating strides" measurement
//! of §3.1.

use ksr_core::XorShift64;

use crate::geometry::{block_of, subblock_slot_in_block, MemGeometry, BLOCK_BYTES, SUBPAGE_BYTES};

const EMPTY_TAG: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct BlockWay {
    /// Block index (`addr / 2 KB`), or `EMPTY_TAG`.
    tag: u64,
    /// Presence bitmask over the 32 sub-blocks of the block.
    present: u32,
}

/// Result of touching an address in the sub-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubCacheFill {
    /// Sub-block already present: a sub-cache hit.
    Hit,
    /// Block descriptor present, sub-block fetched from the local cache.
    FilledSubBlock,
    /// A new 2 KB block was allocated (and possibly a victim evicted)
    /// before the sub-block was fetched.
    AllocatedBlock {
        /// Block index of the evicted victim, if a non-empty way was chosen.
        evicted: Option<u64>,
    },
}

/// One cell's sub-cache (data side; the instruction side is not modelled —
/// the paper's experiments are data-access bound).
#[derive(Debug, Clone)]
pub struct SubCache {
    sets: usize,
    ways: usize,
    entries: Vec<BlockWay>,
    rng: XorShift64,
}

impl SubCache {
    /// Build an empty sub-cache for the given geometry; `rng` drives the
    /// random replacement policy.
    #[must_use]
    pub fn new(geom: &MemGeometry, rng: XorShift64) -> Self {
        let sets = geom.subcache_sets();
        let ways = geom.subcache_ways;
        Self {
            sets,
            ways,
            entries: vec![
                BlockWay {
                    tag: EMPTY_TAG,
                    present: 0
                };
                sets * ways
            ],
            rng,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    fn ways_of(&mut self, set: usize) -> &mut [BlockWay] {
        &mut self.entries[set * self.ways..(set + 1) * self.ways]
    }

    /// Whether the sub-block containing `addr` is present (a 2-cycle hit).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let block = block_of(addr);
        let set = self.set_of(block);
        let slot = subblock_slot_in_block(addr);
        self.entries[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|w| w.tag == block && w.present & (1 << slot) != 0)
    }

    /// Bring the sub-block containing `addr` in (if absent), allocating the
    /// block if needed. Returns what had to happen — the caller translates
    /// that into cycles.
    pub fn touch(&mut self, addr: u64) -> SubCacheFill {
        let block = block_of(addr);
        let set = self.set_of(block);
        let slot = subblock_slot_in_block(addr);
        let ways = self.ways;
        // Hit or sub-block fill in an existing way?
        let lane = set * ways;
        for i in 0..ways {
            let w = &mut self.entries[lane + i];
            if w.tag == block {
                return if w.present & (1 << slot) != 0 {
                    SubCacheFill::Hit
                } else {
                    w.present |= 1 << slot;
                    SubCacheFill::FilledSubBlock
                };
            }
        }
        // Allocate: prefer an empty way, else evict a random victim.
        let victim_way = {
            let lane_ways = self.ways_of(set);
            match lane_ways.iter().position(|w| w.tag == EMPTY_TAG) {
                Some(i) => i,
                None => self.rng.next_index(ways),
            }
        };
        let w = &mut self.entries[lane + victim_way];
        let evicted = (w.tag != EMPTY_TAG).then_some(w.tag);
        *w = BlockWay {
            tag: block,
            present: 1 << slot,
        };
        SubCacheFill::AllocatedBlock { evicted }
    }

    /// Drop the two sub-blocks covering a 128 B sub-page (called when the
    /// coherence protocol invalidates that sub-page in this cell).
    pub fn invalidate_subpage(&mut self, subpage: u64) {
        let addr = subpage * SUBPAGE_BYTES;
        let block = block_of(addr);
        let set = self.set_of(block);
        let first_slot = subblock_slot_in_block(addr);
        let mask: u32 = 0b11 << first_slot;
        for w in self.ways_of(set) {
            if w.tag == block {
                w.present &= !mask;
            }
        }
    }

    /// Drop every sub-block belonging to a 16 KB local-cache page (called
    /// when that page is evicted from the local cache — the hierarchy is
    /// inclusive: a sub-cache copy must be backed by a local-cache copy).
    pub fn invalidate_page(&mut self, page: u64) {
        let first_block = page * (crate::geometry::PAGE_BYTES / BLOCK_BYTES);
        let blocks = crate::geometry::PAGE_BYTES / BLOCK_BYTES;
        for block in first_block..first_block + blocks {
            let set = self.set_of(block);
            for w in self.ways_of(set) {
                if w.tag == block {
                    w.tag = EMPTY_TAG;
                    w.present = 0;
                }
            }
        }
    }

    /// Drop everything (used by the latency experiment's "fill the
    /// sub-cache with B" methodology only in tests; the measured code path
    /// flushes by re-reading, exactly like the paper).
    pub fn flush(&mut self) {
        for w in &mut self.entries {
            *w = BlockWay {
                tag: EMPTY_TAG,
                present: 0,
            };
        }
    }

    /// Number of resident blocks (diagnostics).
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.entries.iter().filter(|w| w.tag != EMPTY_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SubCache {
        SubCache::new(&MemGeometry::ksr1(), XorShift64::new(1))
    }

    #[test]
    fn cold_access_allocates_then_hits() {
        let mut c = cache();
        assert!(!c.contains(0x1234));
        assert_eq!(
            c.touch(0x1234),
            SubCacheFill::AllocatedBlock { evicted: None }
        );
        assert!(c.contains(0x1234));
        assert_eq!(c.touch(0x1234), SubCacheFill::Hit);
    }

    #[test]
    fn same_block_different_subblock_fills_without_alloc() {
        let mut c = cache();
        c.touch(0);
        assert_eq!(c.touch(64), SubCacheFill::FilledSubBlock);
        assert_eq!(c.touch(65), SubCacheFill::Hit, "same sub-block");
    }

    #[test]
    fn block_allocating_stride_always_allocates() {
        // The §3.1 stride experiment: every access to a new 2 KB block.
        let mut c = cache();
        for i in 0..10u64 {
            match c.touch(i * BLOCK_BYTES) {
                SubCacheFill::AllocatedBlock { .. } => {}
                other => panic!("expected allocation, got {other:?}"),
            }
        }
    }

    #[test]
    fn eviction_after_ways_exhausted() {
        let mut c = cache();
        let sets = MemGeometry::ksr1().subcache_sets() as u64;
        // Three blocks mapping to the same set of a 2-way cache.
        let b0 = 0;
        let b1 = sets * BLOCK_BYTES;
        let b2 = 2 * sets * BLOCK_BYTES;
        c.touch(b0);
        c.touch(b1);
        match c.touch(b2) {
            SubCacheFill::AllocatedBlock {
                evicted: Some(victim),
            } => {
                assert!(victim == block_of(b0) || victim == block_of(b1));
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        // Exactly one of b0/b1 survived.
        let survivors = [b0, b1].iter().filter(|&&a| c.contains(a)).count();
        assert_eq!(survivors, 1);
        assert!(c.contains(b2));
    }

    #[test]
    fn random_replacement_is_seed_deterministic() {
        let sets = MemGeometry::ksr1().subcache_sets() as u64;
        let run = |seed: u64| {
            let mut c = SubCache::new(&MemGeometry::ksr1(), XorShift64::new(seed));
            for k in 0..64u64 {
                c.touch(k * sets * BLOCK_BYTES);
            }
            (0..64u64)
                .filter(|&k| c.contains(k * sets * BLOCK_BYTES))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn invalidate_subpage_clears_both_subblocks() {
        let mut c = cache();
        c.touch(0); // sub-block 0 of sub-page 0
        c.touch(64); // sub-block 1 of sub-page 0
        c.touch(128); // sub-page 1
        c.invalidate_subpage(0);
        assert!(!c.contains(0));
        assert!(!c.contains(64));
        assert!(c.contains(128), "neighbouring sub-page untouched");
    }

    #[test]
    fn flush_empties_everything() {
        let mut c = cache();
        c.touch(0);
        c.touch(4096);
        assert_eq!(c.resident_blocks(), 2);
        c.flush();
        assert_eq!(c.resident_blocks(), 0);
        assert!(!c.contains(0));
    }

    #[test]
    fn invalidate_page_clears_all_its_blocks() {
        let mut c = cache();
        // Touch all 8 blocks of page 0 and one block of page 1.
        for b in 0..8u64 {
            c.touch(b * BLOCK_BYTES);
        }
        c.touch(8 * BLOCK_BYTES); // first block of page 1
        c.invalidate_page(0);
        for b in 0..8u64 {
            assert!(!c.contains(b * BLOCK_BYTES), "block {b} should be gone");
        }
        assert!(c.contains(8 * BLOCK_BYTES), "page 1 untouched");
    }

    #[test]
    fn capacity_bounded_by_geometry() {
        let mut c = cache();
        // Touch far more distinct blocks than capacity (128 blocks total).
        for i in 0..1000u64 {
            c.touch(i * BLOCK_BYTES);
        }
        assert_eq!(c.resident_blocks(), 128);
    }
}

//! Cache geometry of the KSR-1 memory hierarchy and address decomposition.
//!
//! From §2 of the paper, per processing cell:
//!
//! * **sub-cache** (first level): 0.25 MB data, 2-way set associative,
//!   *allocated* in 2 KB blocks, *filled* in 64 B sub-blocks from the
//!   local cache, random replacement;
//! * **local cache** (second level): 32 MB, 16-way set associative,
//!   *allocated* in 16 KB pages, *transferred* over the ring in 128 B
//!   sub-pages (the coherence unit), random replacement.
//!
//! The `scaled()` preset shrinks both capacities by a constant factor while
//! keeping every transfer/allocation unit intact, so kernel experiments can
//! run scaled-down problem sizes and still hit the paper's capacity
//! crossovers at the same processor counts (see DESIGN.md §1).

use ksr_core::{Error, Result};

/// Size of a coherence/transfer sub-page on the ring: 128 bytes.
pub const SUBPAGE_BYTES: u64 = 128;
/// Local-cache allocation unit: 16 KB pages.
pub const PAGE_BYTES: u64 = 16 * 1024;
/// Sub-cache fill unit: 64 B sub-blocks.
pub const SUBBLOCK_BYTES: u64 = 64;
/// Sub-cache allocation unit: 2 KB blocks.
pub const BLOCK_BYTES: u64 = 2 * 1024;

/// Sub-pages per local-cache page.
pub const SUBPAGES_PER_PAGE: usize = (PAGE_BYTES / SUBPAGE_BYTES) as usize;
/// Sub-blocks per sub-cache block.
pub const SUBBLOCKS_PER_BLOCK: usize = (BLOCK_BYTES / SUBBLOCK_BYTES) as usize;

/// Capacity/associativity description of the two cache levels in one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemGeometry {
    /// Sub-cache data capacity in bytes (KSR-1: 256 KB).
    pub subcache_bytes: u64,
    /// Sub-cache associativity (KSR-1: 2).
    pub subcache_ways: usize,
    /// Local-cache capacity in bytes (KSR-1: 32 MB).
    pub localcache_bytes: u64,
    /// Local-cache associativity (KSR-1: 16).
    pub localcache_ways: usize,
}

impl MemGeometry {
    /// The real KSR-1 geometry.
    #[must_use]
    pub fn ksr1() -> Self {
        Self {
            subcache_bytes: 256 * 1024,
            subcache_ways: 2,
            localcache_bytes: 32 * 1024 * 1024,
            localcache_ways: 16,
        }
    }

    /// Geometry with both capacities divided by `factor` (transfer units
    /// unchanged). Used together with problem sizes scaled by the same
    /// factor so that *data-per-processor vs. cache-capacity* ratios — the
    /// quantity the paper's CG and IS analyses revolve around — are
    /// preserved.
    ///
    /// # Panics
    /// Panics if the scaled geometry fails validation (factor too large).
    #[must_use]
    pub fn scaled(factor: u64) -> Self {
        let g = Self {
            subcache_bytes: 256 * 1024 / factor,
            subcache_ways: 2,
            localcache_bytes: 32 * 1024 * 1024 / factor,
            localcache_ways: 16,
        };
        g.validate().expect("scale factor too aggressive");
        g
    }

    /// Number of sets in the sub-cache.
    #[must_use]
    pub fn subcache_sets(&self) -> usize {
        (self.subcache_bytes / BLOCK_BYTES) as usize / self.subcache_ways
    }

    /// Number of sets in the local cache.
    #[must_use]
    pub fn localcache_sets(&self) -> usize {
        (self.localcache_bytes / PAGE_BYTES) as usize / self.localcache_ways
    }

    /// Validate the geometry.
    pub fn validate(&self) -> Result<()> {
        if self.subcache_ways == 0 || self.localcache_ways == 0 {
            return Err(Error::Config("associativity must be non-zero".into()));
        }
        if !self.subcache_bytes.is_multiple_of(BLOCK_BYTES)
            || !((self.subcache_bytes / BLOCK_BYTES) as usize).is_multiple_of(self.subcache_ways)
        {
            return Err(Error::Config(format!(
                "sub-cache size {} must be a multiple of {} x {} bytes",
                self.subcache_bytes, self.subcache_ways, BLOCK_BYTES
            )));
        }
        if !self.localcache_bytes.is_multiple_of(PAGE_BYTES)
            || !((self.localcache_bytes / PAGE_BYTES) as usize).is_multiple_of(self.localcache_ways)
        {
            return Err(Error::Config(format!(
                "local-cache size {} must be a multiple of {} x {} bytes",
                self.localcache_bytes, self.localcache_ways, PAGE_BYTES
            )));
        }
        if self.subcache_sets() == 0 || self.localcache_sets() == 0 {
            return Err(Error::Config("each cache needs at least one set".into()));
        }
        Ok(())
    }
}

/// Index of the 128 B sub-page containing `addr` (global, across all of
/// SVA space). This is also the ring interleave key and the hot-spot
/// serialization unit.
#[must_use]
pub fn subpage_of(addr: u64) -> u64 {
    addr / SUBPAGE_BYTES
}

/// Index of the 16 KB page containing `addr`.
#[must_use]
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_BYTES
}

/// Index of the 2 KB sub-cache block containing `addr`.
#[must_use]
pub fn block_of(addr: u64) -> u64 {
    addr / BLOCK_BYTES
}

/// Index of the 64 B sub-block containing `addr`.
#[must_use]
pub fn subblock_of(addr: u64) -> u64 {
    addr / SUBBLOCK_BYTES
}

/// Sub-page slot (0..127) of `addr` within its page.
#[must_use]
pub fn subpage_slot_in_page(addr: u64) -> usize {
    ((addr % PAGE_BYTES) / SUBPAGE_BYTES) as usize
}

/// Sub-block slot (0..31) of `addr` within its block.
#[must_use]
pub fn subblock_slot_in_block(addr: u64) -> usize {
    ((addr % BLOCK_BYTES) / SUBBLOCK_BYTES) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ksr1_geometry_matches_the_paper() {
        let g = MemGeometry::ksr1();
        g.validate().unwrap();
        // 256 KB / (2 KB blocks x 2 ways) = 64 sets.
        assert_eq!(g.subcache_sets(), 64);
        // 32 MB / (16 KB pages x 16 ways) = 128 sets.
        assert_eq!(g.localcache_sets(), 128);
    }

    #[test]
    fn units_are_the_papers() {
        assert_eq!(SUBPAGE_BYTES, 128);
        assert_eq!(PAGE_BYTES, 16 * 1024);
        assert_eq!(SUBBLOCK_BYTES, 64);
        assert_eq!(BLOCK_BYTES, 2 * 1024);
        assert_eq!(SUBPAGES_PER_PAGE, 128);
        assert_eq!(SUBBLOCKS_PER_BLOCK, 32);
    }

    #[test]
    fn scaled_preserves_structure() {
        let g = MemGeometry::scaled(64);
        g.validate().unwrap();
        assert_eq!(g.subcache_bytes, 4 * 1024);
        assert_eq!(g.localcache_bytes, 512 * 1024);
        assert_eq!(g.subcache_ways, 2);
        assert_eq!(g.localcache_ways, 16);
        assert!(g.subcache_sets() >= 1);
        assert!(g.localcache_sets() >= 1);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn absurd_scale_rejected() {
        let _ = MemGeometry::scaled(1 << 20);
    }

    #[test]
    fn address_decomposition() {
        let addr = 3 * PAGE_BYTES + 5 * SUBPAGE_BYTES + 17;
        assert_eq!(page_of(addr), 3);
        assert_eq!(subpage_of(addr), 3 * 128 + 5);
        assert_eq!(subpage_slot_in_page(addr), 5);
        let addr = 7 * BLOCK_BYTES + 2 * SUBBLOCK_BYTES + 1;
        assert_eq!(block_of(addr), 7);
        assert_eq!(subblock_of(addr), 7 * 32 + 2);
        assert_eq!(subblock_slot_in_block(addr), 2);
    }

    #[test]
    fn adjacent_subpages_alternate_interleave_parity() {
        let a = subpage_of(0);
        let b = subpage_of(SUBPAGE_BYTES);
        assert_eq!(a % 2, 0);
        assert_eq!(b % 2, 1);
    }
}

//! # ksr-mem
//!
//! The KSR-1 ALLCACHE memory system for the scalability-study
//! reproduction: a cache-only memory architecture (COMA) in which no
//! System Virtual Address has a fixed home — data lives wherever it was
//! last used, and an invalidation-based protocol over 128 B sub-pages
//! keeps the picture sequentially consistent (§2 of the paper).
//!
//! Layering:
//!
//! * [`geometry`] — the paper's exact cache geometry (256 KB 2-way
//!   sub-cache in 2 KB blocks / 64 B sub-blocks; 32 MB 16-way local cache
//!   in 16 KB pages / 128 B sub-pages) plus address decomposition;
//! * [`state`] — sub-page coherence states (invalid place holder, shared,
//!   exclusive, atomic);
//! * [`subcache`], [`localcache`] — per-cell residency structures with the
//!   random replacement policy the paper's methodology works around;
//! * [`directory`] — the simulator's O(1) answer to "who holds sub-page
//!   S?" (the hardware is directoryless; timing still flows through the
//!   ring);
//! * [`sva`] — the authoritative data plane;
//! * [`timing`] — calibrated latency constants (2 / 18 / 175 cycles);
//! * [`perfmon`] — the per-cell hardware performance monitor;
//! * [`protocol`] — the coherence engine: read/write misses, upgrades,
//!   `get_sub_page`/`release_sub_page`, `prefetch`, `poststore`,
//!   read-snarfing, hot-spot serialization, and page/block allocation
//!   overheads.

#![warn(missing_docs)]

pub mod directory;
pub mod geometry;
pub mod localcache;
pub mod perfmon;
pub mod protocol;
pub mod state;
pub mod subcache;
pub mod sva;
pub mod timing;

pub use directory::{Directory, Holders};
pub use geometry::{
    block_of, page_of, subblock_of, subpage_of, MemGeometry, BLOCK_BYTES, PAGE_BYTES,
    SUBBLOCK_BYTES, SUBPAGE_BYTES,
};
pub use localcache::{LocalCache, PageAlloc};
pub use perfmon::PerfMon;
pub use protocol::{MemEvent, MemOp, MemorySystem, Outcome, ProtocolFault, ProtocolOptions};
pub use state::SubpageState;
pub use subcache::{SubCache, SubCacheFill};
pub use sva::SvaStore;
pub use timing::CacheTiming;

//! Machine-readable rendering of verification results.
//!
//! Helpers turning [`TraceEvent`]s, checker [`Violation`]s, race
//! reports, and lint findings into [`ksr_core::Json`] values, plus the
//! assembler for the `violations.json` document the bench harness writes
//! in `--check` mode. Rendering is deterministic (insertion-order keys),
//! so a fixed seeded run produces a byte-identical file.

use ksr_core::trace::TraceEvent;
use ksr_core::Json;

use crate::checker::Violation;
use crate::explore::{ExploreReport, WitnessedViolation};
use crate::lint::LintFinding;
use crate::predict::PredictFinding;
use crate::race::RaceReport;

/// One trace event as a JSON object: `kind`, `at`, and the
/// variant-specific fields.
#[must_use]
pub fn event_to_json(ev: &TraceEvent) -> Json {
    let mut o = Json::obj([
        ("kind", Json::from(ev.kind().label())),
        ("at", Json::from(ev.at())),
    ]);
    match *ev {
        TraceEvent::RingSlot { wait, blocked, .. } => {
            o.push_field("wait", Json::from(wait));
            o.push_field("blocked", Json::from(blocked));
        }
        TraceEvent::Coherence {
            cell,
            subpage,
            from,
            to,
            ..
        } => {
            o.push_field("cell", Json::from(cell));
            o.push_field("subpage", Json::from(subpage));
            o.push_field("from", Json::from(from.label()));
            o.push_field("to", Json::from(to.label()));
        }
        TraceEvent::Snarf { cell, subpage, .. }
        | TraceEvent::Invalidation { cell, subpage, .. }
        | TraceEvent::AtomicRejection { cell, subpage, .. }
        | TraceEvent::LockHandoff { cell, subpage, .. } => {
            o.push_field("cell", Json::from(cell));
            o.push_field("subpage", Json::from(subpage));
        }
        TraceEvent::BarrierEpisode { cell, episode, .. } => {
            o.push_field("cell", Json::from(cell));
            o.push_field("episode", Json::from(episode));
        }
        TraceEvent::DataRead { cell, addr, .. }
        | TraceEvent::DataWrite { cell, addr, .. }
        | TraceEvent::SpinRead { cell, addr, .. } => {
            o.push_field("cell", Json::from(cell));
            o.push_field("addr", Json::from(addr));
        }
        TraceEvent::SyncAcquire {
            cell, subpage, rmw, ..
        }
        | TraceEvent::SyncRelease {
            cell, subpage, rmw, ..
        } => {
            o.push_field("cell", Json::from(cell));
            o.push_field("subpage", Json::from(subpage));
            o.push_field("rmw", Json::from(rmw));
        }
    }
    o
}

/// One coherence violation, including its replay window.
#[must_use]
pub fn violation_to_json(v: &Violation) -> Json {
    Json::obj([
        ("rule", Json::from(v.rule.label())),
        ("at", Json::from(v.at)),
        ("cell", Json::from(v.cell)),
        ("subpage", Json::from(v.subpage)),
        ("message", Json::from(v.message.as_str())),
        ("window", Json::arr(v.window.iter().map(event_to_json))),
    ])
}

/// One race report: the two unordered conflicting accesses.
#[must_use]
pub fn race_to_json(r: &RaceReport) -> Json {
    let side = |cell: usize, at: u64, write: bool| {
        Json::obj([
            ("cell", Json::from(cell)),
            ("at", Json::from(at)),
            ("write", Json::from(write)),
        ])
    };
    Json::obj([
        ("addr", Json::from(r.addr)),
        ("subpage", Json::from(r.subpage)),
        ("first", side(r.first.cell, r.first.at, r.first.write)),
        ("second", side(r.second.cell, r.second.at, r.second.write)),
    ])
}

/// One lint finding.
#[must_use]
pub fn lint_to_json(f: &LintFinding) -> Json {
    Json::obj([
        ("rule", Json::from(f.rule.label())),
        ("proc", f.proc.map_or(Json::Null, Json::from)),
        ("message", Json::from(f.message.as_str())),
    ])
}

/// One predictive finding (lockset / lock-order pass).
#[must_use]
pub fn predict_to_json(f: &PredictFinding) -> Json {
    Json::obj([
        ("rule", Json::from(f.rule.label())),
        ("addr", Json::from(f.addr)),
        ("cells", Json::arr(f.cells.iter().map(|&c| Json::from(c)))),
        ("message", Json::from(f.message.as_str())),
    ])
}

/// One explored violation with its witness schedule.
#[must_use]
pub fn witness_to_json(v: &WitnessedViolation) -> Json {
    Json::obj([
        ("kind", Json::from(v.kind.as_str())),
        ("what", Json::from(v.what.as_str())),
        (
            "schedule",
            Json::arr(v.schedule.iter().map(|&d| Json::from(d))),
        ),
    ])
}

/// An exploration summary: coverage counters plus the witnessed
/// violations.
#[must_use]
pub fn explore_to_json(r: &ExploreReport) -> Json {
    Json::obj([
        ("runs", Json::from(r.runs)),
        ("truncated", Json::from(r.truncated)),
        ("distinct_states", Json::from(r.distinct_states)),
        (
            "violations",
            Json::arr(r.violations.iter().map(witness_to_json)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Rule;
    use crate::lint::LintRule;
    use crate::race::Access;
    use ksr_core::trace::TraceState;

    #[test]
    fn event_json_carries_variant_fields() {
        let ev = TraceEvent::Coherence {
            at: 42,
            cell: 3,
            subpage: 9,
            from: TraceState::Shared,
            to: TraceState::Exclusive,
        };
        assert_eq!(
            event_to_json(&ev).render(),
            r#"{"kind":"coherence","at":42,"cell":3,"subpage":9,"from":"shared","to":"exclusive"}"#
        );
        let rmw = TraceEvent::SyncAcquire {
            at: 7,
            cell: 0,
            subpage: 2,
            rmw: true,
        };
        assert_eq!(
            event_to_json(&rmw).render(),
            r#"{"kind":"sync_acquire","at":7,"cell":0,"subpage":2,"rmw":true}"#
        );
    }

    #[test]
    fn violation_json_includes_window() {
        let v = Violation {
            at: 100,
            cell: 1,
            subpage: 5,
            rule: Rule::MultipleWriters,
            message: "two writers".into(),
            window: vec![TraceEvent::DataWrite {
                at: 99,
                cell: 1,
                addr: 640,
            }],
        };
        let j = violation_to_json(&v).render();
        assert!(j.contains(r#""rule":"multiple_writers""#));
        assert!(j.contains(r#""window":[{"kind":"data_write""#));
    }

    #[test]
    fn race_json_renders_both_sides() {
        let r = RaceReport {
            addr: 640,
            subpage: 5,
            first: Access {
                cell: 0,
                at: 10,
                write: true,
            },
            second: Access {
                cell: 1,
                at: 20,
                write: false,
            },
        };
        assert_eq!(
            race_to_json(&r).render(),
            r#"{"addr":640,"subpage":5,"first":{"cell":0,"at":10,"write":true},"second":{"cell":1,"at":20,"write":false}}"#
        );
    }

    #[test]
    fn predict_and_witness_json_are_stable() {
        use crate::predict::PredictRule;
        let f = PredictFinding {
            rule: PredictRule::PotentialDeadlock,
            addr: 7,
            cells: vec![0, 1],
            message: "m".into(),
        };
        assert_eq!(
            predict_to_json(&f).render(),
            r#"{"rule":"potential_deadlock","addr":7,"cells":[0,1],"message":"m"}"#
        );
        let w = WitnessedViolation {
            kind: "invariant".into(),
            what: "stale handoff".into(),
            schedule: vec![1, 0],
        };
        assert_eq!(
            witness_to_json(&w).render(),
            r#"{"kind":"invariant","what":"stale handoff","schedule":[1,0]}"#
        );
    }

    #[test]
    fn lint_json_null_proc_for_global_findings() {
        let f = LintFinding {
            rule: LintRule::BarrierParticipantCount,
            proc: None,
            message: "m".into(),
        };
        assert!(lint_to_json(&f).render().contains(r#""proc":null"#));
    }
}

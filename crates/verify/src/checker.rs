//! The ALLCACHE coherence-invariant checker.
//!
//! A [`CheckingSink`] shadows the *global* coherence state of every
//! sub-page by replaying [`TraceEvent`]s, and asserts the protocol
//! invariants the paper's results rest on (§2):
//!
//! * at most one `Exclusive`/`Atomic` copy of a sub-page at any time;
//! * no `Shared` copy coexisting with a writable copy (every
//!   invalidation must be acknowledged before a write commits);
//! * the per-cell transition emitted by the protocol must agree with the
//!   state the event stream itself implies (directory ⇔ cached copies);
//! * transitions must come from the protocol's legal transition table
//!   (e.g. an `Atomic` copy can only leave through a release);
//! * `get_sub_page` lands in `Atomic`, and `release_sub_page` is only
//!   issued while the releasing cell holds the sub-page `Atomic`;
//! * a snarf refill lands on a `Shared` copy, an invalidation leaves an
//!   `Invalid` place holder, an atomic rejection implies a live holder;
//! * a data write only commits on a cell holding write permission.
//!
//! Because `ksr-mem` routes *every* directory transition (including
//! warm-up and evictions) through one traced choke point, the shadow is
//! exact: any disagreement is a protocol bug, not checker drift. Each
//! violation is reported with the offending cycle, processor, and a
//! short event-window replay from an internal [`RingBufferSink`].

use ksr_core::time::Cycles;
use ksr_core::trace::{RingBufferSink, TraceEvent, TraceSink, TraceState};
use ksr_core::FxHashMap;
use ksr_mem::subpage_of;

/// Which invariant a [`Violation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Two or more cells hold writable (`Exclusive`/`Atomic`) copies.
    MultipleWriters,
    /// A `Shared` copy coexists with a writable copy — an invalidation
    /// was not acknowledged before the write side committed.
    SharedWithWriter,
    /// A transition's `from` state disagrees with the state the event
    /// stream itself implies for that cell.
    StaleTransition,
    /// A transition outside the protocol's legal transition table.
    IllegalTransition,
    /// An `Atomic` copy left through something other than a release.
    AtomicLost,
    /// A snarf refill on a cell not holding a fresh `Shared` copy.
    SnarfState,
    /// An invalidation event on a cell not left `Invalid`.
    InvalidationState,
    /// A `get_sub_page` rejection while no cell holds the sub-page
    /// atomic.
    RejectionWithoutHolder,
    /// A `get_sub_page` that did not land in the state it promises
    /// (`Atomic` for the real instruction, write permission for a native
    /// RMW).
    AcquireWithoutOwnership,
    /// A `release_sub_page` issued by a cell not holding the sub-page
    /// `Atomic`.
    ReleaseWithoutAtomic,
    /// A data write committed on a cell without write permission.
    WriteWithoutOwnership,
}

impl Rule {
    /// Stable snake_case label (used in `violations.json`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::MultipleWriters => "multiple_writers",
            Self::SharedWithWriter => "shared_with_writer",
            Self::StaleTransition => "stale_transition",
            Self::IllegalTransition => "illegal_transition",
            Self::AtomicLost => "atomic_lost",
            Self::SnarfState => "snarf_state",
            Self::InvalidationState => "invalidation_state",
            Self::RejectionWithoutHolder => "rejection_without_holder",
            Self::AcquireWithoutOwnership => "acquire_without_ownership",
            Self::ReleaseWithoutAtomic => "release_without_atomic",
            Self::WriteWithoutOwnership => "write_without_ownership",
        }
    }
}

/// One detected invariant violation, with enough context to debug it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The virtual cycle at which the offending event committed.
    pub at: Cycles,
    /// The processor/cell the offending event belongs to.
    pub cell: usize,
    /// The sub-page involved.
    pub subpage: u64,
    /// The invariant broken.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
    /// A short replay of the most recent events (oldest first, offending
    /// event last).
    pub window: Vec<TraceEvent>,
}

/// Checker tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CheckerConfig {
    /// Events of replay context kept per violation.
    pub window: usize,
    /// Hard cap on retained violations (a seeded protocol bug cascades;
    /// the count past the cap is still tracked in
    /// [`CheckingSink::truncated`]).
    pub max_violations: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        Self {
            window: 24,
            max_violations: 64,
        }
    }
}

/// A [`TraceSink`] asserting the ALLCACHE invariants online.
#[derive(Debug)]
pub struct CheckingSink {
    cfg: CheckerConfig,
    /// Per-sub-page non-`Missing` holder states.
    shadow: FxHashMap<u64, Vec<(usize, TraceState)>>,
    recent: RingBufferSink,
    violations: Vec<Violation>,
    truncated: u64,
    events_seen: u64,
}

fn writable(s: TraceState) -> bool {
    matches!(s, TraceState::Exclusive | TraceState::Atomic)
}

/// Legal per-cell transitions of the ALLCACHE protocol. `Missing` never
/// degrades straight to a place holder, and an `Atomic` copy only leaves
/// through a release (`→ Exclusive` locally, `→ Missing` on the
/// cache-less machines, where the release drops the copy).
fn legal_transition(from: TraceState, to: TraceState) -> bool {
    use TraceState::{Atomic, Exclusive, Invalid, Missing, Shared};
    match (from, to) {
        (Missing, Invalid) => false,
        (Atomic, Shared | Invalid) => false,
        (f, t) if f == t => false, // no-op transitions are never emitted
        (Missing | Invalid | Shared | Exclusive | Atomic, _) => true,
    }
}

impl Default for CheckingSink {
    fn default() -> Self {
        Self::new(CheckerConfig::default())
    }
}

impl CheckingSink {
    /// A checker with the given tuning.
    #[must_use]
    pub fn new(cfg: CheckerConfig) -> Self {
        Self {
            cfg,
            shadow: FxHashMap::default(),
            recent: RingBufferSink::new(cfg.window),
            violations: Vec::new(),
            truncated: 0,
            events_seen: 0,
        }
    }

    /// Violations detected so far (capped at
    /// [`CheckerConfig::max_violations`]).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no invariant has been violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.truncated == 0
    }

    /// Violations dropped past the retention cap.
    #[must_use]
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Total events observed (checked or not).
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The shadow state of `subpage` in `cell` implied by the event
    /// stream so far.
    #[must_use]
    pub fn shadow_state(&self, subpage: u64, cell: usize) -> TraceState {
        self.holder_state(subpage, cell)
    }

    fn holder_state(&self, sp: u64, cell: usize) -> TraceState {
        self.shadow
            .get(&sp)
            .and_then(|h| h.iter().find(|(c, _)| *c == cell))
            .map_or(TraceState::Missing, |(_, s)| *s)
    }

    fn set_holder(&mut self, sp: u64, cell: usize, to: TraceState) {
        let holders = self.shadow.entry(sp).or_default();
        holders.retain(|(c, _)| *c != cell);
        if to != TraceState::Missing {
            holders.push((cell, to));
        } else if holders.is_empty() {
            self.shadow.remove(&sp);
        }
    }

    fn report(&mut self, at: Cycles, cell: usize, subpage: u64, rule: Rule, message: String) {
        if self.violations.len() >= self.cfg.max_violations {
            self.truncated += 1;
            return;
        }
        self.violations.push(Violation {
            at,
            cell,
            subpage,
            rule,
            message,
            window: self.recent.events().copied().collect(),
        });
    }

    fn check_coherence(
        &mut self,
        at: Cycles,
        cell: usize,
        sp: u64,
        from: TraceState,
        to: TraceState,
    ) {
        let shadowed = self.holder_state(sp, cell);
        if shadowed != from {
            self.report(
                at,
                cell,
                sp,
                Rule::StaleTransition,
                format!(
                    "cell {cell} reports transition {} -> {} on sub-page {sp}, but the \
                     event stream implies it held {}",
                    from.label(),
                    to.label(),
                    shadowed.label()
                ),
            );
        }
        if !legal_transition(from, to) {
            let rule = if from == TraceState::Atomic {
                Rule::AtomicLost
            } else {
                Rule::IllegalTransition
            };
            self.report(
                at,
                cell,
                sp,
                rule,
                format!(
                    "illegal transition {} -> {} on sub-page {sp} in cell {cell}",
                    from.label(),
                    to.label()
                ),
            );
        }
        self.set_holder(sp, cell, to);

        // Global invariants over the holder set after the transition.
        let holders = self.shadow.get(&sp).cloned().unwrap_or_default();
        let writers: Vec<usize> = holders
            .iter()
            .filter(|(_, s)| writable(*s))
            .map(|(c, _)| *c)
            .collect();
        if writers.len() > 1 {
            self.report(
                at,
                cell,
                sp,
                Rule::MultipleWriters,
                format!(
                    "sub-page {sp} has {} writable copies: cells {writers:?}",
                    writers.len()
                ),
            );
        } else if writers.len() == 1 {
            let sharers: Vec<usize> = holders
                .iter()
                .filter(|(_, s)| *s == TraceState::Shared)
                .map(|(c, _)| *c)
                .collect();
            if !sharers.is_empty() {
                self.report(
                    at,
                    cell,
                    sp,
                    Rule::SharedWithWriter,
                    format!(
                        "sub-page {sp}: cell {} holds a writable copy while cells \
                         {sharers:?} still hold Shared copies (invalidation not \
                         acknowledged before the write side committed)",
                        writers[0]
                    ),
                );
            }
        }
    }

    fn check(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Coherence {
                at,
                cell,
                subpage,
                from,
                to,
            } => self.check_coherence(at, cell, subpage, from, to),
            TraceEvent::Snarf { at, cell, subpage } => {
                let st = self.holder_state(subpage, cell);
                if st != TraceState::Shared {
                    self.report(
                        at,
                        cell,
                        subpage,
                        Rule::SnarfState,
                        format!(
                            "snarf refill on sub-page {subpage} left cell {cell} in {}, \
                             not Shared",
                            st.label()
                        ),
                    );
                }
            }
            TraceEvent::Invalidation { at, cell, subpage } => {
                let st = self.holder_state(subpage, cell);
                if st != TraceState::Invalid {
                    self.report(
                        at,
                        cell,
                        subpage,
                        Rule::InvalidationState,
                        format!(
                            "invalidation of sub-page {subpage} left cell {cell} in {}, \
                             not Invalid",
                            st.label()
                        ),
                    );
                }
            }
            TraceEvent::AtomicRejection { at, cell, subpage } => {
                let holder_exists = self
                    .shadow
                    .get(&subpage)
                    .is_some_and(|h| h.iter().any(|(_, s)| *s == TraceState::Atomic));
                if !holder_exists {
                    self.report(
                        at,
                        cell,
                        subpage,
                        Rule::RejectionWithoutHolder,
                        format!(
                            "cell {cell} was rejected from sub-page {subpage} but no \
                             cell holds it Atomic"
                        ),
                    );
                }
            }
            TraceEvent::SyncAcquire {
                at,
                cell,
                subpage,
                rmw,
            } => {
                let st = self.holder_state(subpage, cell);
                if rmw {
                    // A native RMW needs write permission, but only where
                    // caches exist at all (the cache-less machines leave
                    // no holder entries to check against).
                    let any_holder = self.shadow.contains_key(&subpage);
                    if any_holder && !writable(st) {
                        self.report(
                            at,
                            cell,
                            subpage,
                            Rule::AcquireWithoutOwnership,
                            format!(
                                "native RMW on sub-page {subpage} committed while cell \
                                 {cell} held {}",
                                st.label()
                            ),
                        );
                    }
                } else if st != TraceState::Atomic {
                    self.report(
                        at,
                        cell,
                        subpage,
                        Rule::AcquireWithoutOwnership,
                        format!(
                            "get_sub_page granted sub-page {subpage} to cell {cell} but \
                             left it in {}",
                            st.label()
                        ),
                    );
                }
            }
            TraceEvent::SyncRelease {
                at,
                cell,
                subpage,
                rmw,
            } => {
                // Real releases are stamped at issue time, while the
                // holder must still be Atomic. RMW "releases" carry no
                // Atomic state and share the acquire-side check.
                let st = self.holder_state(subpage, cell);
                if !rmw && st != TraceState::Atomic {
                    self.report(
                        at,
                        cell,
                        subpage,
                        Rule::ReleaseWithoutAtomic,
                        format!(
                            "cell {cell} released sub-page {subpage} while holding {} \
                             (release_sub_page is only legal from Atomic)",
                            st.label()
                        ),
                    );
                }
            }
            TraceEvent::DataWrite { at, cell, addr } => {
                let sp = subpage_of(addr);
                // Only checkable where caches exist: the cache-less
                // machines never register holders for plain accesses.
                let any_holder = self.shadow.contains_key(&sp);
                let st = self.holder_state(sp, cell);
                if any_holder && !writable(st) {
                    self.report(
                        at,
                        cell,
                        sp,
                        Rule::WriteWithoutOwnership,
                        format!(
                            "write to {addr:#x} committed while cell {cell} held \
                             sub-page {sp} in {}",
                            st.label()
                        ),
                    );
                }
            }
            TraceEvent::RingSlot { .. }
            | TraceEvent::BarrierEpisode { .. }
            | TraceEvent::LockHandoff { .. }
            | TraceEvent::DataRead { .. }
            | TraceEvent::SpinRead { .. } => {}
        }
    }
}

impl TraceSink for CheckingSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events_seen += 1;
        self.recent.record(event);
        self.check(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coh(at: Cycles, cell: usize, sp: u64, from: TraceState, to: TraceState) -> TraceEvent {
        TraceEvent::Coherence {
            at,
            cell,
            subpage: sp,
            from,
            to,
        }
    }

    fn checked(events: &[TraceEvent]) -> CheckingSink {
        let mut sink = CheckingSink::default();
        for e in events {
            sink.record(e);
        }
        sink
    }

    #[test]
    fn clean_handoff_sequence_passes() {
        use TraceState::{Atomic, Exclusive, Invalid, Missing, Shared};
        // Demotions/invalidations are emitted before the requester's
        // grant, exactly as `coherence_fetch` orders its set_state calls.
        let sink = checked(&[
            coh(10, 0, 5, Missing, Exclusive), // first touch
            coh(20, 0, 5, Exclusive, Shared),  // owner demotes...
            coh(20, 1, 5, Missing, Shared),    // ...then read miss fills
            coh(30, 0, 5, Shared, Invalid),    // invalidate first...
            coh(30, 1, 5, Shared, Exclusive),  // ...then upgrade
            TraceEvent::Invalidation {
                at: 30,
                cell: 0,
                subpage: 5,
            },
            TraceEvent::DataWrite {
                at: 31,
                cell: 1,
                addr: 5 * 128,
            },
            coh(40, 1, 5, Exclusive, Atomic), // get_sub_page local flip
            TraceEvent::SyncAcquire {
                at: 40,
                cell: 1,
                subpage: 5,
                rmw: false,
            },
            TraceEvent::AtomicRejection {
                at: 45,
                cell: 0,
                subpage: 5,
            },
            TraceEvent::SyncRelease {
                at: 50,
                cell: 1,
                subpage: 5,
                rmw: false,
            },
            coh(51, 1, 5, Atomic, Exclusive),  // release applied
            coh(60, 1, 5, Exclusive, Missing), // eviction
        ]);
        assert!(sink.is_clean(), "{:?}", sink.violations());
        assert_eq!(sink.events_seen(), 13);
    }

    #[test]
    fn two_writable_copies_detected() {
        use TraceState::{Exclusive, Missing};
        let sink = checked(&[
            coh(10, 0, 7, Missing, Exclusive),
            coh(90, 1, 7, Missing, Exclusive), // second writer: protocol bug
        ]);
        let v = &sink.violations()[0];
        assert_eq!(v.rule, Rule::MultipleWriters);
        assert_eq!(v.at, 90);
        assert_eq!(v.subpage, 7);
        assert_eq!(v.window.len(), 2, "window replays the offending events");
    }

    #[test]
    fn shared_beside_exclusive_detected() {
        use TraceState::{Exclusive, Missing, Shared};
        let sink = checked(&[
            coh(10, 0, 3, Missing, Shared),
            coh(20, 1, 3, Missing, Exclusive), // demotion/invalidation missed
        ]);
        assert!(sink
            .violations()
            .iter()
            .any(|v| v.rule == Rule::SharedWithWriter && v.at == 20));
    }

    #[test]
    fn stale_from_state_detected() {
        use TraceState::{Exclusive, Missing, Shared};
        let sink = checked(&[
            coh(10, 0, 2, Missing, Exclusive),
            coh(20, 0, 2, Shared, Missing), // emitter thinks Shared; stream says Exclusive
        ]);
        assert_eq!(sink.violations()[0].rule, Rule::StaleTransition);
    }

    #[test]
    fn atomic_cannot_leave_without_release() {
        use TraceState::{Atomic, Invalid, Missing};
        let sink = checked(&[
            coh(10, 0, 9, Missing, Atomic),
            coh(20, 0, 9, Atomic, Invalid), // a locked copy silently dropped
        ]);
        assert_eq!(sink.violations()[0].rule, Rule::AtomicLost);
    }

    #[test]
    fn release_without_atomic_detected() {
        use TraceState::{Exclusive, Missing};
        let sink = checked(&[
            coh(10, 0, 4, Missing, Exclusive),
            TraceEvent::SyncRelease {
                at: 20,
                cell: 0,
                subpage: 4,
                rmw: false,
            },
        ]);
        let v = &sink.violations()[0];
        assert_eq!(v.rule, Rule::ReleaseWithoutAtomic);
        assert!(v.message.contains("exclusive"));
    }

    #[test]
    fn write_without_ownership_detected() {
        use TraceState::{Missing, Shared};
        let sink = checked(&[
            coh(10, 0, 4, Missing, Shared),
            TraceEvent::DataWrite {
                at: 20,
                cell: 0,
                addr: 4 * 128 + 8,
            },
        ]);
        assert_eq!(sink.violations()[0].rule, Rule::WriteWithoutOwnership);
    }

    #[test]
    fn cacheless_writes_are_not_flagged() {
        // No Coherence events ever seen for the sub-page (Butterfly-style
        // plain accesses): the write-permission rule must stay silent.
        let sink = checked(&[TraceEvent::DataWrite {
            at: 20,
            cell: 0,
            addr: 4 * 128,
        }]);
        assert!(sink.is_clean());
    }

    #[test]
    fn rejection_needs_a_holder() {
        let sink = checked(&[TraceEvent::AtomicRejection {
            at: 5,
            cell: 2,
            subpage: 1,
        }]);
        assert_eq!(sink.violations()[0].rule, Rule::RejectionWithoutHolder);
    }

    #[test]
    fn violation_cap_counts_overflow() {
        use TraceState::{Exclusive, Missing};
        let mut sink = CheckingSink::new(CheckerConfig {
            window: 4,
            max_violations: 2,
        });
        sink.record(&coh(1, 0, 1, Missing, Exclusive));
        for i in 0..5 {
            // Same illegal pattern repeatedly: a second writable copy.
            sink.record(&coh(10 + i, 1, 1, Missing, Exclusive));
            sink.record(&coh(20 + i, 1, 1, Exclusive, Missing));
        }
        assert_eq!(sink.violations().len(), 2);
        assert!(sink.truncated() > 0);
        assert!(!sink.is_clean());
    }
}

//! Predictive concurrency analysis over a *single* observed trace.
//!
//! The happens-before race detector ([`crate::RaceDetector`]) only
//! reports pairs that are genuinely unordered in the one schedule the
//! deterministic coordinator picked. These passes predict problems a
//! *different* schedule could expose from the same trace:
//!
//! * [`lockset_analysis`] — an Eraser-style lockset pass: a shared
//!   variable written by two processors whose accesses share no common
//!   lock is flagged ([`PredictRule::EmptyLockset`]) even when the vector
//!   clocks happen to order the accesses in this run. Barrier-phased
//!   programs are handled by *era refinement*: an access in a strictly
//!   later barrier era than every previous access to the variable resets
//!   its state to exclusive (ownership legitimately handed off through
//!   the barrier), which keeps the bucket-handoff idiom of the NAS IS
//!   kernel clean without losing same-era detection.
//! * [`LockOrderGraph`] — an online [`TraceSink`] building the
//!   lock-order graph from nested `get_sub_page` holds: a cycle in the
//!   graph is a potential deadlock ([`PredictRule::PotentialDeadlock`])
//!   even if the observed run never blocked, and a barrier episode
//!   entered while holding a lock is flagged
//!   ([`PredictRule::LockHeldAtBarrier`]) as a lock/barrier interleaving
//!   hazard — one late arrival and every other processor waits behind
//!   the held lock.
//! * [`PredictiveSink`] — the coherence checker and the lock-order graph
//!   fused into one sink, so `run_all --check` runs both over every
//!   machine for free.
//!
//! Everything here only *observes*; findings are reported in a
//! deterministic order so `violations.json` is byte-stable.

use std::collections::{BTreeMap, BTreeSet};

use ksr_core::time::Cycles;
use ksr_core::trace::{TraceEvent, TraceSink};
use ksr_mem::subpage_of;

use crate::checker::{CheckerConfig, CheckingSink, Violation};
use crate::race::RaceDetector;

/// Which predictive rule a [`PredictFinding`] comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PredictRule {
    /// A shared, written variable whose accesses share no common lock —
    /// a schedule-dependent race even if this run's accesses were
    /// ordered.
    EmptyLockset,
    /// A cycle in the lock-order graph — two processors acquiring the
    /// same locks in opposite nesting orders can deadlock under an
    /// adversarial schedule.
    PotentialDeadlock,
    /// A barrier episode completed while the processor still held a
    /// lock — a late peer blocks the whole barrier behind that lock.
    LockHeldAtBarrier,
}

impl PredictRule {
    /// Stable snake_case label (used in `violations.json`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::EmptyLockset => "empty_lockset",
            Self::PotentialDeadlock => "potential_deadlock",
            Self::LockHeldAtBarrier => "lock_held_at_barrier",
        }
    }
}

/// One predicted (never-observed) concurrency hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictFinding {
    /// The rule that fired.
    pub rule: PredictRule,
    /// The address or sub-page the finding anchors to: the racy word for
    /// [`PredictRule::EmptyLockset`], the smallest lock sub-page of the
    /// cycle for [`PredictRule::PotentialDeadlock`], the held lock
    /// sub-page for [`PredictRule::LockHeldAtBarrier`].
    pub addr: u64,
    /// Processors involved, ascending.
    pub cells: Vec<usize>,
    /// Human-readable description.
    pub message: String,
}

// ---------------------------------------------------------------------
// Eraser-style lockset pass
// ---------------------------------------------------------------------

/// Lockset state of one shared variable (classic Eraser, plus a barrier
/// era for phase-structured programs).
#[derive(Debug)]
struct LocksetState {
    /// Cell of the last access (ownership while exclusive).
    owner: usize,
    /// Shared between cells since the last era reset.
    shared: bool,
    /// Written while shared (the dangerous state).
    written_shared: bool,
    /// Candidate lockset: locks held at *every* access since sharing
    /// began. `None` until first shared.
    lockset: Option<BTreeSet<u64>>,
    /// Highest barrier era of any access so far.
    era: u64,
    /// First two accesses from distinct cells with an empty lockset
    /// (witnesses for the report): (cell, at, write).
    witnesses: Vec<(usize, Cycles, bool)>,
}

/// Run the Eraser-style lockset discipline check over one collected
/// event batch.
///
/// Sub-pages classified as synchronization objects (locks, RMW targets,
/// spun-on flags — the same pre-pass the race detector uses) are exempt:
/// racing on them is their job. Results are sorted by address, one
/// finding per address.
#[must_use]
pub fn lockset_analysis(events: &[TraceEvent]) -> Vec<PredictFinding> {
    let sync = RaceDetector::sync_subpages(events);
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].at());

    let mut held: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    let mut eras: BTreeMap<usize, u64> = BTreeMap::new();
    let mut vars: BTreeMap<u64, LocksetState> = BTreeMap::new();
    let mut findings: BTreeMap<u64, PredictFinding> = BTreeMap::new();

    for i in order {
        match events[i] {
            TraceEvent::SyncAcquire {
                cell,
                subpage,
                rmw: false,
                ..
            } => {
                held.entry(cell).or_default().insert(subpage);
            }
            TraceEvent::SyncRelease {
                cell,
                subpage,
                rmw: false,
                ..
            } => {
                held.entry(cell).or_default().remove(&subpage);
            }
            TraceEvent::BarrierEpisode { cell, .. } => {
                *eras.entry(cell).or_insert(0) += 1;
            }
            TraceEvent::DataRead { at, cell, addr } | TraceEvent::DataWrite { at, cell, addr } => {
                if sync.contains(&subpage_of(addr)) {
                    continue;
                }
                let write = matches!(events[i], TraceEvent::DataWrite { .. });
                let era = eras.get(&cell).copied().unwrap_or(0);
                let locks = held.get(&cell).cloned().unwrap_or_default();
                let var = vars.entry(addr).or_insert(LocksetState {
                    owner: cell,
                    shared: false,
                    written_shared: false,
                    lockset: Some(locks.clone()),
                    era,
                    witnesses: vec![(cell, at, write)],
                });
                if era > var.era {
                    // Barrier handoff: every older access happened in an
                    // earlier phase; ownership restarts with this access.
                    *var = LocksetState {
                        owner: cell,
                        shared: false,
                        written_shared: false,
                        lockset: Some(locks),
                        era,
                        witnesses: vec![(cell, at, write)],
                    };
                    continue;
                }
                // Refine the candidate lockset at *every* access since
                // the last era reset — including the exclusive phase, so
                // the first owner's locks participate in the
                // intersection once a second cell shows up.
                match &mut var.lockset {
                    None => var.lockset = Some(locks),
                    Some(ls) => {
                        let keep: BTreeSet<u64> = ls.intersection(&locks).copied().collect();
                        *ls = keep;
                    }
                }
                if !var.shared && cell == var.owner {
                    continue; // still exclusive to one cell
                }
                // Second cell reached the variable within one era.
                var.shared = true;
                var.written_shared |= write;
                if var.witnesses.len() < 2 && var.witnesses.first().map(|w| w.0) != Some(cell) {
                    var.witnesses.push((cell, at, write));
                }
                let empty = var.lockset.as_ref().is_some_and(BTreeSet::is_empty);
                if var.written_shared && empty && !findings.contains_key(&addr) {
                    let mut cells: Vec<usize> = var.witnesses.iter().map(|w| w.0).collect();
                    cells.sort_unstable();
                    cells.dedup();
                    findings.insert(
                        addr,
                        PredictFinding {
                            rule: PredictRule::EmptyLockset,
                            addr,
                            message: format!(
                                "address {addr:#x} is written by cells {cells:?} in the \
                                 same barrier era with no consistently held lock \
                                 (lockset became empty at cycle {at})"
                            ),
                            cells,
                        },
                    );
                }
            }
            _ => {}
        }
    }
    findings.into_values().collect()
}

// ---------------------------------------------------------------------
// Lock-order graph
// ---------------------------------------------------------------------

/// Online lock-order graph over the `SyncAcquire`/`SyncRelease` stream.
///
/// An edge `a -> b` means some processor acquired lock sub-page `b`
/// while holding `a`. A cycle means two processors can nest the same
/// locks in opposite orders — a potential deadlock even when the
/// observed schedule serialized them. RMW pseudo-locks (`rmw: true`) are
/// skipped: they are indivisible and can never participate in a hold
/// cycle.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    /// Per-cell held lock sub-pages, in acquisition order.
    held: BTreeMap<usize, Vec<u64>>,
    /// `a -> {b -> first witness (cell, at)}`.
    edges: BTreeMap<u64, BTreeMap<u64, (usize, Cycles)>>,
    /// First barrier episode completed while holding a lock, per cell:
    /// (at, held locks at that moment).
    barrier_hazards: BTreeMap<usize, (Cycles, Vec<u64>)>,
}

impl LockOrderGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one batch of already-collected events.
    pub fn ingest(&mut self, events: &[TraceEvent]) {
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| events[i].at());
        for i in order {
            self.record(&events[i]);
        }
    }

    /// Directed edges observed so far, as `(from, to, witness cell,
    /// witness cycle)` in deterministic order.
    #[must_use]
    pub fn edges(&self) -> Vec<(u64, u64, usize, Cycles)> {
        self.edges
            .iter()
            .flat_map(|(&a, tos)| tos.iter().map(move |(&b, &(c, at))| (a, b, c, at)))
            .collect()
    }

    fn reachable(&self, from: u64, to: u64) -> Option<Vec<u64>> {
        // BFS with parent links; lock graphs are tiny (a handful of
        // distinct lock sub-pages), so no need for anything cleverer.
        let mut parent: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        parent.insert(from, None);
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                let mut path = vec![n];
                let mut cur = n;
                while let Some(&Some(p)) = parent.get(&cur) {
                    cur = p;
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if let Some(tos) = self.edges.get(&n) {
                for &next in tos.keys() {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                        e.insert(Some(n));
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    }

    /// All distinct lock-order cycles (as canonical sorted node sets,
    /// with one witness path each), in deterministic order.
    #[must_use]
    pub fn cycles(&self) -> Vec<Vec<u64>> {
        let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
        let mut out = Vec::new();
        for (&a, tos) in &self.edges {
            for &b in tos.keys() {
                if a == b {
                    continue;
                }
                // Edge a -> b closes a cycle iff b reaches a.
                if let Some(back) = self.reachable(b, a) {
                    let mut canon = back.clone();
                    canon.sort_unstable();
                    canon.dedup();
                    if seen.insert(canon.clone()) {
                        out.push(canon);
                    }
                }
            }
        }
        out
    }

    /// Findings from the graph built so far: one
    /// [`PredictRule::PotentialDeadlock`] per distinct cycle, one
    /// [`PredictRule::LockHeldAtBarrier`] per offending cell.
    #[must_use]
    pub fn findings(&self) -> Vec<PredictFinding> {
        let mut out = Vec::new();
        for cycle in self.cycles() {
            let mut cells: Vec<usize> = Vec::new();
            for w in &cycle {
                for (&a, tos) in &self.edges {
                    for (&b, &(c, _)) in tos {
                        if (a == *w || b == *w) && cycle.contains(&a) && cycle.contains(&b) {
                            cells.push(c);
                        }
                    }
                }
            }
            cells.sort_unstable();
            cells.dedup();
            out.push(PredictFinding {
                rule: PredictRule::PotentialDeadlock,
                addr: cycle[0],
                message: format!(
                    "lock sub-pages {cycle:?} are acquired in conflicting nesting \
                     orders by cells {cells:?}: an adversarial schedule can deadlock \
                     here even though this run completed"
                ),
                cells,
            });
        }
        for (&cell, (at, locks)) in &self.barrier_hazards {
            out.push(PredictFinding {
                rule: PredictRule::LockHeldAtBarrier,
                addr: locks[0],
                cells: vec![cell],
                message: format!(
                    "cell {cell} completed a barrier episode at cycle {at} while \
                     holding lock sub-pages {locks:?}: a late peer serializes the \
                     whole barrier behind those locks"
                ),
            });
        }
        out
    }

    /// Whether no hazard has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings().is_empty()
    }
}

impl TraceSink for LockOrderGraph {
    fn record(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::SyncAcquire {
                at,
                cell,
                subpage,
                rmw: false,
            } => {
                let held = self.held.entry(cell).or_default();
                for &h in held.iter() {
                    if h != subpage {
                        self.edges
                            .entry(h)
                            .or_default()
                            .entry(subpage)
                            .or_insert((cell, at));
                    }
                }
                held.push(subpage);
            }
            TraceEvent::SyncRelease {
                cell,
                subpage,
                rmw: false,
                ..
            } => {
                if let Some(held) = self.held.get_mut(&cell) {
                    if let Some(pos) = held.iter().rposition(|&h| h == subpage) {
                        held.remove(pos);
                    }
                }
            }
            TraceEvent::BarrierEpisode { at, cell, .. } => {
                let held = self.held.get(&cell).filter(|h| !h.is_empty());
                if let Some(held) = held {
                    self.barrier_hazards
                        .entry(cell)
                        .or_insert_with(|| (at, held.clone()));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Combined sink
// ---------------------------------------------------------------------

/// The coherence checker and the lock-order graph fused into one
/// [`TraceSink`], so a harness attaching one sink per machine gets both
/// analyses.
#[derive(Debug, Default)]
pub struct PredictiveSink {
    checker: CheckingSink,
    lock_graph: LockOrderGraph,
}

impl PredictiveSink {
    /// A combined sink with the given coherence-checker tuning.
    #[must_use]
    pub fn new(cfg: CheckerConfig) -> Self {
        Self {
            checker: CheckingSink::new(cfg),
            lock_graph: LockOrderGraph::new(),
        }
    }

    /// The coherence side.
    #[must_use]
    pub fn checker(&self) -> &CheckingSink {
        &self.checker
    }

    /// The lock-order side.
    #[must_use]
    pub fn lock_graph(&self) -> &LockOrderGraph {
        &self.lock_graph
    }

    /// Coherence violations detected so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        self.checker.violations()
    }

    /// Predictive lock-order findings so far.
    #[must_use]
    pub fn predict_findings(&self) -> Vec<PredictFinding> {
        self.lock_graph.findings()
    }

    /// Whether both analyses are clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.checker.is_clean() && self.lock_graph.is_clean()
    }
}

impl TraceSink for PredictiveSink {
    fn record(&mut self, event: &TraceEvent) {
        self.checker.record(event);
        self.lock_graph.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SP: u64 = 128;

    fn acq(at: Cycles, cell: usize, sp: u64) -> TraceEvent {
        TraceEvent::SyncAcquire {
            at,
            cell,
            subpage: sp,
            rmw: false,
        }
    }

    fn rel(at: Cycles, cell: usize, sp: u64) -> TraceEvent {
        TraceEvent::SyncRelease {
            at,
            cell,
            subpage: sp,
            rmw: false,
        }
    }

    fn w(at: Cycles, cell: usize, addr: u64) -> TraceEvent {
        TraceEvent::DataWrite { at, cell, addr }
    }

    fn barrier(at: Cycles, cell: usize) -> TraceEvent {
        TraceEvent::BarrierEpisode {
            at,
            cell,
            episode: 1,
        }
    }

    #[test]
    fn ordered_but_unlocked_writes_are_flagged() {
        // Cell 1's write is ordered after cell 0's via a *different*
        // lock each time — happens-before sees no race, Eraser does.
        let data = 3 * SP;
        let findings = lockset_analysis(&[
            acq(10, 0, 50),
            w(11, 0, data),
            rel(12, 0, 50),
            acq(20, 1, 60),
            w(21, 1, data),
            rel(22, 1, 60),
        ]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, PredictRule::EmptyLockset);
        assert_eq!(findings[0].addr, data);
        assert_eq!(findings[0].cells, vec![0, 1]);
    }

    #[test]
    fn consistent_lock_keeps_the_lockset_nonempty() {
        let data = 3 * SP;
        let findings = lockset_analysis(&[
            acq(10, 0, 50),
            w(11, 0, data),
            rel(12, 0, 50),
            acq(20, 1, 50),
            w(21, 1, data),
            rel(22, 1, 50),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn barrier_era_handoff_is_not_flagged() {
        // Phase 1: cell 0 owns the word. Barrier. Phase 2: cell 1 owns
        // it. Classic bucket handoff — no lock needed, no finding.
        let data = 3 * SP;
        let findings = lockset_analysis(&[
            w(10, 0, data),
            barrier(20, 0),
            barrier(20, 1),
            w(30, 1, data),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn same_era_unlocked_sharing_is_still_flagged_after_a_barrier() {
        let data = 3 * SP;
        let findings =
            lockset_analysis(&[barrier(5, 0), barrier(5, 1), w(10, 0, data), w(30, 1, data)]);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn sync_subpage_accesses_are_exempt() {
        let flag = 9 * SP;
        let findings = lockset_analysis(&[
            w(10, 0, flag),
            w(12, 1, flag),
            TraceEvent::SpinRead {
                at: 20,
                cell: 1,
                addr: flag,
            },
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn opposite_nesting_orders_form_a_cycle() {
        let mut g = LockOrderGraph::new();
        g.ingest(&[
            acq(10, 0, 1),
            acq(11, 0, 2), // 1 -> 2
            rel(12, 0, 2),
            rel(13, 0, 1),
            acq(20, 1, 2),
            acq(21, 1, 1), // 2 -> 1: cycle
            rel(22, 1, 1),
            rel(23, 1, 2),
        ]);
        let cycles = g.cycles();
        assert_eq!(cycles, vec![vec![1, 2]]);
        let f = g.findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, PredictRule::PotentialDeadlock);
        assert_eq!(f[0].cells, vec![0, 1]);
    }

    #[test]
    fn consistent_nesting_is_acyclic() {
        let mut g = LockOrderGraph::new();
        g.ingest(&[
            acq(10, 0, 1),
            acq(11, 0, 2),
            rel(12, 0, 2),
            rel(13, 0, 1),
            acq(20, 1, 1),
            acq(21, 1, 2),
            rel(22, 1, 2),
            rel(23, 1, 1),
        ]);
        assert!(g.is_clean(), "{:?}", g.findings());
        assert_eq!(g.edges().len(), 1);
    }

    #[test]
    fn three_lock_cycle_found_once() {
        let mut g = LockOrderGraph::new();
        // 1 -> 2 (cell 0), 2 -> 3 (cell 1), 3 -> 1 (cell 2).
        g.ingest(&[
            acq(10, 0, 1),
            acq(11, 0, 2),
            rel(12, 0, 2),
            rel(13, 0, 1),
            acq(20, 1, 2),
            acq(21, 1, 3),
            rel(22, 1, 3),
            rel(23, 1, 2),
            acq(30, 2, 3),
            acq(31, 2, 1),
            rel(32, 2, 1),
            rel(33, 2, 3),
        ]);
        assert_eq!(g.cycles(), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn rmw_pseudo_locks_never_form_edges() {
        let mut g = LockOrderGraph::new();
        g.ingest(&[
            acq(10, 0, 1),
            TraceEvent::SyncAcquire {
                at: 11,
                cell: 0,
                subpage: 2,
                rmw: true,
            },
            TraceEvent::SyncRelease {
                at: 11,
                cell: 0,
                subpage: 2,
                rmw: true,
            },
            rel(12, 0, 1),
        ]);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn barrier_while_holding_a_lock_is_a_hazard() {
        let mut g = LockOrderGraph::new();
        g.ingest(&[acq(10, 0, 7), barrier(20, 0), rel(30, 0, 7)]);
        let f = g.findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, PredictRule::LockHeldAtBarrier);
        assert_eq!(f[0].addr, 7);
    }

    #[test]
    fn combined_sink_reports_both_sides() {
        use ksr_core::trace::TraceState::{Exclusive, Missing};
        let mut sink = PredictiveSink::default();
        for e in [
            TraceEvent::Coherence {
                at: 10,
                cell: 0,
                subpage: 9,
                from: Missing,
                to: Exclusive,
            },
            TraceEvent::Coherence {
                at: 20,
                cell: 1,
                subpage: 9,
                from: Missing,
                to: Exclusive,
            },
            acq(30, 0, 1),
            acq(31, 0, 2),
            rel(32, 0, 2),
            rel(33, 0, 1),
            acq(40, 1, 2),
            acq(41, 1, 1),
            rel(42, 1, 1),
            rel(43, 1, 2),
        ] {
            sink.record(&e);
        }
        assert!(!sink.is_clean());
        // The synthetic acquire/release events carry no backing Atomic
        // coherence transitions, so the checker also flags those; the
        // seeded double-writer must be among the violations.
        assert!(
            sink.violations()
                .iter()
                .any(|v| v.rule == crate::checker::Rule::MultipleWriters),
            "coherence side: {:?}",
            sink.violations()
        );
        let predicted = sink.predict_findings();
        assert_eq!(predicted.len(), 1, "lock-order side: {predicted:?}");
        assert_eq!(predicted[0].rule, PredictRule::PotentialDeadlock);
    }
}

//! Static lints over program *schedules* — checks that run before any
//! simulation does.
//!
//! A [`ProcSchedule`] is a declarative summary of the synchronization
//! and data-movement shape of one processor's program: which barriers it
//! joins (and with what arity), which locks it takes and drops, which
//! sub-pages it prefetches and later touches. Kernels that build their
//! programs from a schedule (or can derive one) get these mistakes
//! caught at zero simulation cost:
//!
//! * a barrier declared with different arities on different processors,
//!   joined by a different number of processors than its arity, or
//!   joined a different number of times by different participants
//!   (guaranteed deadlock or silent episode skew);
//! * a lock acquired twice without an intervening release, released
//!   while not held, or still held when the schedule ends;
//! * a prefetch of a sub-page the processor never reads or writes
//!   afterwards (pure ring traffic — the §4 prefetch extension only pays
//!   off when the data is actually consumed).

use ksr_core::{FxHashMap, FxHashSet};

/// One step of a processor's schedule, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedOp {
    /// Acquire the lock identified by `lock`.
    Acquire {
        /// Opaque lock identity (e.g. its sub-page).
        lock: u64,
    },
    /// Release the lock identified by `lock`.
    Release {
        /// Opaque lock identity (e.g. its sub-page).
        lock: u64,
    },
    /// Join barrier `id`, which the program believes has `arity`
    /// participants.
    Barrier {
        /// Opaque barrier identity.
        id: u64,
        /// Number of participants this processor believes the barrier
        /// has.
        arity: usize,
    },
    /// Prefetch `subpage` into the local cache.
    Prefetch {
        /// Sub-page index.
        subpage: u64,
    },
    /// Read somewhere in `subpage`.
    Read {
        /// Sub-page index.
        subpage: u64,
    },
    /// Write somewhere in `subpage`.
    Write {
        /// Sub-page index.
        subpage: u64,
    },
}

/// One processor's schedule.
#[derive(Debug, Clone)]
pub struct ProcSchedule {
    /// Processor index.
    pub proc: usize,
    /// Its steps, in program order.
    pub ops: Vec<SchedOp>,
}

impl ProcSchedule {
    /// A schedule for processor `proc`.
    #[must_use]
    pub fn new(proc: usize, ops: Vec<SchedOp>) -> Self {
        Self { proc, ops }
    }
}

/// Which lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintRule {
    /// Participants disagree on a barrier's arity.
    BarrierArityMismatch,
    /// The number of processors joining a barrier differs from its
    /// declared arity.
    BarrierParticipantCount,
    /// Participants join a barrier a different number of times.
    BarrierEpisodeSkew,
    /// A lock acquired while already held by the same processor.
    DoubleAcquire,
    /// A lock released while not held.
    ReleaseWithoutAcquire,
    /// A lock still held when the schedule ends.
    UnreleasedLock,
    /// A prefetched sub-page never read or written afterwards by the
    /// prefetching processor.
    UselessPrefetch,
}

impl LintRule {
    /// Stable snake_case label (used in `violations.json`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::BarrierArityMismatch => "barrier_arity_mismatch",
            Self::BarrierParticipantCount => "barrier_participant_count",
            Self::BarrierEpisodeSkew => "barrier_episode_skew",
            Self::DoubleAcquire => "double_acquire",
            Self::ReleaseWithoutAcquire => "release_without_acquire",
            Self::UnreleasedLock => "unreleased_lock",
            Self::UselessPrefetch => "useless_prefetch",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Which lint fired.
    pub rule: LintRule,
    /// The processor involved (`None` for cross-processor findings).
    pub proc: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

/// Lint a set of per-processor schedules. Findings are returned in a
/// deterministic order (rule-major, then processor).
#[must_use]
pub fn lint_schedules(schedules: &[ProcSchedule]) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    lint_barriers(schedules, &mut findings);
    lint_locks(schedules, &mut findings);
    lint_prefetches(schedules, &mut findings);
    findings
}

fn lint_barriers(schedules: &[ProcSchedule], findings: &mut Vec<LintFinding>) {
    // id -> (first declared arity, declaring proc)
    let mut arity_of: FxHashMap<u64, (usize, usize)> = FxHashMap::default();
    // id -> proc -> join count
    let mut joins: FxHashMap<u64, FxHashMap<usize, usize>> = FxHashMap::default();
    let mut order: Vec<u64> = Vec::new();
    for s in schedules {
        for op in &s.ops {
            if let SchedOp::Barrier { id, arity } = *op {
                match arity_of.get(&id) {
                    None => {
                        arity_of.insert(id, (arity, s.proc));
                        order.push(id);
                    }
                    Some(&(a, first_proc)) if a != arity => {
                        findings.push(LintFinding {
                            rule: LintRule::BarrierArityMismatch,
                            proc: Some(s.proc),
                            message: format!(
                                "barrier {id}: processor {} declared arity {a}, processor \
                                 {} declares {arity}",
                                first_proc, s.proc
                            ),
                        });
                    }
                    Some(_) => {}
                }
                *joins.entry(id).or_default().entry(s.proc).or_insert(0) += 1;
            }
        }
    }
    for id in order {
        let (arity, _) = arity_of[&id];
        let per_proc = &joins[&id];
        if per_proc.len() != arity {
            findings.push(LintFinding {
                rule: LintRule::BarrierParticipantCount,
                proc: None,
                message: format!(
                    "barrier {id}: declared arity {arity} but joined by {} \
                     processor(s) — it can never open",
                    per_proc.len()
                ),
            });
        }
        let counts: FxHashSet<usize> = per_proc.values().copied().collect();
        if counts.len() > 1 {
            let mut procs: Vec<usize> = per_proc.keys().copied().collect();
            procs.sort_unstable();
            let detail: Vec<String> = procs
                .iter()
                .map(|p| format!("p{p}x{}", per_proc[p]))
                .collect();
            findings.push(LintFinding {
                rule: LintRule::BarrierEpisodeSkew,
                proc: None,
                message: format!(
                    "barrier {id}: participants join it a different number of times \
                     ({}) — the last episode deadlocks",
                    detail.join(", ")
                ),
            });
        }
    }
}

fn lint_locks(schedules: &[ProcSchedule], findings: &mut Vec<LintFinding>) {
    for s in schedules {
        let mut held: FxHashSet<u64> = FxHashSet::default();
        for op in &s.ops {
            match *op {
                SchedOp::Acquire { lock } if !held.insert(lock) => {
                    findings.push(LintFinding {
                        rule: LintRule::DoubleAcquire,
                        proc: Some(s.proc),
                        message: format!(
                            "processor {}: lock {lock} acquired while already held \
                             (get_sub_page self-deadlocks)",
                            s.proc
                        ),
                    });
                }
                SchedOp::Release { lock } if !held.remove(&lock) => {
                    findings.push(LintFinding {
                        rule: LintRule::ReleaseWithoutAcquire,
                        proc: Some(s.proc),
                        message: format!(
                            "processor {}: lock {lock} released while not held",
                            s.proc
                        ),
                    });
                }
                _ => {}
            }
        }
        let mut leaked: Vec<u64> = held.into_iter().collect();
        leaked.sort_unstable();
        for lock in leaked {
            findings.push(LintFinding {
                rule: LintRule::UnreleasedLock,
                proc: Some(s.proc),
                message: format!(
                    "processor {}: lock {lock} still held when the schedule ends — \
                     every other cell blocks forever on its sub-page",
                    s.proc
                ),
            });
        }
    }
}

fn lint_prefetches(schedules: &[ProcSchedule], findings: &mut Vec<LintFinding>) {
    for s in schedules {
        // Sub-page -> index of the latest prefetch not yet justified by a
        // following access.
        let mut pending: Vec<(u64, usize)> = Vec::new();
        for (i, op) in s.ops.iter().enumerate() {
            match *op {
                SchedOp::Prefetch { subpage } => pending.push((subpage, i)),
                SchedOp::Read { subpage } | SchedOp::Write { subpage } => {
                    pending.retain(|&(sp, _)| sp != subpage);
                }
                _ => {}
            }
        }
        for (subpage, i) in pending {
            findings.push(LintFinding {
                rule: LintRule::UselessPrefetch,
                proc: Some(s.proc),
                message: format!(
                    "processor {}: op {i} prefetches sub-page {subpage} which is never \
                     read or written afterwards — pure ring traffic",
                    s.proc
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SchedOp::{Acquire, Barrier, Prefetch, Read, Release, Write};

    fn rules(findings: &[LintFinding]) -> Vec<LintRule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_schedules_have_no_findings() {
        let f = lint_schedules(&[
            ProcSchedule::new(
                0,
                vec![
                    Prefetch { subpage: 4 },
                    Read { subpage: 4 },
                    Acquire { lock: 1 },
                    Write { subpage: 9 },
                    Release { lock: 1 },
                    Barrier { id: 0, arity: 2 },
                ],
            ),
            ProcSchedule::new(
                1,
                vec![
                    Acquire { lock: 1 },
                    Write { subpage: 9 },
                    Release { lock: 1 },
                    Barrier { id: 0, arity: 2 },
                ],
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mismatched_barrier_arity_detected() {
        let f = lint_schedules(&[
            ProcSchedule::new(0, vec![Barrier { id: 3, arity: 2 }]),
            ProcSchedule::new(1, vec![Barrier { id: 3, arity: 4 }]),
        ]);
        assert!(rules(&f).contains(&LintRule::BarrierArityMismatch), "{f:?}");
        // Arity 2 with 2 participants: the count rule itself is satisfied
        // against the first declaration.
        assert!(f[0].message.contains("processor 1 declares 4"));
    }

    #[test]
    fn wrong_participant_count_detected() {
        let f = lint_schedules(&[
            ProcSchedule::new(0, vec![Barrier { id: 3, arity: 3 }]),
            ProcSchedule::new(1, vec![Barrier { id: 3, arity: 3 }]),
        ]);
        assert_eq!(rules(&f), vec![LintRule::BarrierParticipantCount]);
    }

    #[test]
    fn episode_skew_detected() {
        let f = lint_schedules(&[
            ProcSchedule::new(
                0,
                vec![Barrier { id: 0, arity: 2 }, Barrier { id: 0, arity: 2 }],
            ),
            ProcSchedule::new(1, vec![Barrier { id: 0, arity: 2 }]),
        ]);
        assert_eq!(rules(&f), vec![LintRule::BarrierEpisodeSkew]);
        assert!(f[0].message.contains("p0x2"));
    }

    #[test]
    fn double_acquire_detected() {
        let f = lint_schedules(&[ProcSchedule::new(
            2,
            vec![
                Acquire { lock: 7 },
                Acquire { lock: 7 },
                Release { lock: 7 },
            ],
        )]);
        assert_eq!(rules(&f), vec![LintRule::DoubleAcquire]);
        assert_eq!(f[0].proc, Some(2));
    }

    #[test]
    fn release_without_acquire_detected() {
        let f = lint_schedules(&[ProcSchedule::new(0, vec![Release { lock: 7 }])]);
        assert_eq!(rules(&f), vec![LintRule::ReleaseWithoutAcquire]);
    }

    #[test]
    fn unreleased_lock_detected() {
        let f = lint_schedules(&[ProcSchedule::new(1, vec![Acquire { lock: 5 }])]);
        assert_eq!(rules(&f), vec![LintRule::UnreleasedLock]);
    }

    #[test]
    fn useless_prefetch_detected() {
        let f = lint_schedules(&[ProcSchedule::new(
            0,
            vec![
                Prefetch { subpage: 4 },
                Read { subpage: 5 }, // different sub-page
            ],
        )]);
        assert_eq!(rules(&f), vec![LintRule::UselessPrefetch]);
        assert!(f[0].message.contains("sub-page 4"));
    }

    #[test]
    fn prefetch_justified_by_later_write() {
        let f = lint_schedules(&[ProcSchedule::new(
            0,
            vec![Prefetch { subpage: 4 }, Write { subpage: 4 }],
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}

//! # ksr-verify
//!
//! Analysis passes over the `ksr_core::trace` event stream. Everything
//! in this crate *consumes* events and never feeds back into the
//! simulator, so attaching any of these checkers cannot perturb virtual
//! time — a checked run produces bit-identical results to an unchecked
//! one (asserted by the `tracing_preserves_determinism` suite).
//!
//! Five passes:
//!
//! * [`checker`] — a [`checker::CheckingSink`] that shadows every
//!   sub-page's global coherence state from the event stream and asserts
//!   the ALLCACHE protocol invariants (single writable copy, no `Shared`
//!   beside `Exclusive`, invalidations acknowledged before writes
//!   commit, `release_sub_page` only from `Atomic`, transition-table
//!   legality). Violations carry the offending cycle, processor, and a
//!   short event-window replay from an internal
//!   [`ksr_core::trace::RingBufferSink`].
//! * [`race`] — a FastTrack-style vector-clock happens-before race
//!   detector over per-processor data accesses, with synchronization
//!   edges derived from `get_sub_page`/`release_sub_page`, native atomic
//!   RMWs, and flag handoffs (write → poststore/snarf → spin).
//! * [`lint`] — static checks over program *schedules* before any
//!   simulation runs: mismatched barrier arity, lock acquire without
//!   release, prefetch of a sub-page that is never read.
//! * [`predict`] — predictive passes over one observed trace: an
//!   Eraser-style lockset detector ([`predict::lockset_analysis`])
//!   catching locking-discipline violations even when this run's vector
//!   clocks ordered the accesses, and a lock-order graph
//!   ([`predict::LockOrderGraph`]) reporting potential-deadlock cycles
//!   and lock/barrier hazards that never manifested.
//! * [`explore`] — a small-scope exhaustive schedule explorer
//!   ([`explore::explore`]): enumerate every resolution of the
//!   coordinator's equal-time ties (via `ksr_machine::ScheduleOracle`),
//!   re-running the checkers on each interleaving with state-hash
//!   pruning and a bounded budget.
//!
//! The bench harness wires all of these into `run_all --check` (or
//! `KSR_CHECK=1`) and writes a machine-readable `violations.json`.

pub mod checker;
pub mod explore;
pub mod lint;
pub mod predict;
pub mod race;
pub mod report;

pub use checker::{CheckerConfig, CheckingSink, Rule, Violation};
pub use explore::{ExploreConfig, ExploreReport, RunOutcome, WitnessedViolation};
pub use lint::{lint_schedules, LintFinding, LintRule, ProcSchedule, SchedOp};
pub use predict::{lockset_analysis, LockOrderGraph, PredictFinding, PredictRule, PredictiveSink};
pub use race::{Access, CollectingSink, RaceDetector, RaceReport};

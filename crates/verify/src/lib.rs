//! # ksr-verify
//!
//! Analysis passes over the `ksr_core::trace` event stream. Everything
//! in this crate *consumes* events and never feeds back into the
//! simulator, so attaching any of these checkers cannot perturb virtual
//! time — a checked run produces bit-identical results to an unchecked
//! one (asserted by the `tracing_preserves_determinism` suite).
//!
//! Three passes:
//!
//! * [`checker`] — a [`checker::CheckingSink`] that shadows every
//!   sub-page's global coherence state from the event stream and asserts
//!   the ALLCACHE protocol invariants (single writable copy, no `Shared`
//!   beside `Exclusive`, invalidations acknowledged before writes
//!   commit, `release_sub_page` only from `Atomic`, transition-table
//!   legality). Violations carry the offending cycle, processor, and a
//!   short event-window replay from an internal
//!   [`ksr_core::trace::RingBufferSink`].
//! * [`race`] — a FastTrack-style vector-clock happens-before race
//!   detector over per-processor data accesses, with synchronization
//!   edges derived from `get_sub_page`/`release_sub_page`, native atomic
//!   RMWs, and flag handoffs (write → poststore/snarf → spin).
//! * [`lint`] — static checks over program *schedules* before any
//!   simulation runs: mismatched barrier arity, lock acquire without
//!   release, prefetch of a sub-page that is never read.
//!
//! The bench harness wires all three into `run_all --check` (or
//! `KSR_CHECK=1`) and writes a machine-readable `violations.json`.

pub mod checker;
pub mod lint;
pub mod race;
pub mod report;

pub use checker::{CheckerConfig, CheckingSink, Rule, Violation};
pub use lint::{lint_schedules, LintFinding, LintRule, ProcSchedule, SchedOp};
pub use race::{Access, CollectingSink, RaceDetector, RaceReport};

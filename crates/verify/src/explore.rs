//! Small-scope exhaustive schedule exploration.
//!
//! The coordinator's only source of schedule nondeterminism is which of
//! several *equal-virtual-time* requests it services first
//! (`ksr_machine::ScheduleOracle`). This module enumerates that space:
//! every run is identified by its **decision vector** — the branch taken
//! at each choice point, where a choice point is a moment with two or
//! more tied requests. The driver ([`explore`]) performs a depth-first
//! walk over decision-vector prefixes:
//!
//! 1. run the machine under a `ReplayOracle` with the current prefix
//!    (past the prefix the oracle answers 0, the default order);
//! 2. the run reports back the *actual* fanout and decision at every
//!    choice point it encountered;
//! 3. for each choice point at or beyond the prefix, every untaken
//!    branch becomes a new child prefix.
//!
//! This enumerates each complete decision vector exactly once, in
//! lexicographic order (deterministic output), bounded by a run budget
//! and a choice-point depth. A per-run **state hash** counts distinct
//! terminal states and, optionally, prunes subtrees rooted at a state
//! already fully explored — the small-scope analogue of the stateful
//! pruning in DPOR-family model checkers.
//!
//! The module is machine-agnostic: the caller supplies a closure that
//! runs one schedule and reports its [`RunOutcome`], so `ksr-verify`
//! keeps its no-`ksr-machine` dependency rule and the explorer is
//! testable with synthetic tree shapes.

use std::collections::BTreeSet;

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Hard cap on schedules run; hitting it sets
    /// [`ExploreReport::truncated`].
    pub max_runs: usize,
    /// Choice points beyond this depth are never branched on (their
    /// default resolution is still taken).
    pub max_choice_points: usize,
    /// Skip branching out of a run whose terminal state hash was already
    /// seen. Sound for detecting *which* violations are reachable (a
    /// repeated terminal state cannot surface a new one from the same
    /// workload), unsound for counting schedules.
    pub prune_seen_states: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_runs: 4096,
            max_choice_points: 64,
            prune_seen_states: false,
        }
    }
}

/// What one schedule produced, reported by the caller's runner closure.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Fanout (number of tied processors) at each choice point hit.
    pub fanouts: Vec<usize>,
    /// Branch actually taken at each choice point (prefix replay, then
    /// zeros).
    pub decisions: Vec<usize>,
    /// A hash of the run's terminal state (final memory values, end
    /// times, violation labels — caller's choice, but it must be
    /// schedule-independent-noise-free).
    pub state_hash: u64,
    /// Violations this schedule exposed, as `(kind, descriptor)` pairs.
    /// Descriptors must be stable across schedules (no timestamps), so
    /// the same bug found under two interleavings deduplicates.
    pub violations: Vec<(String, String)>,
}

/// One violation with the first schedule that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessedViolation {
    /// Violation class (`"coherence"`, `"race"`, `"invariant"`, ...).
    pub kind: String,
    /// Stable descriptor of the specific violation.
    pub what: String,
    /// The decision vector of the first schedule that exposed it: replay
    /// it through a `ReplayOracle` to reproduce.
    pub schedule: Vec<usize>,
}

/// The result of one exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Schedules actually run.
    pub runs: usize,
    /// Whether the run budget cut enumeration short.
    pub truncated: bool,
    /// Distinct terminal state hashes seen.
    pub distinct_states: usize,
    /// Deduplicated violations, each with its first witness schedule, in
    /// discovery order (deterministic).
    pub violations: Vec<WitnessedViolation>,
}

impl ExploreReport {
    /// Whether every explored schedule was violation-free.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively explore the schedule space of `runner`, depth-first in
/// lexicographic decision order.
///
/// `runner` receives a decision-vector prefix, must run the workload
/// once under a replay oracle seeded with it, and report the outcome.
/// With a sufficient budget the walk visits every schedule reachable
/// within `max_choice_points`; the witness schedule attached to each
/// violation is the lexicographically first one exposing it.
pub fn explore(
    cfg: ExploreConfig,
    mut runner: impl FnMut(&[usize]) -> RunOutcome,
) -> ExploreReport {
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut runs = 0;
    let mut truncated = false;
    let mut states: BTreeSet<u64> = BTreeSet::new();
    let mut explored_states: BTreeSet<u64> = BTreeSet::new();
    let mut seen_violations: BTreeSet<(String, String)> = BTreeSet::new();
    let mut violations: Vec<WitnessedViolation> = Vec::new();

    while let Some(prefix) = stack.pop() {
        if runs >= cfg.max_runs {
            truncated = true;
            break;
        }
        runs += 1;
        let outcome = runner(&prefix);
        debug_assert_eq!(
            outcome.fanouts.len(),
            outcome.decisions.len(),
            "runner must report one decision per choice point"
        );
        states.insert(outcome.state_hash);
        for (kind, what) in &outcome.violations {
            if seen_violations.insert((kind.clone(), what.clone())) {
                violations.push(WitnessedViolation {
                    kind: kind.clone(),
                    what: what.clone(),
                    schedule: outcome.decisions.clone(),
                });
            }
        }
        if cfg.prune_seen_states && !explored_states.insert(outcome.state_hash) {
            continue;
        }
        // Children: flip each not-yet-fixed choice point. Only positions
        // at or beyond the prefix can branch (earlier ones were fixed by
        // an ancestor), which makes every decision vector reachable
        // exactly once. Push in reverse so the stack pops lexicographic
        // order.
        let first_free = prefix.len();
        let horizon = outcome.fanouts.len().min(cfg.max_choice_points);
        for i in (first_free..horizon).rev() {
            for alt in (outcome.decisions[i] + 1..outcome.fanouts[i]).rev() {
                let mut child: Vec<usize> = outcome.decisions[..i].to_vec();
                child.push(alt);
                stack.push(child);
            }
        }
    }

    ExploreReport {
        runs,
        truncated,
        distinct_states: states.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic workload: `depth` binary choice points; the "state"
    /// is the decision vector interpreted as a binary number; a
    /// violation hides at one specific schedule.
    fn binary_tree_runner(
        depth: usize,
        bug_at: &[usize],
    ) -> impl FnMut(&[usize]) -> RunOutcome + '_ {
        move |prefix: &[usize]| {
            let mut decisions: Vec<usize> = Vec::with_capacity(depth);
            for i in 0..depth {
                decisions.push(prefix.get(i).copied().unwrap_or(0).min(1));
            }
            let state = decisions.iter().fold(0u64, |acc, &d| acc * 2 + d as u64);
            let violations = if decisions == bug_at {
                vec![("invariant".to_string(), "hidden bug".to_string())]
            } else {
                Vec::new()
            };
            RunOutcome {
                fanouts: vec![2; depth],
                decisions,
                state_hash: state,
                violations,
            }
        }
    }

    #[test]
    fn enumerates_every_schedule_exactly_once() {
        // 3 binary choice points -> exactly 8 schedules, 8 states.
        let report = explore(ExploreConfig::default(), binary_tree_runner(3, &[9, 9, 9]));
        assert_eq!(report.runs, 8);
        assert_eq!(report.distinct_states, 8);
        assert!(!report.truncated);
        assert!(report.is_clean());
    }

    #[test]
    fn finds_the_one_bad_schedule_with_a_witness() {
        let bug = vec![1, 0, 1];
        let report = explore(ExploreConfig::default(), binary_tree_runner(3, &bug));
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.kind, "invariant");
        assert_eq!(v.schedule, bug, "witness reproduces the bug");
    }

    #[test]
    fn default_schedule_alone_misses_the_bug() {
        // The point of the whole exercise: budget 1 = only the default
        // schedule, which is clean.
        let cfg = ExploreConfig {
            max_runs: 1,
            ..ExploreConfig::default()
        };
        let report = explore(cfg, binary_tree_runner(3, &[0, 1, 1]));
        assert!(report.is_clean());
        assert!(report.truncated);
        let full = explore(ExploreConfig::default(), binary_tree_runner(3, &[0, 1, 1]));
        assert_eq!(full.violations.len(), 1);
    }

    #[test]
    fn budget_truncates_and_reports_it() {
        let cfg = ExploreConfig {
            max_runs: 5,
            ..ExploreConfig::default()
        };
        let report = explore(cfg, binary_tree_runner(4, &[9, 9, 9, 9]));
        assert_eq!(report.runs, 5);
        assert!(report.truncated);
    }

    #[test]
    fn depth_bound_limits_branching() {
        let cfg = ExploreConfig {
            max_choice_points: 2,
            ..ExploreConfig::default()
        };
        // Only the first 2 of 4 choice points may branch: 4 schedules.
        let report = explore(cfg, binary_tree_runner(4, &[9, 9, 9, 9]));
        assert_eq!(report.runs, 4);
        assert!(!report.truncated);
    }

    #[test]
    fn state_pruning_collapses_confluent_schedules() {
        // A workload whose state ignores the first decision: pruning
        // must cut the subtree revisit while exact mode runs all 8.
        let runner = |prefix: &[usize]| {
            let decisions: Vec<usize> = (0..3)
                .map(|i| prefix.get(i).copied().unwrap_or(0).min(1))
                .collect();
            let state = decisions[1] as u64 * 2 + decisions[2] as u64;
            RunOutcome {
                fanouts: vec![2; 3],
                decisions,
                state_hash: state,
                violations: Vec::new(),
            }
        };
        let exact = explore(ExploreConfig::default(), runner);
        assert_eq!(exact.runs, 8);
        assert_eq!(exact.distinct_states, 4);
        let pruned = explore(
            ExploreConfig {
                prune_seen_states: true,
                ..ExploreConfig::default()
            },
            runner,
        );
        assert!(pruned.runs < exact.runs, "{} runs", pruned.runs);
        assert_eq!(pruned.distinct_states, 4);
    }

    #[test]
    fn variable_fanout_trees_are_covered() {
        // Choice point 0 has fanout 3; each branch exposes a second
        // choice point of fanout equal to its index + 1: 1 + 2 + 3 = 6
        // schedules.
        let runner = |prefix: &[usize]| {
            let d0 = prefix.first().copied().unwrap_or(0).min(2);
            let f1 = d0 + 1;
            let d1 = prefix.get(1).copied().unwrap_or(0).min(f1 - 1);
            let mut fanouts = vec![3];
            let mut decisions = vec![d0];
            if f1 > 1 {
                fanouts.push(f1);
                decisions.push(d1);
            }
            let state = (d0 * 10 + d1) as u64;
            RunOutcome {
                fanouts,
                decisions,
                state_hash: state,
                violations: Vec::new(),
            }
        };
        let report = explore(ExploreConfig::default(), runner);
        assert_eq!(report.runs, 6);
        assert_eq!(report.distinct_states, 6);
    }
}

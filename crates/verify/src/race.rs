//! Happens-before data-race detection over the trace stream.
//!
//! A FastTrack-style vector-clock analysis ([`RaceDetector`]) over the
//! per-processor [`TraceEvent::DataRead`]/[`TraceEvent::DataWrite`]
//! stream, with synchronization edges recovered from the trace itself:
//!
//! * `get_sub_page` / `release_sub_page` pairs ([`TraceEvent::SyncAcquire`]
//!   / [`TraceEvent::SyncRelease`] with `rmw: false`) behave as lock
//!   acquire/release on their sub-page;
//! * native atomic RMWs (`rmw: true`) are an indivisible acquire+release
//!   of their sub-page;
//! * flag handoffs synchronize through the flag's sub-page: the producer's
//!   write releases, the consumer's satisfied spin
//!   ([`TraceEvent::SpinRead`]) acquires — this covers the
//!   write → poststore/snarf → spin wake-up idiom of every barrier in
//!   `ksr-sync`.
//!
//! Sub-pages touched by *any* synchronization primitive (acquired, spun
//! on, or hit by a native RMW anywhere in the run) are classified as
//! *sync sub-pages* in a pre-pass; accesses to them carry
//! happens-before edges and are exempt from race reporting (they are
//! synchronization, and racing on them is their job). Races are reported
//! only between plain data accesses to ordinary sub-pages.
//!
//! The detector is deliberately conservative in the safe direction: it
//! may miss a race (extra inferred edges), but a reported race is a real
//! pair of unordered conflicting accesses under the recovered
//! happens-before relation.

use ksr_core::time::Cycles;
use ksr_core::trace::{TraceEvent, TraceSink};
use ksr_core::{FxHashMap, FxHashSet};
use ksr_mem::subpage_of;

/// A [`TraceSink`] that simply buffers every event for offline analysis.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Vec<TraceEvent>,
}

impl CollectingSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Events collected so far, in arrival order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drain and return everything collected so far.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for CollectingSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// One side of a racy pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Processor that issued the access.
    pub cell: usize,
    /// Virtual cycle at which it committed.
    pub at: Cycles,
    /// Whether it was a write.
    pub write: bool,
}

/// A pair of conflicting accesses with no happens-before path between
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// The word address both sides touched.
    pub addr: u64,
    /// Its sub-page.
    pub subpage: u64,
    /// The earlier access (by virtual time).
    pub first: Access,
    /// The later, unordered access. At least one side is a write.
    pub second: Access,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct VectorClock(Vec<u64>);

impl VectorClock {
    fn new(n: usize) -> Self {
        Self(vec![0; n])
    }

    fn get(&self, p: usize) -> u64 {
        self.0.get(p).copied().unwrap_or(0)
    }

    fn join(&mut self, other: &Self) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    fn tick(&mut self, p: usize) {
        if self.0.len() <= p {
            self.0.resize(p + 1, 0);
        }
        self.0[p] += 1;
    }
}

#[derive(Debug, Default)]
struct VarState {
    /// Last write: (cell, writer's epoch at the write, cycle).
    write: Option<(usize, u64, Cycles)>,
    /// Per-cell last read: cell -> (reader's epoch, cycle).
    reads: FxHashMap<usize, (u64, Cycles)>,
}

/// Vector-clock happens-before race detector.
///
/// Feed it one or more event batches with [`ingest`](Self::ingest),
/// marking global barriers between batches (e.g. separate
/// `Machine::run` calls, which join every program) with
/// [`run_boundary`](Self::run_boundary), then collect reports with
/// [`finish`](Self::finish). For a single-run workload,
/// [`analyze`](Self::analyze) does all three.
#[derive(Debug)]
pub struct RaceDetector {
    nprocs: usize,
    /// Retention cap on reports (first race per address is always kept
    /// up to this many addresses).
    max_reports: usize,
    clocks: Vec<VectorClock>,
    locks: FxHashMap<u64, VectorClock>,
    vars: FxHashMap<u64, VarState>,
    reported_addrs: FxHashSet<u64>,
    reports: Vec<RaceReport>,
}

impl RaceDetector {
    /// A detector for programs running on `nprocs` processors.
    #[must_use]
    pub fn new(nprocs: usize) -> Self {
        let mut clocks = Vec::with_capacity(nprocs);
        for p in 0..nprocs {
            let mut c = VectorClock::new(nprocs);
            c.tick(p);
            clocks.push(c);
        }
        Self {
            nprocs,
            max_reports: 32,
            clocks,
            locks: FxHashMap::default(),
            vars: FxHashMap::default(),
            reported_addrs: FxHashSet::default(),
            reports: Vec::new(),
        }
    }

    /// One-shot analysis of a single run's events.
    #[must_use]
    pub fn analyze(mut self, events: &[TraceEvent]) -> Vec<RaceReport> {
        self.ingest(events);
        self.finish()
    }

    /// Sub-pages acting as synchronization objects anywhere in `events`:
    /// targets of `SyncAcquire`/`SyncRelease` (locks, `get_sub_page`,
    /// native RMWs) and of satisfied spins (flags). Shared with the
    /// predictive lockset pass so both passes agree on what counts as a
    /// synchronization object.
    pub(crate) fn sync_subpages(events: &[TraceEvent]) -> FxHashSet<u64> {
        let mut sync = FxHashSet::default();
        for e in events {
            match *e {
                TraceEvent::SyncAcquire { subpage, .. }
                | TraceEvent::SyncRelease { subpage, .. } => {
                    sync.insert(subpage);
                }
                TraceEvent::SpinRead { addr, .. } => {
                    sync.insert(subpage_of(addr));
                }
                _ => {}
            }
        }
        sync
    }

    fn clock(&mut self, p: usize) -> &mut VectorClock {
        if self.clocks.len() <= p {
            let n = self.nprocs.max(p + 1);
            while self.clocks.len() <= p {
                let q = self.clocks.len();
                let mut c = VectorClock::new(n);
                c.tick(q);
                self.clocks.push(c);
            }
        }
        &mut self.clocks[p]
    }

    fn acquire(&mut self, cell: usize, sp: u64) {
        if let Some(l) = self.locks.get(&sp) {
            let l = l.clone();
            self.clock(cell).join(&l);
        }
    }

    fn release(&mut self, cell: usize, sp: u64) {
        let c = self.clock(cell).clone();
        // Join rather than overwrite so concurrent releasers of a flag
        // sub-page accumulate: conservative (adds edges), never reports a
        // false race.
        self.locks
            .entry(sp)
            .or_insert_with(|| VectorClock::new(0))
            .join(&c);
        self.clock(cell).tick(cell);
    }

    fn report(&mut self, addr: u64, first: Access, second: Access) {
        // One report per address keeps the output readable; a single
        // unsynchronized loop otherwise floods thousands of pairs.
        if !self.reported_addrs.insert(addr) || self.reports.len() >= self.max_reports {
            return;
        }
        self.reports.push(RaceReport {
            addr,
            subpage: subpage_of(addr),
            first,
            second,
        });
    }

    fn on_read(&mut self, cell: usize, at: Cycles, addr: u64) {
        let epoch = self.clock(cell).get(cell);
        let my_view = self.clock(cell).clone();
        let var = self.vars.entry(addr).or_default();
        if let Some((w_cell, w_epoch, w_at)) = var.write {
            if w_cell != cell && my_view.get(w_cell) < w_epoch {
                let first = Access {
                    cell: w_cell,
                    at: w_at,
                    write: true,
                };
                let second = Access {
                    cell,
                    at,
                    write: false,
                };
                self.report(addr, first, second);
                return;
            }
        }
        self.vars
            .entry(addr)
            .or_default()
            .reads
            .insert(cell, (epoch, at));
    }

    fn on_write(&mut self, cell: usize, at: Cycles, addr: u64) {
        let my_view = self.clock(cell).clone();
        let var = self.vars.entry(addr).or_default();
        let mut racy: Option<Access> = None;
        if let Some((w_cell, w_epoch, w_at)) = var.write {
            if w_cell != cell && my_view.get(w_cell) < w_epoch {
                racy = Some(Access {
                    cell: w_cell,
                    at: w_at,
                    write: true,
                });
            }
        }
        if racy.is_none() {
            for (&r_cell, &(r_epoch, r_at)) in &var.reads {
                if r_cell != cell && my_view.get(r_cell) < r_epoch {
                    racy = Some(Access {
                        cell: r_cell,
                        at: r_at,
                        write: false,
                    });
                    break;
                }
            }
        }
        let epoch = my_view.get(cell);
        let var = self.vars.entry(addr).or_default();
        var.write = Some((cell, epoch, at));
        var.reads.clear();
        if let Some(first) = racy {
            let second = Access {
                cell,
                at,
                write: true,
            };
            self.report(addr, first, second);
        }
    }

    /// Feed one batch of events (typically everything collected from one
    /// `Machine::run`). Events are processed in virtual-time order.
    pub fn ingest(&mut self, events: &[TraceEvent]) {
        let sync = Self::sync_subpages(events);
        let mut order: Vec<usize> = (0..events.len()).collect();
        // Stable sort: equal-cycle events keep arrival (coordinator
        // commit) order, which is itself deterministic.
        order.sort_by_key(|&i| events[i].at());
        for i in order {
            match events[i] {
                TraceEvent::SyncAcquire { cell, subpage, .. } => self.acquire(cell, subpage),
                TraceEvent::SyncRelease { cell, subpage, .. } => self.release(cell, subpage),
                TraceEvent::SpinRead { cell, addr, .. } => {
                    self.acquire(cell, subpage_of(addr));
                }
                TraceEvent::DataRead { at, cell, addr } => {
                    let sp = subpage_of(addr);
                    if sync.contains(&sp) {
                        // Reading a flag is an acquire of whatever its
                        // last producer released.
                        self.acquire(cell, sp);
                    } else {
                        self.on_read(cell, at, addr);
                    }
                }
                TraceEvent::DataWrite { at, cell, addr } => {
                    let sp = subpage_of(addr);
                    if sync.contains(&sp) {
                        // Writing a flag publishes the producer's history.
                        self.release(cell, sp);
                    } else {
                        self.on_write(cell, at, addr);
                    }
                }
                _ => {}
            }
        }
    }

    /// Mark a global barrier between runs: every program of the previous
    /// `Machine::run` happens-before every program of the next one (the
    /// coordinator drains all programs before `run` returns).
    pub fn run_boundary(&mut self) {
        let mut all = VectorClock::new(self.nprocs);
        for c in &self.clocks {
            all.join(c);
        }
        for (p, c) in self.clocks.iter_mut().enumerate() {
            c.join(&all);
            c.tick(p);
        }
    }

    /// Consume the detector and return the reports found, in detection
    /// order (deterministic).
    #[must_use]
    pub fn finish(self) -> Vec<RaceReport> {
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SP_BYTES: u64 = 128;

    fn write(at: Cycles, cell: usize, addr: u64) -> TraceEvent {
        TraceEvent::DataWrite { at, cell, addr }
    }

    fn read(at: Cycles, cell: usize, addr: u64) -> TraceEvent {
        TraceEvent::DataRead { at, cell, addr }
    }

    fn acquire(at: Cycles, cell: usize, sp: u64) -> TraceEvent {
        TraceEvent::SyncAcquire {
            at,
            cell,
            subpage: sp,
            rmw: false,
        }
    }

    fn release(at: Cycles, cell: usize, sp: u64) -> TraceEvent {
        TraceEvent::SyncRelease {
            at,
            cell,
            subpage: sp,
            rmw: false,
        }
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let reports =
            RaceDetector::new(2).analyze(&[write(10, 0, 4 * SP_BYTES), write(20, 1, 4 * SP_BYTES)]);
        assert_eq!(reports.len(), 1);
        let r = reports[0];
        assert_eq!(r.addr, 4 * SP_BYTES);
        assert_eq!((r.first.cell, r.second.cell), (0, 1));
        assert!(r.first.write && r.second.write);
        assert_eq!((r.first.at, r.second.at), (10, 20));
    }

    #[test]
    fn unsynchronized_read_after_write_is_a_race() {
        let reports = RaceDetector::new(2).analyze(&[write(10, 0, 512), read(20, 1, 512)]);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].first.write && !reports[0].second.write);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let lock_sp = 99;
        let reports = RaceDetector::new(2).analyze(&[
            acquire(10, 0, lock_sp),
            write(11, 0, 512),
            release(12, 0, lock_sp),
            acquire(20, 1, lock_sp),
            write(21, 1, 512),
            release(22, 1, lock_sp),
        ]);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn rmw_pairs_order_accesses_too() {
        let sp = 7;
        let rmw = |at, cell| {
            [
                TraceEvent::SyncAcquire {
                    at,
                    cell,
                    subpage: sp,
                    rmw: true,
                },
                TraceEvent::SyncRelease {
                    at,
                    cell,
                    subpage: sp,
                    rmw: true,
                },
            ]
        };
        let mut events = vec![write(5, 0, 512)];
        events.extend(rmw(6, 0));
        events.extend(rmw(10, 1));
        events.push(read(11, 1, 512));
        assert!(RaceDetector::new(2).analyze(&events).is_empty());
    }

    #[test]
    fn flag_handoff_via_spin_orders_accesses() {
        // Producer writes data, then sets a flag; consumer spins on the
        // flag, then reads the data. The flag sub-page is classified as
        // sync because a SpinRead targets it.
        let flag = 9 * SP_BYTES;
        let data = 3 * SP_BYTES;
        let reports = RaceDetector::new(2).analyze(&[
            write(10, 0, data),
            write(11, 0, flag),
            TraceEvent::SpinRead {
                at: 20,
                cell: 1,
                addr: flag,
            },
            read(21, 1, data),
        ]);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn flag_accesses_themselves_are_not_reported() {
        let flag = 9 * SP_BYTES;
        let reports = RaceDetector::new(2).analyze(&[
            write(10, 0, flag),
            write(12, 1, flag),
            TraceEvent::SpinRead {
                at: 20,
                cell: 1,
                addr: flag,
            },
        ]);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn run_boundary_orders_across_runs() {
        let mut det = RaceDetector::new(2);
        det.ingest(&[write(10, 0, 512)]);
        det.run_boundary();
        det.ingest(&[write(10, 1, 512)]);
        assert!(det.finish().is_empty());
    }

    #[test]
    fn one_report_per_address() {
        let reports = RaceDetector::new(4).analyze(&[
            write(10, 0, 512),
            write(20, 1, 512),
            write(30, 2, 512),
            write(40, 3, 512),
        ]);
        assert_eq!(reports.len(), 1, "{reports:?}");
    }

    #[test]
    fn same_cell_accesses_never_race() {
        let reports =
            RaceDetector::new(1).analyze(&[write(10, 0, 512), read(20, 0, 512), write(30, 0, 512)]);
        assert!(reports.is_empty());
    }

    #[test]
    fn events_are_ordered_by_virtual_time_not_arrival() {
        // Release arrives in the buffer after the acquire but carries an
        // earlier timestamp; sorting by `at` must recover the real order.
        let lock_sp = 99;
        let reports = RaceDetector::new(2).analyze(&[
            acquire(10, 0, lock_sp),
            write(11, 0, 512),
            acquire(20, 1, lock_sp),
            write(21, 1, 512),
            release(12, 0, lock_sp), // out of arrival order
        ]);
        assert!(reports.is_empty(), "{reports:?}");
    }
}

//! The multi-level ring hierarchy of larger KSR systems.
//!
//! Up to 34 leaf rings (32 cells each) connect through ARD routing units
//! to a higher-bandwidth level-1 ring, for a maximum of 1088 processors
//! (§2) — and the same construction repeats upward: level-1 rings can
//! themselves be joined by a level-2 ring, and so on. The 64-node KSR-2
//! used for the paper's Figure 5 is two fully-populated leaf rings joined
//! by Ring:1. A transaction that must leave its leaf ring crosses: *leaf
//! rotation → ARD → upper-ring rotation(s) → ARD → remote leaf rotation*,
//! and the response rides the remaining arcs home — which is why the
//! paper reports "a sudden jump in the execution time when the number of
//! processors is increased beyond 32". Each additional level a request
//! must climb adds two ARD crossings and two ring rotations to the
//! round trip, so the jump repeats at every ring boundary.
//!
//! ## Routing
//!
//! Leaves are numbered left to right; the ancestor of leaf `l` at level
//! `k` is `l / (leaves per level-k ring)`. A request from `src` to `dst`
//! climbs to their **lowest common ancestor** ring and descends: with
//! the LCA at level `k` it books `2k + 1` rings (source-side rings going
//! up, the LCA ring, destination-side rings coming down) and pays the
//! per-level ARD latency for each of the `2k` inter-ring crossings.
//!
//! ## In-network combining (extension)
//!
//! With [`RingHierarchyConfig::combining`] set, each source-side ARD
//! merges concurrent combinable requests (the `get_sub_page` /
//! `ReadData` packets of a synthesised fetch-and-add hammering one hot
//! sub-page, à la the NYU Ultracomputer's fetch-and-Φ combining
//! switches): a request reaching its ARD while a previous request from
//! the same leaf to the same sub-page is still in flight upstream never
//! climbs — it waits at the ARD and shares the earlier response. The
//! model is timing-only and fully deterministic.

use ksr_core::time::Cycles;
use ksr_core::trace::Tracer;
use ksr_core::{Error, FxHashMap, Result};

use crate::msg::{PacketKind, Transit};
use crate::ring::{RingConfig, RingStats, RingTiming, SlottedRing};

/// One upper level of the ring tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLevel {
    /// Geometry of every ring at this level.
    pub ring: RingConfig,
    /// Rings of the level below joined by each ring of this level.
    pub fanout: usize,
    /// Latency through one ARD routing unit between this level and the
    /// level below, each direction.
    pub ard_cycles: Cycles,
}

/// Configuration of a ring hierarchy: the leaf-ring geometry plus zero
/// or more upper levels, bottom-up ([`RingLevel`]s). An empty level list
/// is the plain single-ring KSR-1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingHierarchyConfig {
    /// Geometry of every leaf ring.
    pub leaf: RingConfig,
    /// Processor cells per leaf ring (the remaining stations are routers).
    pub cells_per_leaf: usize,
    /// Upper levels, bottom-up: `levels[0]` describes the Ring:1 layer
    /// joining leaf rings, `levels[1]` the Ring:2 layer joining Ring:1
    /// rings, and so on. The topmost layer always has exactly one ring.
    pub levels: Vec<RingLevel>,
    /// **Extension**: ARD routers combine concurrent fetch-and-add /
    /// read traffic to one sub-page in-network (off for every paper
    /// preset).
    pub combining: bool,
}

/// The ARD port budget: at most this many rings of one level connect to
/// a ring of the level above (§2's "up to 34 Ring:0's" rule, applied at
/// every level).
pub const MAX_FANOUT: usize = 34;

impl RingHierarchyConfig {
    /// Single-level 32-cell KSR-1 ring.
    #[must_use]
    pub fn ksr1_32() -> Self {
        Self {
            leaf: RingConfig::ksr1_leaf(),
            cells_per_leaf: 32,
            levels: Vec::new(),
            combining: false,
        }
    }

    /// Two-level 64-cell system (the KSR-2 of §3.2.4; clock differences
    /// are applied by the topology preset, not the fabric).
    #[must_use]
    pub fn ksr_64() -> Self {
        Self {
            leaf: RingConfig::ksr1_leaf(),
            cells_per_leaf: 32,
            levels: vec![RingLevel {
                ring: RingConfig::ksr1_top(2),
                fanout: 2,
                ard_cycles: 130,
            }],
            combining: false,
        }
    }

    /// An N-level KSR-style tree from a shape spec: `spec[0]` is cells
    /// per leaf ring, each further entry the fanout of the next level up.
    /// `&[32]` is the 32-cell single ring, `&[32, 8]` a 256-cell
    /// two-level system, `&[32, 8, 4]` a 1024-cell three-level system.
    /// Upper rings use the 4 GB/s Ring:1 geometry; every ARD costs the
    /// standard 130 cycles per direction.
    ///
    /// # Panics
    /// On an empty spec; bad shapes (zero or oversized entries) are
    /// reported by [`RingHierarchyConfig::validate`], not here.
    #[must_use]
    pub fn ring_levels(spec: &[usize]) -> Self {
        assert!(!spec.is_empty(), "ring shape spec needs at least one level");
        Self {
            leaf: RingConfig::ksr1_leaf(),
            cells_per_leaf: spec[0],
            levels: spec[1..]
                .iter()
                .map(|&fanout| RingLevel {
                    ring: RingConfig::ksr1_top(fanout),
                    fanout,
                    ard_cycles: 130,
                })
                .collect(),
            combining: false,
        }
    }

    /// Multiply every hop and ARD latency by `factor` — how the KSR-2
    /// preset models a ring that keeps its absolute speed while the
    /// cells clock twice as fast.
    #[must_use]
    pub fn scale_cycles(mut self, factor: Cycles) -> Self {
        self.leaf.hop_cycles *= factor;
        for lvl in &mut self.levels {
            lvl.ring.hop_cycles *= factor;
            lvl.ard_cycles *= factor;
        }
        self
    }

    /// Number of ring levels (1 = a single leaf ring).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Number of leaf rings.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.levels.iter().map(|l| l.fanout).product()
    }

    /// Total processor cells.
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.n_leaves() * self.cells_per_leaf
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        self.leaf.validate()?;
        if self.cells_per_leaf == 0 || self.cells_per_leaf > self.leaf.stations {
            return Err(Error::Config(format!(
                "cells_per_leaf {} must be in 1..={}",
                self.cells_per_leaf, self.leaf.stations
            )));
        }
        for (i, lvl) in self.levels.iter().enumerate() {
            lvl.ring.validate()?;
            if lvl.fanout < 2 {
                return Err(Error::Config(format!(
                    "Ring:{} fanout {} is degenerate: a level must join at \
                     least 2 Ring:{} rings (drop the level instead)",
                    i + 1,
                    lvl.fanout,
                    i
                )));
            }
            if lvl.fanout > MAX_FANOUT {
                return Err(Error::Config(format!(
                    "at most {MAX_FANOUT} Ring:{} rings connect to one Ring:{} \
                     (fanout {} exceeds the ARD port budget at level {})",
                    i,
                    i + 1,
                    lvl.fanout,
                    i + 1
                )));
            }
            if lvl.ard_cycles == 0 {
                return Err(Error::Config(format!(
                    "Ring:{} ARD latency must be non-zero",
                    i + 1
                )));
            }
        }
        Ok(())
    }
}

/// A KSR ring hierarchy of any depth.
#[derive(Debug, Clone)]
pub struct RingHierarchy {
    cfg: RingHierarchyConfig,
    leaves: Vec<SlottedRing>,
    /// `uppers[k]` holds the rings at level `k + 1`, left to right.
    uppers: Vec<Vec<SlottedRing>>,
    /// `group[k]` = leaves under each ring at level `k + 1`.
    group: Vec<usize>,
    /// In-flight combinable responses per (source leaf, sub-page key):
    /// the virtual time the combined response reaches that leaf again.
    combine_window: FxHashMap<(usize, u64), Cycles>,
    combined: u64,
}

impl RingHierarchy {
    /// Build a hierarchy from a validated configuration.
    pub fn new(cfg: RingHierarchyConfig) -> Result<Self> {
        cfg.validate()?;
        let n_leaves = cfg.n_leaves();
        let leaves = (0..n_leaves)
            .map(|_| SlottedRing::new(cfg.leaf))
            .collect::<Result<Vec<_>>>()?;
        let mut group = Vec::with_capacity(cfg.levels.len());
        let mut uppers = Vec::with_capacity(cfg.levels.len());
        let mut leaves_per_ring = 1usize;
        for lvl in &cfg.levels {
            leaves_per_ring *= lvl.fanout;
            group.push(leaves_per_ring);
            uppers.push(
                (0..n_leaves / leaves_per_ring)
                    .map(|_| SlottedRing::new(lvl.ring))
                    .collect::<Result<Vec<_>>>()?,
            );
        }
        Ok(Self {
            cfg,
            leaves,
            uppers,
            group,
            combine_window: FxHashMap::default(),
            combined: 0,
        })
    }

    /// The hierarchy's configuration.
    #[must_use]
    pub fn config(&self) -> &RingHierarchyConfig {
        &self.cfg
    }

    /// Attach one shared tracer to every ring of the hierarchy (a
    /// cross-ring transaction emits one slot event per ring it books).
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        for leaf in &mut self.leaves {
            leaf.set_tracer(tracer.clone());
        }
        for level in &mut self.uppers {
            for ring in level {
                ring.set_tracer(tracer.clone());
            }
        }
    }

    /// Which leaf ring a cell lives on.
    #[must_use]
    pub fn leaf_of(&self, cell: usize) -> usize {
        assert!(cell < self.cfg.total_cells(), "cell index out of range");
        cell / self.cfg.cells_per_leaf
    }

    /// Sub-ring an address-interleave key maps to (uniform across rings).
    #[must_use]
    pub fn subring_of(&self, interleave_key: u64) -> usize {
        self.leaves[0].subring_of(interleave_key)
    }

    /// The level of `src` and `dst`'s lowest common ancestor ring
    /// (0 = same leaf).
    fn lca_level(&self, src_leaf: usize, dst_leaf: usize) -> usize {
        if src_leaf == dst_leaf {
            return 0;
        }
        1 + self
            .group
            .iter()
            .position(|&g| src_leaf / g == dst_leaf / g)
            .expect("the top ring joins every leaf")
    }

    /// Whether ARD routers may merge this packet with an in-flight
    /// request to the same sub-page (the fetch-and-Φ / read-combining
    /// traffic of the Ultracomputer extension).
    fn combinable(kind: PacketKind) -> bool {
        matches!(kind, PacketKind::GetSubPage | PacketKind::ReadData)
    }

    /// Book a transaction from `src_cell` at `now`.
    ///
    /// `transit` says how far the coherence engine determined the request
    /// must travel. A [`Transit::CrossRing`] transaction books a slot on
    /// every ring of the up-over-down path through the lowest common
    /// ancestor, paying one ARD latency per inter-ring crossing.
    pub fn transact(
        &mut self,
        now: Cycles,
        src_cell: usize,
        transit: Transit,
        interleave_key: u64,
        kind: PacketKind,
    ) -> RingTiming {
        let src_leaf = self.leaf_of(src_cell);
        let subring = self.subring_of(interleave_key);
        match transit {
            Transit::Local => self.leaves[src_leaf].transact(now, subring, kind),
            Transit::CrossRing { dst_leaf } => {
                assert!(
                    dst_leaf < self.cfg.n_leaves(),
                    "destination leaf out of range"
                );
                let lca = self.lca_level(src_leaf, dst_leaf);
                if lca == 0 {
                    return self.leaves[src_leaf].transact(now, subring, kind);
                }
                let first = self.leaves[src_leaf].transact(now, subring, kind);
                if self.cfg.combining && Self::combinable(kind) {
                    let key = (src_leaf, interleave_key);
                    let at_ard = first.response_at + self.cfg.levels[0].ard_cycles;
                    if let Some(&home_at) = self.combine_window.get(&key) {
                        if at_ard <= home_at {
                            // Merged at the ARD: never climbs, shares the
                            // in-flight response on its way back down.
                            // Emission contract for merged grants: the
                            // follower's response is the head's (one copy
                            // of the sub-page rides down once), so it can
                            // never land before the follower's own leaf
                            // rotation reached the ARD — the coherence
                            // engine may therefore stamp the follower's
                            // events at `response_at` exactly as it does
                            // for an uncombined grant.
                            assert!(
                                home_at >= first.response_at,
                                "combined response precedes the follower's leaf rotation"
                            );
                            self.combined += 1;
                            return RingTiming {
                                injected_at: first.injected_at,
                                response_at: home_at,
                                slot_wait: first.slot_wait,
                            };
                        }
                    }
                    let t = self.climb(first, src_leaf, dst_leaf, lca, subring, kind);
                    self.combine_window.insert(key, t.response_at);
                    return t;
                }
                self.climb(first, src_leaf, dst_leaf, lca, subring, kind)
            }
        }
    }

    /// Book the up-over-down path above an already-booked source-leaf
    /// rotation: source-side rings to the LCA at `lca`, then
    /// destination-side rings back down to `dst_leaf`.
    fn climb(
        &mut self,
        first: RingTiming,
        src_leaf: usize,
        dst_leaf: usize,
        lca: usize,
        subring: usize,
        kind: PacketKind,
    ) -> RingTiming {
        let mut cur = first;
        let mut slot_wait = first.slot_wait;
        for lvl in 1..=lca {
            let ring = &mut self.uppers[lvl - 1][src_leaf / self.group[lvl - 1]];
            cur = ring.transact(
                cur.response_at + self.cfg.levels[lvl - 1].ard_cycles,
                subring,
                kind,
            );
            slot_wait += cur.slot_wait;
        }
        for lvl in (1..lca).rev() {
            let ring = &mut self.uppers[lvl - 1][dst_leaf / self.group[lvl - 1]];
            cur = ring.transact(
                cur.response_at + self.cfg.levels[lvl].ard_cycles,
                subring,
                kind,
            );
            slot_wait += cur.slot_wait;
        }
        let down = self.leaves[dst_leaf].transact(
            cur.response_at + self.cfg.levels[0].ard_cycles,
            subring,
            kind,
        );
        RingTiming {
            injected_at: first.injected_at,
            response_at: down.response_at,
            slot_wait: slot_wait + down.slot_wait,
        }
    }

    /// Counters for one leaf ring.
    #[must_use]
    pub fn leaf_stats(&self, leaf: usize) -> RingStats {
        self.leaves[leaf].stats()
    }

    /// Summed counters for all rings at one level (0 = the leaf rings).
    #[must_use]
    pub fn level_stats(&self, level: usize) -> RingStats {
        let rings: &[SlottedRing] = if level == 0 {
            &self.leaves
        } else {
            &self.uppers[level - 1]
        };
        let mut acc = RingStats::default();
        for r in rings {
            acc.accumulate(r.stats());
        }
        acc
    }

    /// Counters for the topmost ring layer (zeros on a single-level
    /// hierarchy, which has no upper ring).
    #[must_use]
    pub fn top_stats(&self) -> RingStats {
        self.uppers
            .last()
            .map(|level| {
                let mut acc = RingStats::default();
                for r in level {
                    acc.accumulate(r.stats());
                }
                acc
            })
            .unwrap_or_default()
    }

    /// Sum of all packet counters across every ring of every level.
    #[must_use]
    pub fn total_stats(&self) -> RingStats {
        let mut acc = RingStats::default();
        for l in &self.leaves {
            acc.accumulate(l.stats());
        }
        for level in &self.uppers {
            for r in level {
                acc.accumulate(r.stats());
            }
        }
        acc
    }

    /// Cross-ring requests merged in-network by ARD combining.
    #[must_use]
    pub fn combined_packets(&self) -> u64 {
        self.combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ksr1_32_validates() {
        RingHierarchyConfig::ksr1_32().validate().unwrap();
        assert_eq!(RingHierarchyConfig::ksr1_32().total_cells(), 32);
        assert_eq!(RingHierarchyConfig::ksr1_32().depth(), 1);
    }

    #[test]
    fn ksr_64_validates() {
        RingHierarchyConfig::ksr_64().validate().unwrap();
        assert_eq!(RingHierarchyConfig::ksr_64().total_cells(), 64);
        assert_eq!(RingHierarchyConfig::ksr_64().n_leaves(), 2);
    }

    #[test]
    fn ring_levels_builds_deep_trees() {
        let cfg = RingHierarchyConfig::ring_levels(&[32, 8, 4]);
        cfg.validate().unwrap();
        assert_eq!(cfg.depth(), 3);
        assert_eq!(cfg.n_leaves(), 32);
        assert_eq!(cfg.total_cells(), 1024);
    }

    #[test]
    fn rejects_degenerate_and_oversized_levels() {
        let mut cfg = RingHierarchyConfig::ring_levels(&[32, 2]);
        cfg.levels[0].fanout = 1;
        let err = cfg.validate().unwrap_err().to_string();
        assert!(err.contains("degenerate"), "got: {err}");

        let mut cfg = RingHierarchyConfig::ring_levels(&[32, 2, 2]);
        cfg.levels[1].fanout = 35;
        let err = cfg.validate().unwrap_err().to_string();
        assert!(
            err.contains("Ring:2") && err.contains("level 2"),
            "the cap must name the level it constrains: {err}"
        );

        let mut cfg = RingHierarchyConfig::ksr1_32();
        cfg.cells_per_leaf = 40;
        assert!(cfg.validate().is_err());

        let mut cfg = RingHierarchyConfig::ksr_64();
        cfg.levels[0].ard_cycles = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn leaf_of_partitions_cells() {
        let h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        assert_eq!(h.leaf_of(0), 0);
        assert_eq!(h.leaf_of(31), 0);
        assert_eq!(h.leaf_of(32), 1);
        assert_eq!(h.leaf_of(63), 1);
    }

    #[test]
    fn lca_levels_on_a_three_level_tree() {
        let h = RingHierarchy::new(RingHierarchyConfig::ring_levels(&[32, 4, 2])).unwrap();
        assert_eq!(h.lca_level(0, 0), 0, "same leaf");
        assert_eq!(h.lca_level(0, 3), 1, "same Ring:1 group");
        assert_eq!(h.lca_level(0, 4), 2, "crosses the Ring:2 spine");
        assert_eq!(h.lca_level(7, 3), 2);
    }

    #[test]
    fn local_transit_matches_single_ring() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let mut solo = SlottedRing::new(RingConfig::ksr1_leaf()).unwrap();
        let a = h.transact(100, 5, Transit::Local, 0, PacketKind::ReadData);
        let b = solo.transact(100, 0, PacketKind::ReadData);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_ring_costs_much_more_than_local() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let local = h.transact(0, 0, Transit::Local, 0, PacketKind::ReadData);
        let cross = h.transact(
            0,
            0,
            Transit::CrossRing { dst_leaf: 1 },
            0,
            PacketKind::ReadData,
        );
        let ll = local.latency(0);
        let cl = cross.latency(0);
        assert!(
            cl > 2 * ll,
            "cross-ring latency {cl} should dwarf local {ll} (the 'sudden jump' of §4)"
        );
    }

    #[test]
    fn two_level_crossing_charges_the_known_arcs() {
        // Uncontended: leaf rotation (34 st × 4 cyc + injection hop),
        // ARD, top rotation (2 st × 1 cyc + hop), ARD, leaf rotation.
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let t = h.transact(
            0,
            0,
            Transit::CrossRing { dst_leaf: 1 },
            0,
            PacketKind::ReadData,
        );
        // Each uncontended SlottedRing books injection-wait + rotation;
        // reproduce the exact figure from its own arithmetic.
        let mut leaf = SlottedRing::new(RingConfig::ksr1_leaf()).unwrap();
        let first = leaf.transact(0, 0, PacketKind::ReadData);
        let mut top = SlottedRing::new(RingConfig::ksr1_top(2)).unwrap();
        let up = top.transact(first.response_at + 130, 0, PacketKind::ReadData);
        let mut dst = SlottedRing::new(RingConfig::ksr1_leaf()).unwrap();
        let down = dst.transact(up.response_at + 130, 0, PacketKind::ReadData);
        assert_eq!(t.response_at, down.response_at);
        assert_eq!(t.latency(0), down.response_at);
    }

    #[test]
    fn deeper_crossings_cost_strictly_more() {
        // On a 3-level tree, a 2-level crossing books two extra rings and
        // two extra ARD hops over a 1-level crossing, which in turn
        // dwarfs a local access.
        let fresh = || RingHierarchy::new(RingHierarchyConfig::ring_levels(&[32, 4, 2])).unwrap();
        let local = fresh()
            .transact(0, 0, Transit::Local, 0, PacketKind::ReadData)
            .latency(0);
        let one = fresh()
            .transact(
                0,
                0,
                Transit::CrossRing { dst_leaf: 1 },
                0,
                PacketKind::ReadData,
            )
            .latency(0);
        let two = fresh()
            .transact(
                0,
                0,
                Transit::CrossRing { dst_leaf: 4 },
                0,
                PacketKind::ReadData,
            )
            .latency(0);
        assert!(local < one && one < two, "{local} < {one} < {two} violated");
        // The extra distance is exactly two ARDs + two Ring:1 rotations'
        // worth of uncontended time: at least 2 × 130.
        assert!(two - one >= 260, "2-level hop adds ≥2 ARD crossings");
    }

    #[test]
    fn three_level_crossing_books_every_ring_on_the_path() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ring_levels(&[32, 4, 2])).unwrap();
        // Leaf 0 (cell 0) to leaf 4 (cell 128): LCA at level 2.
        h.transact(
            0,
            0,
            Transit::CrossRing { dst_leaf: 4 },
            0,
            PacketKind::ReadData,
        );
        assert_eq!(h.leaf_stats(0).packets, 1, "source leaf");
        assert_eq!(h.leaf_stats(4).packets, 1, "destination leaf");
        assert_eq!(h.level_stats(1).packets, 2, "both Ring:1 sides");
        assert_eq!(h.level_stats(2).packets, 1, "the Ring:2 spine");
        assert_eq!(h.total_stats().packets, 5, "2k+1 rings at k=2");
    }

    #[test]
    fn cross_ring_to_own_leaf_degrades_to_local() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let a = h.transact(
            0,
            0,
            Transit::CrossRing { dst_leaf: 0 },
            0,
            PacketKind::ReadData,
        );
        let mut h2 = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let b = h2.transact(0, 0, Transit::Local, 0, PacketKind::ReadData);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_ring_books_all_three_rings() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        h.transact(
            0,
            0,
            Transit::CrossRing { dst_leaf: 1 },
            0,
            PacketKind::ReadData,
        );
        assert_eq!(h.leaf_stats(0).packets, 1);
        assert_eq!(h.top_stats().packets, 1);
        assert_eq!(h.leaf_stats(1).packets, 1);
        assert_eq!(h.total_stats().packets, 3);
    }

    #[test]
    fn single_level_treats_cross_as_local() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr1_32()).unwrap();
        let t = h.transact(
            0,
            3,
            Transit::CrossRing { dst_leaf: 0 },
            1,
            PacketKind::ReadData,
        );
        assert_eq!(t.latency(0), 141);
    }

    #[test]
    fn combining_merges_concurrent_hot_spot_requests() {
        let mut cfg = RingHierarchyConfig::ksr_64();
        cfg.combining = true;
        let mut h = RingHierarchy::new(cfg).unwrap();
        let cross = Transit::CrossRing { dst_leaf: 1 };
        let a = h.transact(0, 0, cross, 7, PacketKind::GetSubPage);
        // Issued while a's response is still in flight, same leaf, same
        // sub-page: merged at the ARD, completes with a.
        let b = h.transact(10, 1, cross, 7, PacketKind::GetSubPage);
        assert_eq!(b.response_at, a.response_at, "shares the combined response");
        assert_eq!(h.combined_packets(), 1);
        assert_eq!(h.top_stats().packets, 1, "the merged request never climbed");
        // Long after the window closes, the same key climbs again.
        let c = h.transact(a.response_at + 10_000, 2, cross, 7, PacketKind::GetSubPage);
        assert!(c.response_at > a.response_at);
        assert_eq!(h.top_stats().packets, 2);
        assert_eq!(h.combined_packets(), 1);
    }

    #[test]
    fn combining_ignores_non_combinable_and_other_subpages() {
        let mut cfg = RingHierarchyConfig::ksr_64();
        cfg.combining = true;
        let mut h = RingHierarchy::new(cfg).unwrap();
        let cross = Transit::CrossRing { dst_leaf: 1 };
        let _ = h.transact(0, 0, cross, 7, PacketKind::GetSubPage);
        // A different sub-page cannot merge.
        let _ = h.transact(10, 1, cross, 8, PacketKind::GetSubPage);
        // An invalidation is never combinable.
        let _ = h.transact(12, 2, cross, 7, PacketKind::Invalidate);
        assert_eq!(h.combined_packets(), 0);
        assert_eq!(h.top_stats().packets, 3);
    }

    #[test]
    fn read_rides_a_get_sub_page_response_in_the_same_window() {
        // The window keys on (leaf, sub-page), not kind: a ReadData for
        // the hot sub-page rides a GetSubPage head's data home — the
        // read-combining half of the fetch-and-Φ story.
        let mut cfg = RingHierarchyConfig::ksr_64();
        cfg.combining = true;
        let mut h = RingHierarchy::new(cfg).unwrap();
        let cross = Transit::CrossRing { dst_leaf: 1 };
        let head = h.transact(0, 0, cross, 7, PacketKind::GetSubPage);
        let follower = h.transact(5, 1, cross, 7, PacketKind::ReadData);
        assert_eq!(follower.response_at, head.response_at);
        assert_eq!(h.combined_packets(), 1);
    }

    #[test]
    fn merged_responses_never_precede_the_followers_leaf_rotation() {
        // The emission contract the coherence engine relies on: a
        // combined grant arrives no earlier than the follower's own
        // rotation to the ARD, so stamping the follower's coherence
        // events at `response_at` keeps the trace causally ordered.
        let mut cfg = RingHierarchyConfig::ksr_64();
        cfg.combining = true;
        let mut h = RingHierarchy::new(cfg).unwrap();
        let cross = Transit::CrossRing { dst_leaf: 1 };
        let head = h.transact(0, 0, cross, 7, PacketKind::GetSubPage);
        for (i, cell) in [(1u64, 1usize), (2, 2), (3, 3)] {
            let t = h.transact(10 * i, cell, cross, 7, PacketKind::GetSubPage);
            if t.response_at == head.response_at {
                assert!(
                    t.response_at >= t.injected_at,
                    "merged response precedes injection"
                );
            }
        }
        assert!(h.combined_packets() > 0, "the window must have merged some");
    }

    #[test]
    fn combining_off_is_byte_identical_to_the_base_model() {
        let mut plain = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let cross = Transit::CrossRing { dst_leaf: 1 };
        for i in 0..20 {
            let a = plain.transact(i * 3, (i % 32) as usize, cross, 7, PacketKind::GetSubPage);
            let b = h.transact(i * 3, (i % 32) as usize, cross, 7, PacketKind::GetSubPage);
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_panics() {
        let h = RingHierarchy::new(RingHierarchyConfig::ksr1_32()).unwrap();
        let _ = h.leaf_of(32);
    }
}

//! The two-level ring hierarchy of larger KSR systems.
//!
//! Up to 34 leaf rings (32 cells each) connect through ARD routing units to
//! a higher-bandwidth level-1 ring, for a maximum of 1088 processors (§2).
//! The 64-node KSR-2 used for the paper's Figure 5 is two fully-populated
//! leaf rings joined by Ring:1. A transaction that must leave its leaf ring
//! crosses: *leaf rotation → ARD → level-1 rotation → ARD → remote leaf
//! rotation*, and the response rides the remaining arcs home — which is why
//! the paper reports "a sudden jump in the execution time when the number
//! of processors is increased beyond 32".

use ksr_core::time::Cycles;
use ksr_core::trace::Tracer;
use ksr_core::{Error, Result};

use crate::msg::{PacketKind, Transit};
use crate::ring::{RingConfig, RingStats, RingTiming, SlottedRing};

/// Configuration of a ring hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingHierarchyConfig {
    /// Geometry of every leaf ring.
    pub leaf: RingConfig,
    /// Number of leaf rings (1 for a plain KSR-1 32-cell system).
    pub n_leaves: usize,
    /// Processor cells per leaf ring (the remaining stations are routers).
    pub cells_per_leaf: usize,
    /// Geometry of the level-1 ring (ignored when `n_leaves == 1`).
    pub top: RingConfig,
    /// Latency through one ARD routing unit, each direction.
    pub ard_cycles: Cycles,
}

impl RingHierarchyConfig {
    /// Single-level 32-cell KSR-1 ring.
    #[must_use]
    pub fn ksr1_32() -> Self {
        Self {
            leaf: RingConfig::ksr1_leaf(),
            n_leaves: 1,
            cells_per_leaf: 32,
            top: RingConfig::ksr1_top(2),
            ard_cycles: 130,
        }
    }

    /// Two-level 64-cell system (the KSR-2 of §3.2.4; clock differences are
    /// applied by the machine layer, not the fabric).
    #[must_use]
    pub fn ksr_64() -> Self {
        Self {
            leaf: RingConfig::ksr1_leaf(),
            n_leaves: 2,
            cells_per_leaf: 32,
            top: RingConfig::ksr1_top(2),
            ard_cycles: 130,
        }
    }

    /// Total processor cells.
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.n_leaves * self.cells_per_leaf
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        self.leaf.validate()?;
        if self.n_leaves == 0 {
            return Err(Error::Config(
                "hierarchy needs at least one leaf ring".into(),
            ));
        }
        if self.n_leaves > 34 {
            return Err(Error::Config(
                "at most 34 leaf rings connect to Ring:1".into(),
            ));
        }
        if self.cells_per_leaf == 0 || self.cells_per_leaf > self.leaf.stations {
            return Err(Error::Config(format!(
                "cells_per_leaf {} must be in 1..={}",
                self.cells_per_leaf, self.leaf.stations
            )));
        }
        if self.n_leaves > 1 {
            self.top.validate()?;
        }
        Ok(())
    }
}

/// A one- or two-level KSR ring hierarchy.
#[derive(Debug, Clone)]
pub struct RingHierarchy {
    cfg: RingHierarchyConfig,
    leaves: Vec<SlottedRing>,
    top: SlottedRing,
}

impl RingHierarchy {
    /// Build a hierarchy from a validated configuration.
    pub fn new(cfg: RingHierarchyConfig) -> Result<Self> {
        cfg.validate()?;
        let leaves = (0..cfg.n_leaves)
            .map(|_| SlottedRing::new(cfg.leaf))
            .collect::<Result<Vec<_>>>()?;
        let top = SlottedRing::new(cfg.top)?;
        Ok(Self { cfg, leaves, top })
    }

    /// The hierarchy's configuration.
    #[must_use]
    pub fn config(&self) -> &RingHierarchyConfig {
        &self.cfg
    }

    /// Attach one shared tracer to every ring of the hierarchy (a
    /// cross-ring transaction emits one slot event per ring it books).
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        for leaf in &mut self.leaves {
            leaf.set_tracer(tracer.clone());
        }
        self.top.set_tracer(tracer.clone());
    }

    /// Which leaf ring a cell lives on.
    #[must_use]
    pub fn leaf_of(&self, cell: usize) -> usize {
        assert!(cell < self.cfg.total_cells(), "cell index out of range");
        cell / self.cfg.cells_per_leaf
    }

    /// Sub-ring an address-interleave key maps to (uniform across rings).
    #[must_use]
    pub fn subring_of(&self, interleave_key: u64) -> usize {
        self.leaves[0].subring_of(interleave_key)
    }

    /// Book a transaction from `src_cell` at `now`.
    ///
    /// `transit` says how far the coherence engine determined the request
    /// must travel. A [`Transit::CrossRing`] transaction books a slot on the
    /// source leaf, the level-1 ring, and the destination leaf in sequence.
    pub fn transact(
        &mut self,
        now: Cycles,
        src_cell: usize,
        transit: Transit,
        interleave_key: u64,
        kind: PacketKind,
    ) -> RingTiming {
        let src_leaf = self.leaf_of(src_cell);
        let subring = self.subring_of(interleave_key);
        match transit {
            Transit::Local => self.leaves[src_leaf].transact(now, subring, kind),
            Transit::CrossRing { dst_leaf } => {
                assert!(
                    dst_leaf < self.cfg.n_leaves,
                    "destination leaf out of range"
                );
                if dst_leaf == src_leaf || self.cfg.n_leaves == 1 {
                    return self.leaves[src_leaf].transact(now, subring, kind);
                }
                let first = self.leaves[src_leaf].transact(now, subring, kind);
                let up = self
                    .top
                    .transact(first.response_at + self.cfg.ard_cycles, subring, kind);
                let down = self.leaves[dst_leaf].transact(
                    up.response_at + self.cfg.ard_cycles,
                    subring,
                    kind,
                );
                RingTiming {
                    injected_at: first.injected_at,
                    response_at: down.response_at,
                    slot_wait: first.slot_wait + up.slot_wait + down.slot_wait,
                }
            }
        }
    }

    /// Counters for one leaf ring.
    #[must_use]
    pub fn leaf_stats(&self, leaf: usize) -> RingStats {
        self.leaves[leaf].stats()
    }

    /// Counters for the level-1 ring.
    #[must_use]
    pub fn top_stats(&self) -> RingStats {
        self.top.stats()
    }

    /// Sum of all packet counters across every ring.
    #[must_use]
    pub fn total_stats(&self) -> RingStats {
        let mut acc = self.top.stats();
        for l in &self.leaves {
            let s = l.stats();
            acc.packets += s.packets;
            acc.data_packets += s.data_packets;
            acc.slot_wait_cycles += s.slot_wait_cycles;
            acc.blocked_packets += s.blocked_packets;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ksr1_32_validates() {
        RingHierarchyConfig::ksr1_32().validate().unwrap();
        assert_eq!(RingHierarchyConfig::ksr1_32().total_cells(), 32);
    }

    #[test]
    fn ksr_64_validates() {
        RingHierarchyConfig::ksr_64().validate().unwrap();
        assert_eq!(RingHierarchyConfig::ksr_64().total_cells(), 64);
    }

    #[test]
    fn rejects_zero_and_oversized_leaves() {
        let mut cfg = RingHierarchyConfig::ksr_64();
        cfg.n_leaves = 0;
        assert!(cfg.validate().is_err());
        cfg.n_leaves = 35;
        assert!(cfg.validate().is_err());
        let mut cfg = RingHierarchyConfig::ksr1_32();
        cfg.cells_per_leaf = 40;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn leaf_of_partitions_cells() {
        let h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        assert_eq!(h.leaf_of(0), 0);
        assert_eq!(h.leaf_of(31), 0);
        assert_eq!(h.leaf_of(32), 1);
        assert_eq!(h.leaf_of(63), 1);
    }

    #[test]
    fn local_transit_matches_single_ring() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let mut solo = SlottedRing::new(RingConfig::ksr1_leaf()).unwrap();
        let a = h.transact(100, 5, Transit::Local, 0, PacketKind::ReadData);
        let b = solo.transact(100, 0, PacketKind::ReadData);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_ring_costs_much_more_than_local() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let local = h.transact(0, 0, Transit::Local, 0, PacketKind::ReadData);
        let cross = h.transact(
            0,
            0,
            Transit::CrossRing { dst_leaf: 1 },
            0,
            PacketKind::ReadData,
        );
        let ll = local.latency(0);
        let cl = cross.latency(0);
        assert!(
            cl > 2 * ll,
            "cross-ring latency {cl} should dwarf local {ll} (the 'sudden jump' of §4)"
        );
    }

    #[test]
    fn cross_ring_to_own_leaf_degrades_to_local() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let a = h.transact(
            0,
            0,
            Transit::CrossRing { dst_leaf: 0 },
            0,
            PacketKind::ReadData,
        );
        let mut h2 = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        let b = h2.transact(0, 0, Transit::Local, 0, PacketKind::ReadData);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_ring_books_all_three_rings() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr_64()).unwrap();
        h.transact(
            0,
            0,
            Transit::CrossRing { dst_leaf: 1 },
            0,
            PacketKind::ReadData,
        );
        assert_eq!(h.leaf_stats(0).packets, 1);
        assert_eq!(h.top_stats().packets, 1);
        assert_eq!(h.leaf_stats(1).packets, 1);
        assert_eq!(h.total_stats().packets, 3);
    }

    #[test]
    fn single_level_treats_cross_as_local() {
        let mut h = RingHierarchy::new(RingHierarchyConfig::ksr1_32()).unwrap();
        let t = h.transact(
            0,
            3,
            Transit::CrossRing { dst_leaf: 0 },
            1,
            PacketKind::ReadData,
        );
        assert_eq!(t.latency(0), 141);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_panics() {
        let h = RingHierarchy::new(RingHierarchyConfig::ksr1_32()).unwrap();
        let _ = h.leaf_of(32);
    }
}

//! A Sequent Symmetry-style shared snooping bus.
//!
//! §3.2.3 of the paper contrasts the KSR-1 with the Symmetry: "the bus
//! serializes all the communication and hence algorithms which can benefit
//! in the presence of parallel communication paths (such as dissemination,
//! tournament, and MCS) do not perform well", while the naive counter
//! barrier — whose problem on the KSR-1 is hot-spot serialization — is
//! *already* serialized on a bus and therefore wins there.
//!
//! The model is a single FIFO resource: every coherence transaction
//! arbitrates for the bus, holds it for a command or a command+data period,
//! and releases it. There is no pipelining and no notion of distance.

use ksr_core::time::Cycles;
use ksr_core::trace::{TraceEvent, Tracer};
use ksr_core::{Error, Result};

use crate::msg::PacketKind;
use crate::ring::RingTiming;

/// Bus timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Cycles to win arbitration when the bus is idle.
    pub arbitration_cycles: Cycles,
    /// Bus occupancy for an address-only (command) transaction.
    pub cmd_cycles: Cycles,
    /// Bus occupancy for a transaction carrying a cache line of data.
    pub data_cycles: Cycles,
}

impl BusConfig {
    /// A Symmetry-flavoured default: a cache-miss fill costs on the order
    /// of tens of cycles and the bus is the only path.
    #[must_use]
    pub fn symmetry() -> Self {
        Self {
            arbitration_cycles: 2,
            cmd_cycles: 6,
            data_cycles: 20,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.cmd_cycles == 0 || self.data_cycles == 0 {
            return Err(Error::Config("bus occupancy must be non-zero".into()));
        }
        Ok(())
    }
}

/// Aggregate bus counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Transactions carried.
    pub transactions: u64,
    /// Total cycles requesters spent waiting for the bus.
    pub wait_cycles: u64,
    /// Total cycles the bus was occupied.
    pub busy_cycles: u64,
}

/// A single shared snooping bus.
#[derive(Debug, Clone)]
pub struct Bus {
    cfg: BusConfig,
    free_at: Cycles,
    stats: BusStats,
    tracer: Tracer,
}

impl Bus {
    /// Build a bus from a validated configuration.
    pub fn new(cfg: BusConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            free_at: 0,
            stats: BusStats::default(),
            tracer: Tracer::disabled(),
        })
    }

    /// Attach a tracer; every bus grant emits a [`TraceEvent::RingSlot`]
    /// (the event is fabric-agnostic: "admission won after `wait`").
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The bus configuration.
    #[must_use]
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Book one bus transaction requested at `now`. Strictly FIFO.
    pub fn transact(&mut self, now: Cycles, kind: PacketKind) -> RingTiming {
        let blocked = self.free_at > now;
        let start = self.free_at.max(now) + self.cfg.arbitration_cycles;
        let hold = if kind.carries_data() {
            self.cfg.data_cycles
        } else {
            self.cfg.cmd_cycles
        };
        let response_at = start + hold;
        self.free_at = response_at;
        self.stats.transactions += 1;
        self.stats.wait_cycles += start - now;
        self.stats.busy_cycles += hold;
        self.tracer.emit_with(|| TraceEvent::RingSlot {
            at: start,
            wait: start - now,
            blocked,
        });
        RingTiming {
            injected_at: start,
            response_at,
            slot_wait: start - now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_costs_arbitration_plus_hold() {
        let mut b = Bus::new(BusConfig::symmetry()).unwrap();
        let t = b.transact(100, PacketKind::ReadData);
        assert_eq!(t.injected_at, 102);
        assert_eq!(t.response_at, 122);
    }

    #[test]
    fn command_transactions_are_shorter() {
        let mut b = Bus::new(BusConfig::symmetry()).unwrap();
        let d = b.transact(0, PacketKind::ReadData).response_at;
        let mut b2 = Bus::new(BusConfig::symmetry()).unwrap();
        let c = b2.transact(0, PacketKind::Invalidate).response_at;
        assert!(c < d);
    }

    #[test]
    fn concurrent_requests_serialize() {
        let mut b = Bus::new(BusConfig::symmetry()).unwrap();
        let t1 = b.transact(0, PacketKind::ReadData);
        let t2 = b.transact(0, PacketKind::ReadData);
        let t3 = b.transact(0, PacketKind::ReadData);
        assert!(t2.injected_at >= t1.response_at);
        assert!(t3.injected_at >= t2.response_at);
        // Serialization: total time for 3 = 3x one transfer (+arb).
        assert_eq!(t3.response_at, 3 * 22);
    }

    #[test]
    fn bus_frees_after_transaction() {
        let mut b = Bus::new(BusConfig::symmetry()).unwrap();
        b.transact(0, PacketKind::ReadData);
        let t = b.transact(10_000, PacketKind::ReadData);
        assert_eq!(t.slot_wait, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut b = Bus::new(BusConfig::symmetry()).unwrap();
        b.transact(0, PacketKind::ReadData);
        b.transact(0, PacketKind::Invalidate);
        let s = b.stats();
        assert_eq!(s.transactions, 2);
        assert_eq!(s.busy_cycles, 26);
        assert!(s.wait_cycles > 0);
    }

    #[test]
    fn zero_occupancy_rejected() {
        assert!(Bus::new(BusConfig {
            arbitration_cycles: 0,
            cmd_cycles: 0,
            data_cycles: 1
        })
        .is_err());
    }
}

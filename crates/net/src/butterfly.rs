//! A BBN Butterfly-style dance-hall multistage interconnection network.
//!
//! §3.2.3: "On the BBN Butterfly, we do have parallel communication paths.
//! However, since there are no (hardware) coherent caches the global wakeup
//! flag method cannot be used on this machine." Every shared reference
//! crosses the MIN to a memory module; spinning is remote polling.
//!
//! The model routes a request through `log_arity(ports)` switch stages to
//! the target memory module, serializes at the module (hot-spot contention
//! — the phenomenon that makes a shared counter or flag expensive on this
//! machine), and returns through the network. Switch-stage contention is
//! secondary to module contention for the paper's workloads and is folded
//! into the per-hop constant.

use ksr_core::time::Cycles;
use ksr_core::trace::{TraceEvent, Tracer};
use ksr_core::{Error, Result};

use crate::msg::PacketKind;
use crate::ring::RingTiming;

/// Butterfly network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ButterflyConfig {
    /// Processor ports (== memory modules in a dance-hall organisation).
    pub ports: usize,
    /// Radix of each switch (the BBN Butterfly used 4×4 switches).
    pub switch_arity: usize,
    /// Cycles per switch stage, each direction.
    pub hop_cycles: Cycles,
    /// Memory-module service time per request.
    pub memory_cycles: Cycles,
}

impl ButterflyConfig {
    /// A BBN Butterfly-flavoured default for `ports` processors.
    #[must_use]
    pub fn bbn(ports: usize) -> Self {
        Self {
            ports,
            switch_arity: 4,
            hop_cycles: 4,
            memory_cycles: 10,
        }
    }

    /// Number of switch stages between a processor and a memory module.
    #[must_use]
    pub fn stages(&self) -> u32 {
        let mut n = 1usize;
        let mut stages = 0u32;
        while n < self.ports {
            n *= self.switch_arity;
            stages += 1;
        }
        stages.max(1)
    }

    /// One-way network transit time.
    #[must_use]
    pub fn transit(&self) -> Cycles {
        Cycles::from(self.stages()) * self.hop_cycles
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.ports == 0 {
            return Err(Error::Config("butterfly needs at least one port".into()));
        }
        if self.switch_arity < 2 {
            return Err(Error::Config("switch arity must be at least 2".into()));
        }
        if self.hop_cycles == 0 || self.memory_cycles == 0 {
            return Err(Error::Config("butterfly timings must be non-zero".into()));
        }
        Ok(())
    }
}

/// Aggregate network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ButterflyStats {
    /// Requests carried.
    pub requests: u64,
    /// Total cycles requests queued at memory modules.
    pub module_wait_cycles: u64,
}

/// A dance-hall butterfly MIN with per-module FIFO queueing.
#[derive(Debug, Clone)]
pub struct Butterfly {
    cfg: ButterflyConfig,
    module_free_at: Vec<Cycles>,
    stats: ButterflyStats,
    tracer: Tracer,
}

impl Butterfly {
    /// Build a network from a validated configuration.
    pub fn new(cfg: ButterflyConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            module_free_at: vec![0; cfg.ports],
            cfg,
            stats: ButterflyStats::default(),
            tracer: Tracer::disabled(),
        })
    }

    /// Attach a tracer; every module grant emits a
    /// [`TraceEvent::RingSlot`] whose wait is the module-queue wait.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The network configuration.
    #[must_use]
    pub fn config(&self) -> &ButterflyConfig {
        &self.cfg
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> ButterflyStats {
        self.stats
    }

    /// Book a request from a processor to memory module `module` at `now`.
    /// `_kind` participates only in accounting today; all requests are one
    /// word on the Butterfly (no cache lines — there are no caches).
    pub fn transact(&mut self, now: Cycles, module: usize, _kind: PacketKind) -> RingTiming {
        assert!(module < self.cfg.ports, "memory module out of range");
        let transit = self.cfg.transit();
        let arrive = now + transit;
        let start = self.module_free_at[module].max(arrive);
        let done = start + self.cfg.memory_cycles;
        self.module_free_at[module] = done;
        self.stats.requests += 1;
        self.stats.module_wait_cycles += start - arrive;
        self.tracer.emit_with(|| TraceEvent::RingSlot {
            at: start,
            wait: start - arrive,
            blocked: start > arrive,
        });
        RingTiming {
            injected_at: now,
            response_at: done + transit,
            slot_wait: start - arrive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count_grows_logarithmically() {
        assert_eq!(ButterflyConfig::bbn(4).stages(), 1);
        assert_eq!(ButterflyConfig::bbn(16).stages(), 2);
        assert_eq!(ButterflyConfig::bbn(64).stages(), 3);
        assert_eq!(ButterflyConfig::bbn(17).stages(), 3);
    }

    #[test]
    fn uncontended_latency_is_two_transits_plus_service() {
        let mut n = Butterfly::new(ButterflyConfig::bbn(16)).unwrap();
        let t = n.transact(0, 3, PacketKind::ReadData);
        assert_eq!(t.response_at, 2 * 8 + 10);
        assert_eq!(t.slot_wait, 0);
    }

    #[test]
    fn distinct_modules_proceed_in_parallel() {
        let mut n = Butterfly::new(ButterflyConfig::bbn(16)).unwrap();
        let a = n.transact(0, 0, PacketKind::ReadData);
        let b = n.transact(0, 1, PacketKind::ReadData);
        assert_eq!(a.response_at, b.response_at, "parallel paths exist");
    }

    #[test]
    fn hot_module_serializes() {
        let mut n = Butterfly::new(ButterflyConfig::bbn(16)).unwrap();
        let t: Vec<_> = (0..8)
            .map(|_| n.transact(0, 5, PacketKind::ReadData))
            .collect();
        for w in t.windows(2) {
            assert_eq!(
                w[1].response_at - w[0].response_at,
                10,
                "module service serializes"
            );
        }
        assert!(n.stats().module_wait_cycles > 0);
    }

    #[test]
    fn module_frees_after_service() {
        let mut n = Butterfly::new(ButterflyConfig::bbn(16)).unwrap();
        n.transact(0, 5, PacketKind::ReadData);
        let t = n.transact(1_000, 5, PacketKind::ReadData);
        assert_eq!(t.slot_wait, 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ButterflyConfig {
            ports: 0,
            ..ButterflyConfig::bbn(4)
        }
        .validate()
        .is_err());
        assert!(ButterflyConfig {
            switch_arity: 1,
            ..ButterflyConfig::bbn(4)
        }
        .validate()
        .is_err());
        assert!(ButterflyConfig {
            memory_cycles: 0,
            ..ButterflyConfig::bbn(4)
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_module_panics() {
        let mut n = Butterfly::new(ButterflyConfig::bbn(4)).unwrap();
        let _ = n.transact(0, 4, PacketKind::ReadData);
    }
}

//! A uniform front door over the three interconnect models.
//!
//! The machine layer talks to a [`Fabric`]; which concrete network sits
//! behind it is a preset choice (KSR ring hierarchy, Symmetry bus, or
//! Butterfly MIN). An enum rather than a trait object keeps dispatch
//! static-friendly and the whole simulator `Clone`-able and deterministic.

use ksr_core::time::Cycles;
use ksr_core::trace::Tracer;
use ksr_core::Result;

use crate::bus::{Bus, BusConfig};
use crate::butterfly::{Butterfly, ButterflyConfig};
use crate::hierarchy::{RingHierarchy, RingHierarchyConfig};
use crate::msg::{PacketKind, Transit};
use crate::ring::RingTiming;

/// Fabric-independent counters, normalized from whichever model is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets / transactions / requests carried.
    pub packets: u64,
    /// Total cycles requesters spent waiting to get onto the fabric
    /// (slot wait, bus wait, or module-queue wait).
    pub wait_cycles: u64,
}

impl FabricStats {
    /// Counters accumulated since an `earlier` reading (saturating, for
    /// per-phase attribution).
    #[must_use]
    pub fn delta(self, earlier: Self) -> Self {
        Self {
            packets: self.packets.saturating_sub(earlier.packets),
            wait_cycles: self.wait_cycles.saturating_sub(earlier.wait_cycles),
        }
    }
}

/// One of the three interconnects of the study.
#[derive(Debug, Clone)]
pub enum Fabric {
    /// KSR-1/KSR-2 slotted pipelined ring hierarchy.
    Ring(RingHierarchy),
    /// Sequent Symmetry shared snooping bus.
    Bus(Bus),
    /// BBN Butterfly dance-hall MIN (no coherent caches).
    Butterfly(Butterfly),
}

impl Fabric {
    /// A single-level 32-cell KSR-1 ring.
    pub fn ksr1_32() -> Result<Self> {
        Ok(Self::Ring(RingHierarchy::new(
            RingHierarchyConfig::ksr1_32(),
        )?))
    }

    /// A two-level 64-cell KSR system.
    pub fn ksr_64() -> Result<Self> {
        Ok(Self::Ring(RingHierarchy::new(
            RingHierarchyConfig::ksr_64(),
        )?))
    }

    /// A Symmetry-style bus.
    pub fn symmetry() -> Result<Self> {
        Ok(Self::Bus(Bus::new(BusConfig::symmetry())?))
    }

    /// A Butterfly-style MIN with `ports` processors/modules.
    pub fn butterfly(ports: usize) -> Result<Self> {
        Ok(Self::Butterfly(Butterfly::new(ButterflyConfig::bbn(
            ports,
        ))?))
    }

    /// Attach one shared tracer to whichever interconnect is active; every
    /// admission grant then emits a `RingSlot` event.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        match self {
            Self::Ring(h) => h.set_tracer(tracer),
            Self::Bus(b) => b.set_tracer(tracer.clone()),
            Self::Butterfly(n) => n.set_tracer(tracer.clone()),
        }
    }

    /// Whether this machine has hardware-coherent caches. `false` only for
    /// the Butterfly — the fact §3.2.3 hinges on (no global wakeup flag
    /// possible; every spin is a network transaction).
    #[must_use]
    pub fn has_coherent_caches(&self) -> bool {
        !matches!(self, Self::Butterfly(_))
    }

    /// Whether the fabric offers parallel communication paths (everything
    /// except the bus).
    #[must_use]
    pub fn has_parallel_paths(&self) -> bool {
        !matches!(self, Self::Bus(_))
    }

    /// Book a transaction.
    ///
    /// * `src_cell` — issuing processor.
    /// * `transit` — how far the coherence layer says it travels (rings
    ///   only).
    /// * `interleave_key` — sub-page index, selects the sub-ring on rings
    ///   and the memory module (`key % ports`) on the Butterfly.
    pub fn transact(
        &mut self,
        now: Cycles,
        src_cell: usize,
        transit: Transit,
        interleave_key: u64,
        kind: PacketKind,
    ) -> RingTiming {
        match self {
            Self::Ring(h) => h.transact(now, src_cell, transit, interleave_key, kind),
            Self::Bus(b) => b.transact(now, kind),
            Self::Butterfly(n) => {
                let module = (interleave_key % n.config().ports as u64) as usize;
                n.transact(now, module, kind)
            }
        }
    }

    /// Packets absorbed by in-network ARD combining (always 0 on the
    /// bus and the Butterfly, and on rings with combining disabled).
    #[must_use]
    pub fn combined_packets(&self) -> u64 {
        match self {
            Self::Ring(h) => h.combined_packets(),
            Self::Bus(_) | Self::Butterfly(_) => 0,
        }
    }

    /// Normalized counters.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        match self {
            Self::Ring(h) => {
                let s = h.total_stats();
                FabricStats {
                    packets: s.packets,
                    wait_cycles: s.slot_wait_cycles,
                }
            }
            Self::Bus(b) => {
                let s = b.stats();
                FabricStats {
                    packets: s.transactions,
                    wait_cycles: s.wait_cycles,
                }
            }
            Self::Butterfly(n) => {
                let s = n.stats();
                FabricStats {
                    packets: s.requests,
                    wait_cycles: s.module_wait_cycles,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_construct() {
        assert!(Fabric::ksr1_32().is_ok());
        assert!(Fabric::ksr_64().is_ok());
        assert!(Fabric::symmetry().is_ok());
        assert!(Fabric::butterfly(32).is_ok());
    }

    #[test]
    fn coherence_and_path_flags() {
        assert!(Fabric::ksr1_32().unwrap().has_coherent_caches());
        assert!(Fabric::ksr1_32().unwrap().has_parallel_paths());
        assert!(Fabric::symmetry().unwrap().has_coherent_caches());
        assert!(!Fabric::symmetry().unwrap().has_parallel_paths());
        assert!(!Fabric::butterfly(16).unwrap().has_coherent_caches());
        assert!(Fabric::butterfly(16).unwrap().has_parallel_paths());
    }

    #[test]
    fn ring_vs_bus_concurrency_contrast() {
        // Twelve simultaneous distinct transactions: roughly equal finish
        // times on the ring, strictly staircased on the bus.
        let mut ring = Fabric::ksr1_32().unwrap();
        let ring_t: Vec<_> = (0..12)
            .map(|i| {
                ring.transact(0, i, Transit::Local, 0, PacketKind::ReadData)
                    .response_at
            })
            .collect();
        let spread = ring_t.iter().max().unwrap() - ring_t.iter().min().unwrap();
        assert!(
            spread < 136,
            "ring transactions overlap within one rotation: spread {spread}"
        );

        let mut bus = Fabric::symmetry().unwrap();
        let bus_t: Vec<_> = (0..12)
            .map(|i| {
                bus.transact(0, i, Transit::Local, 0, PacketKind::ReadData)
                    .response_at
            })
            .collect();
        assert!(bus_t.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn stats_normalize() {
        let mut f = Fabric::butterfly(8).unwrap();
        f.transact(0, 0, Transit::Local, 3, PacketKind::ReadData);
        f.transact(0, 1, Transit::Local, 3, PacketKind::ReadData);
        let s = f.stats();
        assert_eq!(s.packets, 2);
        assert!(s.wait_cycles > 0, "second request queued at module 3");
    }
}

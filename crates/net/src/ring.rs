//! The KSR slotted, pipelined, unidirectional ring.
//!
//! ## Model
//!
//! The lowest-level KSR-1 ring has **24 slots organised as two
//! address-interleaved sub-rings of 12 slots each** and a capacity of
//! 1 GB/s (§2). A cell wanting to communicate waits for an empty slot to
//! pass, fills it, and the packet travels the full circumference: the
//! request propagates station-to-station until a holder responds, and the
//! response continues around back to the requester (unidirectionality is
//! also why the paper notes that "accessing any remote processor would be
//! equivalent to accessing the neighboring processor in terms of latency").
//! The slot is free again once the packet returns to its injection point.
//!
//! The model therefore books each transaction as *one slot occupied for one
//! full rotation* of the chosen sub-ring:
//!
//! * **Pipelining** — up to `slots_per_subring` transactions overlap per
//!   sub-ring; simultaneous *distinct* accesses barely disturb one another
//!   (Figure 2's nearly-flat latency curves).
//! * **Finite bandwidth** — once every slot is booked, later requesters
//!   wait for the earliest slot to free; sustained offered load beyond
//!   `slots / rotation` saturates, reproducing the §3.1/§3.3.2 saturation
//!   observed with 32 processors communicating at once.
//! * **Round-robin fairness** — requests are granted strictly in arrival
//!   order (the coordinator presents them in virtual-time order), matching
//!   the ring protocol's fairness/forward-progress guarantee.

use ksr_core::time::Cycles;
use ksr_core::trace::{TraceEvent, Tracer};
use ksr_core::{Error, Result};

use crate::msg::PacketKind;

/// Geometry and timing of one slotted ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Stations on the ring: member cells plus any ARD routers.
    pub stations: usize,
    /// Total slots circulating (24 on the KSR-1 leaf ring).
    pub slots: usize,
    /// Address-interleaved sub-rings sharing the physical ring (2 on the
    /// KSR-1, selected by a sub-page address bit).
    pub subrings: usize,
    /// Processor cycles for a slot to advance one station.
    pub hop_cycles: Cycles,
}

impl RingConfig {
    /// The KSR-1 leaf ring: 34 stations (32 cells + 2 ring-interface/ARD
    /// stations), 24 slots in two sub-rings, 4 cycles per hop — a 136-cycle
    /// rotation, which together with the cache-controller overheads in
    /// `ksr-mem` lands on the published 175-cycle remote access.
    #[must_use]
    pub fn ksr1_leaf() -> Self {
        Self {
            stations: 34,
            slots: 24,
            subrings: 2,
            hop_cycles: 4,
        }
    }

    /// The level-1 ring joining leaf rings: modelled with the same slot
    /// structure but four times the bandwidth (KSR documentation quotes
    /// 1, 2, or 4 GB/s options for Ring:1; we use the 4 GB/s variant the
    /// Georgia Tech machine had), i.e. a quarter of the per-hop delay.
    #[must_use]
    pub fn ksr1_top(leaves: usize) -> Self {
        Self {
            stations: leaves.max(2),
            slots: 24,
            subrings: 2,
            hop_cycles: 1,
        }
    }

    /// Full rotation time of the ring in cycles.
    #[must_use]
    pub fn circumference(&self) -> Cycles {
        self.stations as Cycles * self.hop_cycles
    }

    /// Slots owned by each sub-ring.
    #[must_use]
    pub fn slots_per_subring(&self) -> usize {
        self.slots / self.subrings
    }

    /// Average spacing between consecutive slots of one sub-ring passing a
    /// given station.
    #[must_use]
    pub fn slot_spacing(&self) -> Cycles {
        self.circumference() / self.slots_per_subring() as Cycles
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.stations < 2 {
            return Err(Error::Config("ring needs at least 2 stations".into()));
        }
        if self.subrings == 0 || self.slots == 0 || self.hop_cycles == 0 {
            return Err(Error::Config(
                "ring slots/subrings/hop_cycles must be non-zero".into(),
            ));
        }
        if self.subrings > self.slots {
            // Integer division would otherwise hand every lane zero
            // capacity and the ring could never grant a slot.
            return Err(Error::Config(format!(
                "{} sub-rings over {} slots leaves zero-capacity lanes; \
                 each sub-ring needs at least one slot",
                self.subrings, self.slots
            )));
        }
        if !self.slots.is_multiple_of(self.subrings) {
            return Err(Error::Config(format!(
                "slots ({}) must divide evenly into {} sub-rings",
                self.slots, self.subrings
            )));
        }
        Ok(())
    }
}

/// When a fabric transaction was granted and when its response returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingTiming {
    /// When the packet entered the fabric (after any slot/bus wait).
    pub injected_at: Cycles,
    /// When the response (or, for non-blocking packets, the packet itself)
    /// arrives back at the requester.
    pub response_at: Cycles,
    /// Cycles spent waiting for fabric admission — the "time spent in ring
    /// accesses" the hardware performance monitor reports.
    pub slot_wait: Cycles,
}

impl RingTiming {
    /// Total latency from issue to response.
    #[must_use]
    pub fn latency(&self, issued_at: Cycles) -> Cycles {
        self.response_at - issued_at
    }
}

/// Aggregate counters for one ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Packets injected.
    pub packets: u64,
    /// Packets that carried a 128-byte data payload.
    pub data_packets: u64,
    /// Total cycles spent by all requesters waiting for a free slot.
    pub slot_wait_cycles: u64,
    /// Packets that found every slot of their sub-ring occupied.
    pub blocked_packets: u64,
}

impl RingStats {
    /// Add another ring's counters into this accumulator (used to sum a
    /// hierarchy level or a whole ring tree).
    pub fn accumulate(&mut self, other: Self) {
        self.packets += other.packets;
        self.data_packets += other.data_packets;
        self.slot_wait_cycles += other.slot_wait_cycles;
        self.blocked_packets += other.blocked_packets;
    }
}

/// One slotted pipelined unidirectional ring.
#[derive(Debug, Clone)]
pub struct SlottedRing {
    cfg: RingConfig,
    /// Per sub-ring: for each currently-circulating packet, the time its
    /// slot frees (when the packet returns to its injection station).
    busy_until: Vec<Vec<Cycles>>,
    stats: RingStats,
    tracer: Tracer,
}

impl SlottedRing {
    /// Build a ring from a validated configuration.
    pub fn new(cfg: RingConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Self {
            busy_until: vec![Vec::with_capacity(cfg.slots_per_subring()); cfg.subrings],
            cfg,
            stats: RingStats::default(),
            tracer: Tracer::disabled(),
        })
    }

    /// Attach a tracer; every slot grant emits a
    /// [`TraceEvent::RingSlot`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The ring's configuration.
    #[must_use]
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    /// Sub-ring an address-interleave key maps to.
    #[must_use]
    pub fn subring_of(&self, interleave_key: u64) -> usize {
        (interleave_key % self.cfg.subrings as u64) as usize
    }

    /// Book one full-rotation transaction on `subring`, requested at `now`.
    ///
    /// Returns the injection and response times. Requests must be presented
    /// in non-decreasing `now` order (the coordinator guarantees this);
    /// grants are then strictly FIFO per sub-ring.
    pub fn transact(&mut self, now: Cycles, subring: usize, kind: PacketKind) -> RingTiming {
        assert!(subring < self.cfg.subrings, "sub-ring index out of range");
        let circumference = self.cfg.circumference();
        let cap = self.cfg.slots_per_subring();
        let lane = &mut self.busy_until[subring];
        lane.retain(|&free_at| free_at > now);

        // Expected wait for the next *empty* slot to pass the station:
        // with k of the sub-ring's slots occupied, empty slots pass at
        // rate (cap - k) per rotation, so the mean wait is
        // circumference / (2 (cap - k)) — half a slot spacing when idle,
        // rising sharply as the ring loads up. This load sensitivity is
        // what separates the O(P) tournament from the O(P log P)
        // dissemination barrier on the real machine.
        let (injected_at, blocked) = if lane.len() < cap {
            let free = (cap - lane.len()) as Cycles;
            let wait = (circumference / (2 * free)).max(1);
            (now + wait, false)
        } else {
            // All slots of this sub-ring are in flight: the earliest one to
            // come home is re-used; it frees at its owner's station and
            // reaches ours after half a rotation on average. Round-robin
            // fairness: under saturation many stations wait, so the freed
            // slot reaches the next waiter within about one slot spacing.
            match lane
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(_, free_at)| free_at)
            {
                Some((idx, earliest)) => {
                    // Remove the booking we are about to re-use.
                    lane.swap_remove(idx);
                    (earliest.max(now) + self.cfg.slot_spacing() / 2, true)
                }
                // Unreachable: `validate` guarantees every sub-ring at
                // least one slot, so a full lane holds a booking. Treat
                // the impossible empty case as an idle lane rather than
                // poisoning the coordinator with a panic.
                None => (now + (circumference / (2 * cap as Cycles)).max(1), false),
            }
        };
        let response_at = injected_at + circumference;
        lane.push(response_at);

        self.stats.packets += 1;
        if kind.carries_data() {
            self.stats.data_packets += 1;
        }
        let slot_wait = injected_at - now;
        self.stats.slot_wait_cycles += slot_wait;
        if blocked {
            self.stats.blocked_packets += 1;
        }
        self.tracer.emit_with(|| TraceEvent::RingSlot {
            at: injected_at,
            wait: slot_wait,
            blocked,
        });
        RingTiming {
            injected_at,
            response_at,
            slot_wait,
        }
    }

    /// Slots currently in flight on a sub-ring at time `now` (for tests and
    /// diagnostics).
    #[must_use]
    pub fn in_flight(&self, subring: usize, now: Cycles) -> usize {
        self.busy_until[subring]
            .iter()
            .filter(|&&t| t > now)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> SlottedRing {
        SlottedRing::new(RingConfig::ksr1_leaf()).unwrap()
    }

    #[test]
    fn ksr1_leaf_geometry() {
        let cfg = RingConfig::ksr1_leaf();
        assert_eq!(cfg.circumference(), 136);
        assert_eq!(cfg.slots_per_subring(), 12);
        assert_eq!(cfg.slot_spacing(), 11);
        cfg.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RingConfig {
            stations: 1,
            ..RingConfig::ksr1_leaf()
        }
        .validate()
        .is_err());
        assert!(RingConfig {
            slots: 0,
            ..RingConfig::ksr1_leaf()
        }
        .validate()
        .is_err());
        assert!(RingConfig {
            slots: 23,
            ..RingConfig::ksr1_leaf()
        }
        .validate()
        .is_err());
        assert!(RingConfig {
            hop_cycles: 0,
            ..RingConfig::ksr1_leaf()
        }
        .validate()
        .is_err());
        assert!(RingConfig {
            subrings: 0,
            ..RingConfig::ksr1_leaf()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn zero_capacity_lane_config_rejected_at_construction() {
        // More sub-rings than slots would give every lane zero capacity;
        // transact's full-lane path would then have no booking to re-use.
        // The constructor must refuse with a diagnosis, not panic later.
        let cfg = RingConfig {
            subrings: 48,
            ..RingConfig::ksr1_leaf()
        };
        let err = cfg.validate().expect_err("zero-capacity lanes");
        assert!(
            err.to_string().contains("zero-capacity"),
            "diagnosis names the problem: {err}"
        );
        assert!(SlottedRing::new(cfg).is_err());
    }

    #[test]
    fn single_slot_lanes_saturate_without_panicking() {
        // Minimum legal capacity: one slot per sub-ring. Saturating it
        // exercises the full-lane (slot re-use) path repeatedly.
        let cfg = RingConfig {
            slots: 2,
            subrings: 2,
            ..RingConfig::ksr1_leaf()
        };
        let mut r = SlottedRing::new(cfg).unwrap();
        let mut last = 0;
        for _ in 0..10 {
            let t = r.transact(0, 0, PacketKind::ReadData);
            assert!(t.response_at > last, "grants strictly ordered");
            last = t.response_at;
        }
        assert_eq!(r.stats().blocked_packets, 9);
    }

    #[test]
    fn single_transaction_latency_is_rotation_plus_half_spacing() {
        let mut r = ring();
        let t = r.transact(1000, 0, PacketKind::ReadData);
        assert_eq!(t.injected_at, 1005); // half of the 11-cycle slot spacing truncates to 5
        assert_eq!(t.response_at, 1005 + 136);
        assert_eq!(t.latency(1000), 141);
    }

    #[test]
    fn pipelining_simultaneous_distinct_transactions_do_not_block() {
        let mut r = ring();
        // 12 simultaneous transactions fill one sub-ring without blocking;
        // slot-entry waits grow with occupancy but stay below a rotation.
        let timings: Vec<RingTiming> = (0..12)
            .map(|_| r.transact(0, 0, PacketKind::ReadData))
            .collect();
        let lat0 = timings[0].latency(0);
        assert_eq!(lat0, 141, "idle latency: rotation + half slot spacing");
        for t in &timings {
            assert!(
                t.slot_wait < 136,
                "entry wait below one rotation: {}",
                t.slot_wait
            );
        }
        assert!(
            timings.windows(2).all(|w| w[1].slot_wait >= w[0].slot_wait),
            "waits grow with occupancy"
        );
        assert_eq!(r.stats().blocked_packets, 0);
        assert_eq!(r.in_flight(0, 10), 12);
    }

    #[test]
    fn thirteenth_simultaneous_transaction_waits_a_rotation() {
        let mut r = ring();
        for _ in 0..12 {
            r.transact(0, 0, PacketKind::ReadData);
        }
        let t = r.transact(0, 0, PacketKind::ReadData);
        // Must wait for the first slot to come home (~one rotation).
        assert!(
            t.slot_wait >= 136,
            "wait {} should be at least a rotation",
            t.slot_wait
        );
        assert_eq!(r.stats().blocked_packets, 1);
    }

    #[test]
    fn subrings_are_independent() {
        let mut r = ring();
        for _ in 0..12 {
            r.transact(0, 0, PacketKind::ReadData);
        }
        // Sub-ring 1 is still empty: no blocking there.
        let t = r.transact(0, 1, PacketKind::ReadData);
        assert_eq!(t.slot_wait, 5, "idle-lane entry wait");
    }

    #[test]
    fn slots_free_after_rotation() {
        let mut r = ring();
        for _ in 0..12 {
            r.transact(0, 0, PacketKind::ReadData);
        }
        // Well after the rotation completes, the lane is free again.
        let t = r.transact(10_000, 0, PacketKind::ReadData);
        assert_eq!(t.slot_wait, 5);
        assert_eq!(r.in_flight(0, 10_000), 1);
    }

    #[test]
    fn fifo_grants_under_contention() {
        let mut r = ring();
        for _ in 0..12 {
            r.transact(0, 0, PacketKind::ReadData);
        }
        let a = r.transact(1, 0, PacketKind::ReadData);
        let b = r.transact(2, 0, PacketKind::ReadData);
        let c = r.transact(3, 0, PacketKind::ReadData);
        assert!(a.injected_at <= b.injected_at && b.injected_at <= c.injected_at);
    }

    #[test]
    fn saturation_throughput_bounded_by_slots_per_rotation() {
        let mut r = ring();
        // Offer 200 back-to-back transactions at time 0 on one sub-ring and
        // measure the completion time of the last: throughput must be ~12
        // per 136-cycle rotation.
        let last = (0..200)
            .map(|_| r.transact(0, 0, PacketKind::ReadData).response_at)
            .max()
            .unwrap();
        let rotations_needed = (200f64 / 12f64).ceil();
        let lower = (rotations_needed as u64 - 1) * 136;
        assert!(
            last >= lower,
            "last completion {last} vs lower bound {lower}"
        );
        assert!(last <= (rotations_needed as u64 + 2) * 136 + 200);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = ring();
        r.transact(0, 0, PacketKind::ReadData);
        r.transact(0, 0, PacketKind::Invalidate);
        let s = r.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.data_packets, 1);
        // 5 (idle) + 6 (one slot already busy).
        assert_eq!(s.slot_wait_cycles, 11);
    }

    #[test]
    fn interleave_key_maps_to_both_subrings() {
        let r = ring();
        assert_eq!(r.subring_of(0), 0);
        assert_eq!(r.subring_of(1), 1);
        assert_eq!(r.subring_of(2), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_subring_panics() {
        let mut r = ring();
        let _ = r.transact(0, 2, PacketKind::ReadData);
    }
}

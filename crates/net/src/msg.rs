//! Packet vocabulary shared by the fabric models.

/// What a packet on the fabric is doing. Used for performance-monitor
//  accounting and for fabrics that treat kinds differently (the bus holds
//  the bus for longer on a data transfer than on an invalidation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A read-miss request that will be answered with a 128-byte sub-page.
    ReadData,
    /// A read-exclusive / write-miss request: fetch + invalidate others.
    ReadExclusive,
    /// An ownership upgrade for a sub-page already held shared
    /// (invalidates other copies, carries no data back).
    Invalidate,
    /// A `get_sub_page` atomic-state request.
    GetSubPage,
    /// A `release_sub_page` notification.
    ReleaseSubPage,
    /// A `poststore` update broadcast (carries the sub-page; every cell with
    /// a place-holder picks it up in passing).
    Poststore,
    /// A `prefetch` request (same transit as `ReadData`, but the issuing
    /// processor does not stall on it).
    Prefetch,
}

impl PacketKind {
    /// Whether the packet carries a full 128-byte sub-page payload.
    #[must_use]
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            Self::ReadData
                | Self::ReadExclusive
                | Self::GetSubPage
                | Self::Poststore
                | Self::Prefetch
        )
    }
}

/// How far a transaction has to travel, as determined by the coherence
/// engine before it asks the fabric for timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transit {
    /// Satisfied within the requester's leaf ring (or, for the bus and the
    /// butterfly, the single fabric level they have).
    Local,
    /// Must cross the level-1 ring to another leaf ring.
    /// Meaningless for single-level fabrics, which treat it as `Local`.
    CrossRing {
        /// The leaf ring that holds the responding copy.
        dst_leaf: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_carrying_kinds() {
        assert!(PacketKind::ReadData.carries_data());
        assert!(PacketKind::Poststore.carries_data());
        assert!(PacketKind::Prefetch.carries_data());
        assert!(!PacketKind::Invalidate.carries_data());
        assert!(!PacketKind::ReleaseSubPage.carries_data());
    }
}

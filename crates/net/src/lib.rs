//! # ksr-net
//!
//! Interconnection-network timing models for the KSR-1 scalability
//! reproduction.
//!
//! The KSR-1's network is a **unidirectional slotted pipelined ring** with
//! 24 slots in the lowest-level ring, organised as two address-interleaved
//! sub-rings of 12 slots each (§2 of the paper). Because the ring is slotted
//! and pipelined, *multiple packets are in flight simultaneously* — the
//! property the paper repeatedly identifies as the reason tournament-style
//! barriers win on this machine. Larger systems connect up to 34 leaf rings
//! through ARD routers to a higher-bandwidth level-1 ring ([`hierarchy`]).
//!
//! For the §3.2.3 comparison the crate also models the two machines of
//! Mellor-Crummey & Scott's study:
//!
//! * [`bus`] — a Sequent Symmetry-style shared snooping bus, which
//!   serializes *all* communication;
//! * [`butterfly`] — a BBN Butterfly-style dance-hall multistage network,
//!   which has parallel paths but no coherent caches.
//!
//! All three are *timing* models: the coherence engine (in `ksr-mem`)
//! decides **what** must travel; this crate decides **when** it arrives,
//! accounting for slot/bus/switch contention. Models are fully
//! deterministic; there is no randomness in the fabric itself.

#![warn(missing_docs)]

pub mod bus;
pub mod butterfly;
pub mod fabric;
pub mod hierarchy;
pub mod msg;
pub mod ring;
pub mod topology;

pub use bus::{Bus, BusConfig};
pub use butterfly::{Butterfly, ButterflyConfig};
pub use fabric::{Fabric, FabricStats};
pub use hierarchy::{RingHierarchy, RingHierarchyConfig, RingLevel};
pub use msg::{PacketKind, Transit};
pub use ring::{RingConfig, RingStats, RingTiming, SlottedRing};
pub use topology::Topology;

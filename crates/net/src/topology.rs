//! The unified interconnect-topology API.
//!
//! A [`Topology`] is a *value* describing which interconnect a machine
//! has and how it is shaped — the KSR ring tree at any depth, the
//! Symmetry bus, or the Butterfly MIN. `MachineConfig` carries one in
//! place of the old machine-kind enum and per-config ring-override
//! pair, so a 1024-cell
//! three-level system is expressed the same way as the paper's 32-cell
//! single ring:
//!
//! ```
//! use ksr_net::Topology;
//!
//! let t = Topology::ring_levels(&[32, 8, 4]); // 3 levels, 1024 cells
//! assert_eq!(t.capacity(), Some(1024));
//! t.build(1024).unwrap();
//! ```
//!
//! Validation — including every capacity error string — lives here, the
//! single source of truth. Machine presets are constructors on this type.

use ksr_core::time::Cycles;
use ksr_core::{Error, Result};

use crate::bus::{Bus, BusConfig};
use crate::butterfly::{Butterfly, ButterflyConfig};
use crate::fabric::Fabric;
use crate::hierarchy::{RingHierarchy, RingHierarchyConfig};

/// Shape of a machine's interconnect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// KSR slotted ring hierarchy (any depth).
    Ring(RingHierarchyConfig),
    /// Sequent Symmetry-style shared snooping bus.
    Bus(BusConfig),
    /// BBN Butterfly-style dance-hall MIN.
    Butterfly(ButterflyConfig),
}

impl Topology {
    /// The paper's single-level 32-cell KSR-1 ring.
    #[must_use]
    pub fn ksr1_32() -> Self {
        Self::Ring(RingHierarchyConfig::ksr1_32())
    }

    /// Two-level 64-cell KSR ring system, in KSR-1 cell cycles.
    #[must_use]
    pub fn ksr_64() -> Self {
        Self::Ring(RingHierarchyConfig::ksr_64())
    }

    /// The 64-cell KSR-2 of §3.2.4: the same two-level ring in absolute
    /// time, but the 40 MHz cell sees every hop and ARD crossing cost
    /// twice the processor cycles.
    #[must_use]
    pub fn ksr2_64() -> Self {
        Self::Ring(RingHierarchyConfig::ksr_64().scale_cycles(2))
    }

    /// A ring hierarchy with explicit geometry.
    #[must_use]
    pub fn ring(cfg: RingHierarchyConfig) -> Self {
        Self::Ring(cfg)
    }

    /// A KSR-style ring tree from a shape spec: `spec[0]` cells per leaf
    /// ring, each further entry the fanout of the next level up (see
    /// [`RingHierarchyConfig::ring_levels`]). `&[32, 8, 4]` is a
    /// 1024-cell three-level system.
    #[must_use]
    pub fn ring_levels(spec: &[usize]) -> Self {
        Self::Ring(RingHierarchyConfig::ring_levels(spec))
    }

    /// The Symmetry snooping bus (capacity limited by contention, not
    /// ports — any cell count shares the one bus).
    #[must_use]
    pub fn bus() -> Self {
        Self::Bus(BusConfig::symmetry())
    }

    /// A Butterfly MIN with `ports` processor/memory ports.
    #[must_use]
    pub fn butterfly(ports: usize) -> Self {
        Self::Butterfly(ButterflyConfig::bbn(ports))
    }

    /// Multiply ring hop/ARD latencies by `factor` (no-op for bus and
    /// Butterfly, whose timings are already in their own cell cycles).
    #[must_use]
    pub fn scale_ring_cycles(self, factor: Cycles) -> Self {
        match self {
            Self::Ring(cfg) => Self::Ring(cfg.scale_cycles(factor)),
            other => other,
        }
    }

    /// Maximum processor cells this topology can host, or `None` when the
    /// shape itself imposes no port limit (the bus).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        match self {
            Self::Ring(cfg) => Some(cfg.total_cells()),
            Self::Bus(_) => None,
            Self::Butterfly(cfg) => Some(cfg.ports),
        }
    }

    /// Ring depth (levels), if this is a ring topology.
    #[must_use]
    pub fn ring_depth(&self) -> Option<usize> {
        match self {
            Self::Ring(cfg) => Some(cfg.depth()),
            _ => None,
        }
    }

    /// Validate the shape (geometry only; use [`Topology::build`] to also
    /// check a cell count against capacity).
    pub fn validate(&self) -> Result<()> {
        match self {
            Self::Ring(cfg) => cfg.validate(),
            Self::Bus(cfg) => cfg.validate(),
            Self::Butterfly(cfg) => cfg.validate(),
        }
    }

    /// A short human-readable shape description for reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Self::Ring(cfg) => {
                let mut s = format!("ring[{}", cfg.cells_per_leaf);
                for lvl in &cfg.levels {
                    s.push_str(&format!("x{}", lvl.fanout));
                }
                s.push(']');
                if cfg.combining {
                    s.push_str("+combining");
                }
                s
            }
            Self::Bus(_) => "bus".into(),
            Self::Butterfly(cfg) => format!("butterfly[{}]", cfg.ports),
        }
    }

    /// Validate and build the interconnect for a machine with `cells`
    /// processors. Every capacity error originates here.
    pub fn build(&self, cells: usize) -> Result<Fabric> {
        self.validate()?;
        if let Some(cap) = self.capacity() {
            if cells > cap {
                return Err(Error::Config(format!(
                    "topology {} holds {cap} cells, machine asks for {cells}",
                    self.describe()
                )));
            }
        }
        Ok(match self {
            Self::Ring(cfg) => Fabric::Ring(RingHierarchy::new(cfg.clone())?),
            Self::Bus(cfg) => Fabric::Bus(Bus::new(*cfg)?),
            Self::Butterfly(cfg) => Fabric::Butterfly(Butterfly::new(*cfg)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_at_capacity() {
        Topology::ksr1_32().build(32).unwrap();
        Topology::ksr_64().build(64).unwrap();
        Topology::ksr2_64().build(64).unwrap();
        Topology::bus().build(16).unwrap();
        Topology::butterfly(256).build(256).unwrap();
        Topology::ring_levels(&[32, 8, 4]).build(1024).unwrap();
    }

    #[test]
    fn capacities() {
        assert_eq!(Topology::ksr1_32().capacity(), Some(32));
        assert_eq!(Topology::ksr_64().capacity(), Some(64));
        assert_eq!(Topology::bus().capacity(), None);
        assert_eq!(Topology::butterfly(64).capacity(), Some(64));
        assert_eq!(Topology::ring_levels(&[32, 8, 2]).capacity(), Some(512));
    }

    #[test]
    fn oversized_cell_counts_name_the_topology() {
        let err = Topology::ksr1_32().build(33).unwrap_err().to_string();
        assert!(err.contains("ring[32]") && err.contains("33"), "got: {err}");
        let err = Topology::butterfly(16).build(17).unwrap_err().to_string();
        assert!(err.contains("butterfly[16]"), "got: {err}");
        // The bus has no port limit.
        Topology::bus().build(1000).unwrap();
    }

    #[test]
    fn ksr2_doubles_ring_cycles() {
        let (Topology::Ring(one), Topology::Ring(two)) = (Topology::ksr_64(), Topology::ksr2_64())
        else {
            panic!("ring presets");
        };
        assert_eq!(two.leaf.hop_cycles, one.leaf.hop_cycles * 2);
        assert_eq!(two.levels[0].ard_cycles, one.levels[0].ard_cycles * 2);
        assert_eq!(
            two.levels[0].ring.hop_cycles,
            one.levels[0].ring.hop_cycles * 2
        );
    }

    #[test]
    fn describe_shapes() {
        assert_eq!(Topology::ksr1_32().describe(), "ring[32]");
        assert_eq!(
            Topology::ring_levels(&[32, 8, 4]).describe(),
            "ring[32x8x4]"
        );
        assert_eq!(Topology::bus().describe(), "bus");
        assert_eq!(Topology::butterfly(8).describe(), "butterfly[8]");
    }

    #[test]
    fn invalid_shapes_rejected_before_build() {
        let mut cfg = RingHierarchyConfig::ring_levels(&[32, 2]);
        cfg.levels[0].fanout = 99;
        assert!(Topology::ring(cfg).build(32).is_err());
    }
}

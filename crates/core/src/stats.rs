//! Summary statistics and curve fitting for the experiment harness.

/// Summary statistics over a sample of `f64` observations.
///
/// Used by every experiment binary to aggregate repeated episodes (e.g. the
/// per-barrier completion times averaged in Figures 4 and 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 when n < 2).
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

impl Summary {
    /// Compute summary statistics. Returns `None` for an empty sample.
    ///
    /// NaN observations do not panic: samples are ordered by
    /// [`f64::total_cmp`], under which every NaN sorts above `+inf`, and
    /// the mean/stddev propagate NaN through ordinary arithmetic. A
    /// corrupted sample therefore yields a visibly-NaN summary in the
    /// results (and a poisoned `max`/`p95`) instead of aborting the
    /// whole `run_all` from deep inside a reduce.
    #[must_use]
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples
                .iter()
                .map(|&x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Self {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
        })
    }

    /// Relative standard deviation (coefficient of variation); 0 when the
    /// mean is 0.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Percentile `p` (in `[0, 100]`) of an already-sorted sample, with linear
/// interpolation between closest ranks.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Least-squares linear fit `y = slope * x + intercept`.
///
/// The paper summarizes Figure 3 as "time for lock acquisition increases
/// linearly with the number of processors"; the harness verifies that claim
/// by fitting the measured series and checking the residual.
///
/// Returns `(slope, intercept, r_squared)`. Requires at least two points
/// with distinct x values.
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "mismatched series lengths");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    assert!(sxx > 0.0, "x values must not all be equal");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        // sample stddev of 1..4 = sqrt(5/3)
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_order_invariant() {
        let a = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        let b = Summary::of(&[1.0, 3.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn nan_sample_degrades_instead_of_panicking() {
        // One bad observation must not abort a whole run: NaN sorts last
        // under total order, so min/median come from the clean samples
        // while mean and max are visibly poisoned.
        let s = Summary::of(&[2.0, f64::NAN, 1.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert!(s.mean.is_nan());
        assert!(s.max.is_nan());
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        let s = Summary::of(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn fit_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (m, b, r2) = linear_fit(&xs, &ys);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_flat_line() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        let (m, b, r2) = linear_fit(&xs, &ys);
        assert_eq!(m, 0.0);
        assert_eq!(b, 4.0);
        assert_eq!(r2, 1.0);
    }

    #[test]
    fn fit_noisy_line_has_reasonable_r2() {
        let xs: Vec<f64> = (0..20).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                3.0 * x
                    + if (x as u32).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect();
        let (m, _, r2) = linear_fit(&xs, &ys);
        assert!((m - 3.0).abs() < 0.05);
        assert!(r2 > 0.99);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn fit_rejects_mismatched_lengths() {
        let _ = linear_fit(&[1.0], &[1.0, 2.0]);
    }
}

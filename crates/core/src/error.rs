//! Shared error type for the workspace.

use std::fmt;

/// Errors surfaced by the simulator and the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A machine configuration is internally inconsistent
    /// (e.g. a cache size not divisible by its line size).
    Config(String),
    /// A simulated program accessed an address outside any allocation.
    BadAddress(u64),
    /// An address was used with the wrong alignment for the operation.
    Misaligned {
        /// The offending address.
        addr: u64,
        /// The alignment the operation requires.
        required: u64,
    },
    /// The simulated heap is exhausted.
    OutOfMemory {
        /// Size of the failed request in bytes.
        requested: u64,
    },
    /// A simulation invariant was violated (a bug in a simulated program or
    /// in the simulator itself; always worth a panic in tests).
    Protocol(String),
    /// The host operating system could not provide a resource the
    /// simulator needs (e.g. an OS thread for a simulated processor).
    /// Unlike the variants above this is not a bug in the simulation —
    /// callers may retry with a smaller machine or fewer parallel jobs.
    Host(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::BadAddress(a) => write!(f, "access to unmapped SVA address {a:#x}"),
            Self::Misaligned { addr, required } => {
                write!(f, "address {addr:#x} not aligned to {required} bytes")
            }
            Self::OutOfMemory { requested } => {
                write!(f, "simulated heap exhausted allocating {requested} bytes")
            }
            Self::Protocol(msg) => write!(f, "protocol invariant violated: {msg}"),
            Self::Host(msg) => write!(f, "host resource unavailable: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::Config("x".into())
            .to_string()
            .contains("configuration"));
        assert!(Error::BadAddress(0x1000).to_string().contains("0x1000"));
        assert!(Error::Misaligned {
            addr: 3,
            required: 8
        }
        .to_string()
        .contains("8"));
        assert!(Error::OutOfMemory { requested: 64 }
            .to_string()
            .contains("64"));
        assert!(Error::Protocol("p".into())
            .to_string()
            .contains("invariant"));
        assert!(Error::Host("no threads".into())
            .to_string()
            .contains("host resource"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::BadAddress(1));
        assert!(e.source().is_none());
    }
}

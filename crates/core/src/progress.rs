//! `Sender`-based progress reporting for long runs.
//!
//! The experiment grid can run hundreds of simulations; users want a
//! live status line without the status ever contaminating the
//! machine-readable results on stdout. The contract here:
//!
//! * Workers (possibly many threads) hold a cloneable [`Progress`]
//!   handle and send [`ProgressEvent`]s through an `mpsc::Sender`.
//! * A single drainer thread ([`Progress::stderr`]) renders them as
//!   human-readable lines on **stderr**, so stdout stays pipeable.
//! * A [`Progress::disabled`] handle makes every send a no-op, letting
//!   library code report unconditionally with zero cost when nobody is
//!   listening.
//!
//! Rendering happens on one thread, so lines never interleave
//! mid-character even when many workers report at once.

use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;

/// One progress event from a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// A work unit started executing.
    Started {
        /// Human-readable label of the work unit.
        label: String,
        /// 1-based position in the overall run.
        index: usize,
        /// Total number of work units in the run.
        total: usize,
    },
    /// A work unit finished.
    Finished {
        /// Human-readable label of the work unit.
        label: String,
        /// 1-based position in the overall run.
        index: usize,
        /// Total number of work units in the run.
        total: usize,
        /// Wall-clock duration of the unit, in milliseconds.
        millis: u64,
    },
    /// A work unit was satisfied from a results cache without running.
    Cached {
        /// Human-readable label of the work unit.
        label: String,
        /// 1-based position in the overall run.
        index: usize,
        /// Total number of work units in the run.
        total: usize,
    },
    /// A free-form status line.
    Note(String),
}

impl ProgressEvent {
    /// The status line a drainer prints for this event.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Started {
                label,
                index,
                total,
            } => format!("[{index}/{total}] {label} ..."),
            Self::Finished {
                label,
                index,
                total,
                millis,
            } => format!("[{index}/{total}] {label} done in {millis} ms"),
            Self::Cached {
                label,
                index,
                total,
            } => format!("[{index}/{total}] {label} cached"),
            Self::Note(msg) => msg.clone(),
        }
    }
}

/// A cloneable handle workers report progress through. Either connected
/// to a drainer ([`Progress::stderr`], [`Progress::channel`]) or
/// disabled (every send is a no-op).
#[derive(Clone)]
pub struct Progress {
    tx: Option<Sender<ProgressEvent>>,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("connected", &self.tx.is_some())
            .finish()
    }
}

impl Progress {
    /// A handle that drops every event (for tests and library callers
    /// that don't want status output).
    #[must_use]
    pub fn disabled() -> Self {
        Self { tx: None }
    }

    /// A handle paired with the raw receiving end (for tests or custom
    /// drainers).
    #[must_use]
    pub fn channel() -> (Self, Receiver<ProgressEvent>) {
        let (tx, rx) = mpsc::channel();
        (Self { tx: Some(tx) }, rx)
    }

    /// A handle whose events a dedicated thread renders to stderr, one
    /// line per event. Drop every clone of the handle, then
    /// [`ProgressDrainer::join`] to flush the remaining lines.
    #[must_use]
    pub fn stderr() -> (Self, ProgressDrainer) {
        let (progress, rx) = Self::channel();
        let handle = std::thread::spawn(move || {
            for ev in rx {
                eprintln!("{}", ev.render());
            }
        });
        (progress, ProgressDrainer { handle })
    }

    /// Report an event. Silently dropped when disabled or when the
    /// drainer is gone — progress must never fail a run.
    pub fn send(&self, ev: ProgressEvent) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(ev);
        }
    }

    /// Report a free-form status line.
    pub fn note(&self, msg: impl Into<String>) {
        self.send(ProgressEvent::Note(msg.into()));
    }

    /// Report the start of work unit `index` of `total`.
    pub fn started(&self, label: &str, index: usize, total: usize) {
        self.send(ProgressEvent::Started {
            label: label.to_string(),
            index,
            total,
        });
    }

    /// Report the completion of work unit `index` of `total`.
    pub fn finished(&self, label: &str, index: usize, total: usize, millis: u64) {
        self.send(ProgressEvent::Finished {
            label: label.to_string(),
            index,
            total,
            millis,
        });
    }

    /// Report that work unit `index` of `total` was served from a cache.
    pub fn cached(&self, label: &str, index: usize, total: usize) {
        self.send(ProgressEvent::Cached {
            label: label.to_string(),
            index,
            total,
        });
    }
}

/// Join handle for the stderr drainer thread. The thread exits when
/// every [`Progress`] clone feeding it has been dropped.
#[derive(Debug)]
pub struct ProgressDrainer {
    handle: JoinHandle<()>,
}

impl ProgressDrainer {
    /// Wait for the drainer to print every pending line. Call after
    /// dropping the last `Progress` clone, or this blocks forever.
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_drops_everything() {
        let p = Progress::disabled();
        p.note("nobody hears this");
        p.started("x", 1, 2);
        p.finished("x", 1, 2, 5);
    }

    #[test]
    fn channel_delivers_in_order() {
        let (p, rx) = Progress::channel();
        let worker = p.clone();
        worker.started("fig2", 1, 14);
        worker.finished("fig2", 1, 14, 120);
        worker.cached("fig3", 2, 14);
        p.note("done");
        drop((p, worker));
        let events: Vec<_> = rx.into_iter().collect();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].render(), "[1/14] fig2 ...");
        assert_eq!(events[1].render(), "[1/14] fig2 done in 120 ms");
        assert_eq!(events[2].render(), "[2/14] fig3 cached");
        assert_eq!(events[3].render(), "done");
    }

    #[test]
    fn stderr_drainer_joins_after_handles_drop() {
        let (p, drainer) = Progress::stderr();
        p.note("status goes to stderr");
        drop(p);
        drainer.join();
    }
}

//! Deterministic, dependency-free hashing for the simulator hot path.
//!
//! Every table on the memory-access path — the directory holder map, the
//! sub-page busy table, the SVA page store, the coordinator's parked map —
//! is keyed by small integers (`u64` sub-page numbers, addresses, cell
//! indices). The standard library's default `SipHash13` is a keyed,
//! DoS-resistant hash: excellent for servers parsing untrusted input,
//! needless overhead for a simulator hashing its own sub-page numbers
//! millions of times per run. [`FxHasher`] is the classic Firefox/rustc
//! multiply-rotate hash, hand-rolled here so the workspace stays
//! zero-dependency.
//!
//! Two properties matter beyond speed:
//!
//! * **Determinism across runs and platforms.** `FxHasher` has no random
//!   state, and every integer write routes through a `u64` (so 32- and
//!   64-bit `usize` hash identically). Iteration order of an
//!   [`FxHashMap`] is therefore reproducible — though simulator code must
//!   still never let map iteration order reach a result file, a rule the
//!   `-j1`-vs-`-j8` determinism gate enforces end to end.
//! * **No allocation, no per-instance state.** [`FxBuildHasher`] is a
//!   zero-sized `Default`, so swapping a `HashMap<K, V>` for
//!   [`FxHashMap<K, V>`] changes nothing but the hash function.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fibonacci-style multiplier (2^64 / φ, forced odd) — the same
/// constant rustc's `FxHasher` uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotation applied before each multiply; spreads low-entropy integer
/// keys (sequential sub-page numbers) across the high bits the map uses
/// for bucket selection.
const ROTATE: u32 = 5;

/// A fast, deterministic, non-cryptographic hasher for trusted integer
/// keys. Not DoS-resistant — never use it on untrusted external input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Byte strings fold in 8-byte little-endian chunks with an
        // explicit length tag, so `"ab" + "c"` and `"a" + "bc"` (same
        // bytes, different chunking via a tuple key) cannot collide
        // trivially and results match on every platform.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add_word(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(w));
        }
        self.add_word(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        // Route through u64 so 32- and 64-bit hosts agree.
        self.add_word(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.write_u8(n as u8);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.write_u16(n as u16);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.write_u32(n as u32);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.write_usize(n as usize);
    }
}

/// Zero-sized builder: every hasher starts from the same (zero) state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — drop-in for hot-path integer-keyed
/// tables.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(hash_of(&key), hash_of(&key));
        }
    }

    #[test]
    fn known_values_pin_the_algorithm() {
        // Golden values: any change to the constants or the mixing
        // routine is a cross-platform determinism break and must be
        // deliberate (these values are what an x86-64 and an aarch64
        // host must both produce).
        assert_eq!(hash_of(&0u64), 0);
        assert_eq!(hash_of(&1u64), 0x517c_c1b7_2722_0a95);
        assert_eq!(hash_of(&0xFFFF_FFFF_FFFF_FFFFu64), 0xae83_3e48_d8dd_f56b);
    }

    #[test]
    fn usize_and_u64_agree() {
        // The platform-sensitive type must hash exactly like its u64
        // widening, so map layouts match across word sizes.
        for n in [0usize, 7, 4096, usize::MAX] {
            assert_eq!(hash_of(&n), hash_of(&(n as u64)));
        }
    }

    #[test]
    fn tuple_keys_hash_consistently() {
        let a = hash_of(&(3usize, 17u64));
        let b = hash_of(&(3usize, 17u64));
        assert_eq!(a, b);
        assert_ne!(hash_of(&(3usize, 17u64)), hash_of(&(17usize, 3u64)));
    }

    #[test]
    fn nearby_integers_spread() {
        // Sequential sub-page numbers are the dominant key pattern; they
        // must not collide in the low bits the map's bucket index uses.
        let mut low_bits = FxHashSet::default();
        for sp in 0u64..256 {
            low_bits.insert(hash_of(&sp) & 0xFF);
        }
        assert!(
            low_bits.len() > 200,
            "poor low-bit dispersion: {} distinct of 256",
            low_bits.len()
        );
    }

    #[test]
    fn map_and_set_are_drop_in() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(5, "five");
        assert_eq!(m.get(&5), Some(&"five"));
        let mut s: FxHashSet<(usize, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for k in [9u64, 1, countdown(5), 1024, 77] {
                m.insert(k, k * 2);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    fn countdown(n: u64) -> u64 {
        n
    }

    #[test]
    fn byte_strings_chunk_stably() {
        assert_eq!(hash_of(&"subpage"), hash_of(&"subpage"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        // Length tag separates a short string from its zero-padded chunk.
        assert_ne!(hash_of(&[0u8; 7][..]), hash_of(&[0u8; 8][..]));
    }
}

//! # ksr-core
//!
//! Foundation crate for the reproduction of *"Scalability Study of the
//! KSR-1"* (Ramachandran, Shah, Muthukumarasamy, Ravikumar; ICPP 1993 /
//! Parallel Computing 22, 1996).
//!
//! This crate holds everything the rest of the workspace shares but that is
//! independent of any particular machine model:
//!
//! * [`time`] — virtual time in processor clock cycles, and conversion to
//!   wall-clock seconds at a configurable clock rate (the KSR-1 runs at
//!   20 MHz, the KSR-2 at 40 MHz).
//! * [`rng`] — a small, fully deterministic xorshift PRNG used for cache
//!   replacement decisions and workload generation, so that every simulation
//!   is reproducible from a single seed.
//! * [`stats`] — summary statistics (mean, stddev, min/max, percentiles) and
//!   a least-squares linear fit used by the experiment harness.
//! * [`metrics`] — the scalability metrics the paper reports: speedup,
//!   efficiency, and the Karp–Flatt experimentally determined serial
//!   fraction.
//! * [`table`] — plain-text table and series rendering so each experiment
//!   binary can print the same rows/columns the paper's tables and figures
//!   contain.
//! * [`trace`] — cycle-stamped event tracing: the [`trace::TraceEvent`]
//!   vocabulary (ring slots, coherence transitions, snarfs,
//!   invalidations, atomic rejections, barrier episodes, lock handoffs),
//!   the [`trace::TraceSink`] consumer trait, and the zero-cost-when-off
//!   [`trace::Tracer`] handle every instrumented layer holds.
//! * [`json`] — a dependency-free JSON value/writer for the
//!   machine-readable results pipeline (`results/<id>.json`,
//!   `results/summary.json`). Pure value → text rendering: no global
//!   state anywhere in this crate, so concurrent jobs can trace and
//!   serialize independently.
//! * [`progress`] — `Sender`-based progress reporting: workers send
//!   [`progress::ProgressEvent`]s, a single drainer renders them on
//!   stderr, and stdout stays reserved for results.
//! * [`hash`] — a deterministic FxHash-style hasher and the
//!   [`hash::FxHashMap`]/[`hash::FxHashSet`] aliases used by every
//!   integer-keyed table on the simulator's memory-access hot path.
//! * [`fingerprint`] — stable 128-bit content fingerprints (two salted
//!   FxHash lanes) keying the sweep harness's results cache.
//! * [`error`] — the shared error type.

#![warn(missing_docs)]

pub mod error;
pub mod fingerprint;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;
pub mod trace;

pub use error::{Error, Result};
pub use fingerprint::{fingerprint, Fingerprint, FingerprintBuilder};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use json::Json;
pub use metrics::{efficiency, karp_flatt, speedup, ScalingRow, ScalingTable};
pub use progress::{Progress, ProgressDrainer, ProgressEvent};
pub use rng::XorShift64;
pub use stats::{linear_fit, Summary};
pub use table::{Series, TextTable};
pub use time::{Cycles, Hz, VirtualTime, KSR1_CLOCK_HZ, KSR2_CLOCK_HZ};
pub use trace::{
    CountingSink, NullSink, RingBufferSink, TraceEvent, TraceKind, TraceSink, TraceState, Tracer,
};

//! Plain-text rendering of experiment output.
//!
//! Every experiment binary prints (a) paper-style tables and (b) figure
//! *series* — the `(x, y)` point lists behind Figures 2–5 and 8 — in both a
//! human-readable block and machine-readable CSV, so the harness output can
//! be diffed against EXPERIMENTS.md and re-plotted.

use std::fmt::Write as _;

/// A labelled `(x, y)` series, one per curve of a paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label as it appears in the paper's figure legend
    /// (e.g. `"Network Read"`, `"tournament(M)"`).
    pub label: String,
    /// The `(x, y)` points; x is typically the processor count.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series with a label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present (exact match).
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|&(_, y)| y)
    }

    /// Whether the series is monotonically non-decreasing in y.
    #[must_use]
    pub fn monotonic_up(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12)
    }
}

/// Render a figure's series as CSV: header `x,label1,label2,...` then one
/// row per distinct x (missing values left empty). All series are expected
/// to share the same x grid; stray x values get their own rows.
#[must_use]
pub fn series_to_csv(series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN x"));
    xs.dedup();
    let mut out = String::from("x");
    for s in series {
        let _ = write!(out, ",{}", s.label.replace(',', ";"));
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x}");
        for s in series {
            match s.y_at(x) {
                Some(y) => {
                    let _ = write!(out, ",{y}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// A simple fixed-width text table used for non-scaling tables (e.g. the
/// SP optimization ladder of Table 4).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Must match the header arity.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with columns padded to their widest cell.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:>w$}", w = w);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_push_and_lookup() {
        let mut s = Series::new("net read");
        s.push(1.0, 8.75e-6);
        s.push(32.0, 9.45e-6);
        assert_eq!(s.y_at(1.0), Some(8.75e-6));
        assert_eq!(s.y_at(2.0), None);
        assert!(s.monotonic_up());
    }

    #[test]
    fn monotonic_detects_dip() {
        let mut s = Series::new("x");
        s.push(1.0, 2.0);
        s.push(2.0, 1.0);
        assert!(!s.monotonic_up());
    }

    #[test]
    fn csv_shape() {
        let mut a = Series::new("a");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("b");
        b.push(1.0, 30.0);
        let csv = series_to_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,30");
        assert_eq!(lines[2], "2,20,");
    }

    #[test]
    fn csv_escapes_commas_in_labels() {
        let mut a = Series::new("read, shared");
        a.push(1.0, 1.0);
        let csv = series_to_csv(&[a]);
        assert!(csv.starts_with("x,read; shared"));
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["Optimizations", "Time per iteration (s)"]);
        t.row(&["Base version".into(), "2.54".into()]);
        t.row(&["Data padding and alignment".into(), "2.14".into()]);
        let s = t.render();
        assert!(s.contains("Base version"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // header + separator + 2 rows
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn text_table_rejects_bad_row() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}

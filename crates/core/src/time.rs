//! Virtual time.
//!
//! Everything in the simulator is accounted in **processor clock cycles**.
//! The KSR-1 cell is clocked at 20 MHz (50 ns cycle); the KSR-2 is the same
//! machine clocked at 40 MHz. The paper reports some results in seconds and
//! some in cycles; [`VirtualTime`] carries the clock so conversions are
//! explicit and cannot be mixed up between the two machines.

/// A duration or instant measured in processor clock cycles.
pub type Cycles = u64;

/// A clock rate in Hertz.
pub type Hz = u64;

/// KSR-1 cell clock: 20 MHz (50 ns per cycle).
pub const KSR1_CLOCK_HZ: Hz = 20_000_000;

/// KSR-2 cell clock: 40 MHz. The paper (§3.2.4) states the processor clock
/// is the *only* architectural difference from the KSR-1; the ring and the
/// memory hierarchy are identical.
pub const KSR2_CLOCK_HZ: Hz = 40_000_000;

/// An instant of virtual time bound to a specific clock rate.
///
/// ```
/// use ksr_core::time::{VirtualTime, KSR1_CLOCK_HZ};
/// let t = VirtualTime::new(KSR1_CLOCK_HZ).advanced(20_000_000);
/// assert_eq!(t.seconds(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct VirtualTime {
    cycles: Cycles,
    clock_hz: Hz,
}

impl VirtualTime {
    /// A zero instant on a clock running at `clock_hz`.
    #[must_use]
    pub fn new(clock_hz: Hz) -> Self {
        assert!(clock_hz > 0, "clock rate must be positive");
        Self {
            cycles: 0,
            clock_hz,
        }
    }

    /// The number of elapsed cycles.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.cycles
    }

    /// The clock rate this instant is measured against.
    #[must_use]
    pub fn clock_hz(&self) -> Hz {
        self.clock_hz
    }

    /// This instant expressed in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / self.clock_hz as f64
    }

    /// This instant expressed in microseconds (the unit of the paper's
    /// Figures 2, 4 and 5).
    #[must_use]
    pub fn micros(&self) -> f64 {
        self.seconds() * 1e6
    }

    /// A copy of this instant advanced by `delta` cycles.
    #[must_use]
    pub fn advanced(mut self, delta: Cycles) -> Self {
        self.cycles += delta;
        self
    }

    /// Advance this instant in place by `delta` cycles.
    pub fn advance(&mut self, delta: Cycles) {
        self.cycles += delta;
    }

    /// Advance this instant to `at` if `at` is later, in place. Returns the
    /// number of cycles skipped (zero when `at` is not later).
    pub fn advance_to(&mut self, at: Cycles) -> Cycles {
        if at > self.cycles {
            let skipped = at - self.cycles;
            self.cycles = at;
            skipped
        } else {
            0
        }
    }
}

/// Convert a cycle count to seconds at a given clock rate.
#[must_use]
pub fn cycles_to_seconds(cycles: Cycles, clock_hz: Hz) -> f64 {
    cycles as f64 / clock_hz as f64
}

/// Convert seconds to a cycle count at a given clock rate (rounded to the
/// nearest cycle).
#[must_use]
pub fn seconds_to_cycles(seconds: f64, clock_hz: Hz) -> Cycles {
    (seconds * clock_hz as f64).round() as Cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_time_is_zero_seconds() {
        let t = VirtualTime::new(KSR1_CLOCK_HZ);
        assert_eq!(t.cycles(), 0);
        assert_eq!(t.seconds(), 0.0);
    }

    #[test]
    fn ksr1_cycle_is_50ns() {
        let t = VirtualTime::new(KSR1_CLOCK_HZ).advanced(1);
        assert!((t.seconds() - 50e-9).abs() < 1e-15);
    }

    #[test]
    fn ksr2_cycle_is_half_a_ksr1_cycle() {
        let one = VirtualTime::new(KSR1_CLOCK_HZ).advanced(1).seconds();
        let two = VirtualTime::new(KSR2_CLOCK_HZ).advanced(1).seconds();
        assert!((one - 2.0 * two).abs() < 1e-15);
    }

    #[test]
    fn advance_accumulates() {
        let mut t = VirtualTime::new(KSR1_CLOCK_HZ);
        t.advance(10);
        t.advance(7);
        assert_eq!(t.cycles(), 17);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut t = VirtualTime::new(KSR1_CLOCK_HZ).advanced(100);
        assert_eq!(t.advance_to(50), 0);
        assert_eq!(t.cycles(), 100);
        assert_eq!(t.advance_to(150), 50);
        assert_eq!(t.cycles(), 150);
    }

    #[test]
    fn micros_matches_seconds() {
        let t = VirtualTime::new(KSR1_CLOCK_HZ).advanced(200);
        assert!((t.micros() - t.seconds() * 1e6).abs() < 1e-12);
    }

    #[test]
    fn seconds_cycles_roundtrip() {
        for &c in &[0u64, 1, 17, 20_000_000, 123_456_789] {
            let s = cycles_to_seconds(c, KSR1_CLOCK_HZ);
            assert_eq!(seconds_to_cycles(s, KSR1_CLOCK_HZ), c);
        }
    }

    #[test]
    #[should_panic(expected = "clock rate must be positive")]
    fn zero_clock_rejected() {
        let _ = VirtualTime::new(0);
    }
}

//! Scalability metrics used throughout the paper.
//!
//! The paper reports, for each kernel and processor count: execution time,
//! **speedup** T(1)/T(p), **efficiency** S(p)/p, and the **experimentally
//! determined serial fraction** of Karp & Flatt (CACM 33(5), 1990), which
//! the authors use to separate algorithmic from architectural bottlenecks
//! (Tables 1 and 2).

/// Speedup `S(p) = t1 / tp`.
///
/// # Panics
/// Panics if `tp` is not positive.
#[must_use]
pub fn speedup(t1: f64, tp: f64) -> f64 {
    assert!(tp > 0.0, "parallel time must be positive");
    t1 / tp
}

/// Efficiency `E(p) = S(p) / p`.
#[must_use]
pub fn efficiency(s: f64, p: usize) -> f64 {
    assert!(p > 0, "processor count must be positive");
    s / p as f64
}

/// Karp–Flatt experimentally determined serial fraction:
///
/// `f = (1/S - 1/p) / (1 - 1/p)`
///
/// For `p = 1` the metric is undefined (the paper prints "-"); this
/// function returns `None` in that case.
#[must_use]
pub fn karp_flatt(s: f64, p: usize) -> Option<f64> {
    if p < 2 {
        return None;
    }
    assert!(s > 0.0, "speedup must be positive");
    let p = p as f64;
    Some((1.0 / s - 1.0 / p) / (1.0 - 1.0 / p))
}

/// Whether a speedup observation is *superunitary* at `p` processors, the
/// term the paper borrows from Helmbold & McDowell for `S(p) > p` behaviour
/// (observed for CG between 4 and 16 processors relative to the 4-processor
/// run). This helper tests the *incremental* form the paper uses: scaling
/// from `(p_lo, s_lo)` to `(p_hi, s_hi)` is superunitary when the speedup
/// grows by more than the processor ratio.
#[must_use]
pub fn superunitary_step(p_lo: usize, s_lo: f64, p_hi: usize, s_hi: f64) -> bool {
    assert!(p_hi > p_lo && p_lo > 0, "processor counts must increase");
    s_hi / s_lo > p_hi as f64 / p_lo as f64
}

/// One row of a paper-style scaling table (Tables 1–3).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Processor count for this row.
    pub procs: usize,
    /// Execution time in seconds.
    pub time_s: f64,
    /// Speedup relative to the 1-processor row.
    pub speedup: f64,
    /// Efficiency `speedup / procs`.
    pub efficiency: f64,
    /// Karp–Flatt serial fraction; `None` for the 1-processor row.
    pub serial_fraction: Option<f64>,
}

/// A scaling table built from `(procs, time)` measurements, mirroring the
/// layout of the paper's Tables 1 and 2.
#[derive(Debug, Clone, Default)]
pub struct ScalingTable {
    rows: Vec<ScalingRow>,
}

impl ScalingTable {
    /// Build a table from `(procs, seconds)` measurements. The first entry
    /// must be the single-processor baseline.
    ///
    /// # Panics
    /// Panics if `measurements` is empty, the first row is not `procs == 1`,
    /// or any time is non-positive.
    #[must_use]
    pub fn from_times(measurements: &[(usize, f64)]) -> Self {
        assert!(!measurements.is_empty(), "no measurements");
        assert_eq!(
            measurements[0].0, 1,
            "first row must be the 1-processor baseline"
        );
        let t1 = measurements[0].1;
        assert!(t1 > 0.0, "baseline time must be positive");
        let rows = measurements
            .iter()
            .map(|&(p, t)| {
                assert!(p >= 1 && t > 0.0, "bad measurement ({p}, {t})");
                let s = speedup(t1, t);
                ScalingRow {
                    procs: p,
                    time_s: t,
                    speedup: s,
                    efficiency: efficiency(s, p),
                    serial_fraction: karp_flatt(s, p),
                }
            })
            .collect();
        Self { rows }
    }

    /// The table's rows in measurement order.
    #[must_use]
    pub fn rows(&self) -> &[ScalingRow] {
        &self.rows
    }

    /// Whether the serial fraction is monotonically non-decreasing over the
    /// multi-processor rows — the signature the paper reads as "the
    /// slow-down is inherent to the algorithm" for IS (Table 2).
    #[must_use]
    pub fn serial_fraction_monotonic_up(&self) -> bool {
        let fracs: Vec<f64> = self.rows.iter().filter_map(|r| r.serial_fraction).collect();
        fracs.windows(2).all(|w| w[1] >= w[0] - 1e-12)
    }

    /// Render in the paper's format: Processors | Time | Speedup |
    /// Efficiency | Serial Fraction.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:>10} {:>16} {:>10} {:>11} {:>16}",
            "Processors", "Time (s)", "Speedup", "Efficiency", "Serial Fraction"
        );
        for r in &self.rows {
            let frac = r
                .serial_fraction
                .map_or_else(|| "-".to_string(), |f| format!("{f:.6}"));
            let _ = writeln!(
                out,
                "{:>10} {:>16.5} {:>10.5} {:>11.3} {:>16}",
                r.procs, r.time_s, r.speedup, r.efficiency, frac
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_basic() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
    }

    #[test]
    fn efficiency_basic() {
        assert!((efficiency(8.0, 10) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn karp_flatt_single_proc_is_none() {
        assert!(karp_flatt(1.0, 1).is_none());
    }

    #[test]
    fn karp_flatt_perfect_speedup_is_zero() {
        let f = karp_flatt(8.0, 8).unwrap();
        assert!(f.abs() < 1e-12);
    }

    #[test]
    fn karp_flatt_amdahl_consistency() {
        // With serial fraction f, Amdahl gives S = 1 / (f + (1-f)/p);
        // karp_flatt must invert that exactly.
        let f = 0.05;
        for p in [2usize, 4, 8, 16, 32] {
            let s = 1.0 / (f + (1.0 - f) / p as f64);
            let est = karp_flatt(s, p).unwrap();
            assert!((est - f).abs() < 1e-12, "p={p}: {est} vs {f}");
        }
    }

    #[test]
    fn karp_flatt_matches_paper_table1() {
        // Table 1 of the paper: CG, p=2: speedup 1.76131 -> 0.135518.
        let f = karp_flatt(1.76131, 2).unwrap();
        assert!((f - 0.135518).abs() < 1e-4, "{f}");
        // p=32: speedup 22.75930 -> 0.013097.
        let f = karp_flatt(22.7593, 32).unwrap();
        assert!((f - 0.013097).abs() < 1e-4, "{f}");
    }

    #[test]
    fn superunitary_step_detects_table1_jump() {
        // Table 1: p=4 S=2.8995, p=8 S=6.31418 — more than 2x from 2x procs.
        assert!(superunitary_step(4, 2.8995, 8, 6.31418));
        // p=16 S=12.9534 to p=32 S=22.7593 — sub-linear step.
        assert!(!superunitary_step(16, 12.9534, 32, 22.7593));
    }

    #[test]
    fn scaling_table_from_paper_is_self_consistent() {
        // Times from Table 2 (IS).
        let t = ScalingTable::from_times(&[
            (1, 692.95492),
            (2, 351.03866),
            (4, 180.95085),
            (8, 95.79978),
            (16, 54.80835),
            (30, 36.56198),
            (32, 36.63433),
        ]);
        let rows = t.rows();
        assert!((rows[1].speedup - 1.97401).abs() < 1e-4);
        assert!((rows[6].speedup - 18.9155).abs() < 1e-3);
        assert!((rows[4].efficiency - 0.790).abs() < 1e-3);
        assert!(t.serial_fraction_monotonic_up(), "IS serial fraction rises");
    }

    #[test]
    fn render_contains_all_rows() {
        let t = ScalingTable::from_times(&[(1, 4.0), (2, 2.0), (4, 1.0)]);
        let s = t.render("demo");
        assert!(s.contains("demo"));
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains('-'), "baseline serial fraction prints as -");
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn scaling_table_requires_baseline_first() {
        let _ = ScalingTable::from_times(&[(2, 1.0)]);
    }
}

//! Cycle-stamped event tracing.
//!
//! The paper's method is observability: the authors attributed slowdowns
//! to cache capacity vs. ring saturation with the KSR-1's hardware
//! performance monitor (§2, §3.3.2). The aggregate counters live in
//! `ksr-mem`'s `PerfMon`; this module adds the *event* layer beneath
//! them — every ring slot acquisition, coherence transition, snarf,
//! invalidation, atomic rejection, barrier episode, and lock handoff can
//! be observed as it happens, stamped with the virtual cycle at which it
//! committed.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Sinks only *observe*; nothing they do can feed
//!    back into simulated time. A run produces identical cycle counts
//!    with tracing enabled or disabled (asserted by the
//!    `tracing_preserves_determinism` integration test).
//! 2. **Zero cost when disabled.** A [`Tracer`] is an `Option` around a
//!    shared sink; the disabled path is one branch, and event
//!    construction is deferred into a closure that never runs
//!    ([`Tracer::emit_with`]).
//! 3. **No new dependencies.** Sharing is `Arc<Mutex<_>>` from `std`, so
//!    machines stay `Send` and clones of one machine share one sink.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::time::Cycles;

/// Coherence states as the tracer sees them — a mirror of `ksr-mem`'s
/// `SubpageState`, defined here so the net/mem/machine crates share one
/// event vocabulary without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceState {
    /// No copy and no place holder in this cell.
    Missing,
    /// Invalid place holder (allocated, no data).
    Invalid,
    /// Valid read-only copy.
    Shared,
    /// The sole writable copy.
    Exclusive,
    /// Held atomic by `get_sub_page`.
    Atomic,
}

impl TraceState {
    /// Short label for rendering.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Missing => "missing",
            Self::Invalid => "invalid",
            Self::Shared => "shared",
            Self::Exclusive => "exclusive",
            Self::Atomic => "atomic",
        }
    }
}

/// One cycle-stamped simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet won a slot on a ring (or admission to a bus/switch): the
    /// "ring slot acquire/wait" pair the hardware monitor aggregates into
    /// `ring_wait_cycles`.
    RingSlot {
        /// When the packet entered the fabric.
        at: Cycles,
        /// Cycles spent waiting for admission.
        wait: Cycles,
        /// Whether every slot of the sub-ring was in flight (saturation).
        blocked: bool,
    },
    /// A sub-page changed coherence state in one cell.
    Coherence {
        /// When the new state became visible.
        at: Cycles,
        /// The cell whose state changed.
        cell: usize,
        /// The sub-page index.
        subpage: u64,
        /// State before the transition.
        from: TraceState,
        /// State after the transition.
        to: TraceState,
    },
    /// A read response refilled an invalid place holder in passing.
    Snarf {
        /// When the refill landed.
        at: Cycles,
        /// The cell whose place holder was refilled.
        cell: usize,
        /// The sub-page index.
        subpage: u64,
    },
    /// A cell's copy was demoted to a place holder by a remote writer.
    Invalidation {
        /// When the invalidation took effect.
        at: Cycles,
        /// The cell that lost its copy.
        cell: usize,
        /// The sub-page index.
        subpage: u64,
    },
    /// A `get_sub_page` lost to an existing atomic holder.
    AtomicRejection {
        /// When the rejection returned to the requester.
        at: Cycles,
        /// The rejected cell.
        cell: usize,
        /// The contested sub-page.
        subpage: u64,
    },
    /// One processor completed one barrier episode.
    BarrierEpisode {
        /// When the processor left the barrier.
        at: Cycles,
        /// The processor.
        cell: usize,
        /// Episodes completed so far (1-based after the first).
        episode: u64,
    },
    /// A parked processor was woken by a visibility event on the sub-page
    /// it was blocked on — the moment a lock or flag handoff lands.
    LockHandoff {
        /// When the woken processor resumes.
        at: Cycles,
        /// The woken processor.
        cell: usize,
        /// The sub-page whose release/update woke it.
        subpage: u64,
    },
    /// A program-level shared-memory load committed.
    DataRead {
        /// When the load's value became architecturally visible.
        at: Cycles,
        /// The loading processor.
        cell: usize,
        /// The loaded address.
        addr: u64,
    },
    /// A program-level shared-memory store committed.
    DataWrite {
        /// When the store became architecturally visible.
        at: Cycles,
        /// The storing processor.
        cell: usize,
        /// The stored address.
        addr: u64,
    },
    /// A fast-forwarded spin loop observed a value satisfying its
    /// predicate — the acquire side of a flag/lock handoff.
    SpinRead {
        /// When the satisfying load committed.
        at: Cycles,
        /// The spinning processor.
        cell: usize,
        /// The spun-on address.
        addr: u64,
    },
    /// A cell took atomic ownership of a sub-page: a successful
    /// `get_sub_page`, or the acquire half of a native atomic RMW.
    SyncAcquire {
        /// When ownership was granted.
        at: Cycles,
        /// The acquiring processor.
        cell: usize,
        /// The acquired sub-page.
        subpage: u64,
        /// True for the acquire half of a native atomic RMW (one fabric
        /// transaction, no `Atomic` directory state); false for a real
        /// `get_sub_page`.
        rmw: bool,
    },
    /// A cell gave up atomic ownership of a sub-page:
    /// `release_sub_page`, or the release half of a native atomic RMW.
    /// A real release is stamped at the moment it was *issued* (while
    /// the holder still owns the sub-page), so checkers can validate the
    /// release-only-from-Atomic invariant.
    SyncRelease {
        /// When the release was issued.
        at: Cycles,
        /// The releasing processor.
        cell: usize,
        /// The released sub-page.
        subpage: u64,
        /// True for the release half of a native atomic RMW; false for a
        /// real `release_sub_page`.
        rmw: bool,
    },
}

impl TraceEvent {
    /// The virtual cycle at which the event committed.
    #[must_use]
    pub fn at(&self) -> Cycles {
        match *self {
            Self::RingSlot { at, .. }
            | Self::Coherence { at, .. }
            | Self::Snarf { at, .. }
            | Self::Invalidation { at, .. }
            | Self::AtomicRejection { at, .. }
            | Self::BarrierEpisode { at, .. }
            | Self::LockHandoff { at, .. }
            | Self::DataRead { at, .. }
            | Self::DataWrite { at, .. }
            | Self::SpinRead { at, .. }
            | Self::SyncAcquire { at, .. }
            | Self::SyncRelease { at, .. } => at,
        }
    }

    /// The event's kind tag.
    #[must_use]
    pub fn kind(&self) -> TraceKind {
        match self {
            Self::RingSlot { .. } => TraceKind::RingSlot,
            Self::Coherence { .. } => TraceKind::Coherence,
            Self::Snarf { .. } => TraceKind::Snarf,
            Self::Invalidation { .. } => TraceKind::Invalidation,
            Self::AtomicRejection { .. } => TraceKind::AtomicRejection,
            Self::BarrierEpisode { .. } => TraceKind::BarrierEpisode,
            Self::LockHandoff { .. } => TraceKind::LockHandoff,
            Self::DataRead { .. } => TraceKind::DataRead,
            Self::DataWrite { .. } => TraceKind::DataWrite,
            Self::SpinRead { .. } => TraceKind::SpinRead,
            Self::SyncAcquire { .. } => TraceKind::SyncAcquire,
            Self::SyncRelease { .. } => TraceKind::SyncRelease,
        }
    }
}

/// Kind tags for [`TraceEvent`], used by counting sinks and filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Ring/bus/switch slot acquisition.
    RingSlot,
    /// Coherence state transition.
    Coherence,
    /// Read-snarf refill.
    Snarf,
    /// Invalidation received.
    Invalidation,
    /// Atomic (`get_sub_page`) rejection.
    AtomicRejection,
    /// Barrier episode completion.
    BarrierEpisode,
    /// Lock/flag handoff wake-up.
    LockHandoff,
    /// Program-level load commit.
    DataRead,
    /// Program-level store commit.
    DataWrite,
    /// Spin-loop satisfying load.
    SpinRead,
    /// Atomic sub-page ownership acquired.
    SyncAcquire,
    /// Atomic sub-page ownership released.
    SyncRelease,
}

impl TraceKind {
    /// Every kind, in declaration order.
    pub const ALL: [Self; 12] = [
        Self::RingSlot,
        Self::Coherence,
        Self::Snarf,
        Self::Invalidation,
        Self::AtomicRejection,
        Self::BarrierEpisode,
        Self::LockHandoff,
        Self::DataRead,
        Self::DataWrite,
        Self::SpinRead,
        Self::SyncAcquire,
        Self::SyncRelease,
    ];

    /// Stable snake_case label (used in JSON results).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::RingSlot => "ring_slot",
            Self::Coherence => "coherence",
            Self::Snarf => "snarf",
            Self::Invalidation => "invalidation",
            Self::AtomicRejection => "atomic_rejection",
            Self::BarrierEpisode => "barrier_episode",
            Self::LockHandoff => "lock_handoff",
            Self::DataRead => "data_read",
            Self::DataWrite => "data_write",
            Self::SpinRead => "spin_read",
            Self::SyncAcquire => "sync_acquire",
            Self::SyncRelease => "sync_release",
        }
    }

    fn index(self) -> usize {
        match self {
            Self::RingSlot => 0,
            Self::Coherence => 1,
            Self::Snarf => 2,
            Self::Invalidation => 3,
            Self::AtomicRejection => 4,
            Self::BarrierEpisode => 5,
            Self::LockHandoff => 6,
            Self::DataRead => 7,
            Self::DataWrite => 8,
            Self::SpinRead => 9,
            Self::SyncAcquire => 10,
            Self::SyncRelease => 11,
        }
    }
}

/// Consumer of trace events. Implementations must be cheap and must not
/// have observable side effects on the simulation (the tracer guarantees
/// they never can: they only see immutable event values).
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, event: &TraceEvent);
}

/// A sink that discards everything (useful to measure tracing overhead
/// itself, or as an explicit "on but ignored" placeholder).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// A sink that counts events per [`TraceKind`] — the cheapest useful
/// observer, mirroring what a hardware event-counting monitor does.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    counts: [u64; TraceKind::ALL.len()],
}

impl CountingSink {
    /// Events of one kind seen so far.
    #[must_use]
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total events of all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, event: &TraceEvent) {
        self.counts[event.kind().index()] += 1;
    }
}

/// A bounded sink keeping the most recent `capacity` events (a flight
/// recorder: cheap to leave attached, inspect after the interesting
/// phase).
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// A buffer holding at most `capacity` events (`capacity >= 1`).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room (total seen = `len() + dropped()`).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*event);
    }
}

/// A cloneable handle the instrumented layers hold. Disabled by default
/// ([`Tracer::disabled`]); cloning shares the sink, so one sink observes
/// every layer of one machine.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<dyn TraceSink>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// The zero-cost disabled tracer.
    #[must_use]
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// Attach a sink, returning the tracer handle plus a shared reference
    /// for reading the sink back after (or during) a run.
    #[must_use]
    pub fn attach<S: TraceSink + 'static>(sink: S) -> (Self, Arc<Mutex<S>>) {
        let shared = Arc::new(Mutex::new(sink));
        (
            Self {
                sink: Some(shared.clone()),
            },
            shared,
        )
    }

    /// Convenience: a tracer counting events per kind.
    #[must_use]
    pub fn counting() -> (Self, Arc<Mutex<CountingSink>>) {
        Self::attach(CountingSink::default())
    }

    /// Convenience: a tracer keeping the last `capacity` events.
    #[must_use]
    pub fn ring_buffer(capacity: usize) -> (Self, Arc<Mutex<RingBufferSink>>) {
        Self::attach(RingBufferSink::new(capacity))
    }

    /// Whether a sink is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record the event produced by `make` — which is only invoked when a
    /// sink is attached, so the disabled path costs one branch.
    #[inline]
    pub fn emit_with(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            let event = make();
            sink.lock().expect("trace sink poisoned").record(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Cycles) -> TraceEvent {
        TraceEvent::Snarf {
            at,
            cell: 1,
            subpage: 7,
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit_with(|| panic!("must not be called"));
    }

    #[test]
    fn counting_sink_counts_per_kind() {
        let (t, counts) = Tracer::counting();
        assert!(t.is_enabled());
        t.emit_with(|| ev(10));
        t.emit_with(|| ev(20));
        t.emit_with(|| TraceEvent::RingSlot {
            at: 5,
            wait: 2,
            blocked: false,
        });
        let c = counts.lock().unwrap();
        assert_eq!(c.count(TraceKind::Snarf), 2);
        assert_eq!(c.count(TraceKind::RingSlot), 1);
        assert_eq!(c.count(TraceKind::Invalidation), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let (t, buf) = Tracer::ring_buffer(2);
        for i in 0..5 {
            t.emit_with(|| ev(i));
        }
        let b = buf.lock().unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
        let ats: Vec<Cycles> = b.events().map(TraceEvent::at).collect();
        assert_eq!(ats, vec![3, 4]);
    }

    #[test]
    fn clones_share_one_sink() {
        let (t, counts) = Tracer::counting();
        let t2 = t.clone();
        t.emit_with(|| ev(1));
        t2.emit_with(|| ev(2));
        assert_eq!(counts.lock().unwrap().total(), 2);
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::LockHandoff {
            at: 99,
            cell: 3,
            subpage: 12,
        };
        assert_eq!(e.at(), 99);
        assert_eq!(e.kind(), TraceKind::LockHandoff);
        assert_eq!(e.kind().label(), "lock_handoff");
        assert_eq!(TraceKind::ALL.len(), 12);
        assert_eq!(TraceState::Atomic.label(), "atomic");
    }

    /// One event of every kind, with distinguishable `at` stamps.
    fn one_of_each(base: Cycles) -> Vec<TraceEvent> {
        vec![
            TraceEvent::RingSlot {
                at: base,
                wait: 1,
                blocked: false,
            },
            TraceEvent::Coherence {
                at: base + 1,
                cell: 0,
                subpage: 4,
                from: TraceState::Missing,
                to: TraceState::Exclusive,
            },
            TraceEvent::Snarf {
                at: base + 2,
                cell: 1,
                subpage: 4,
            },
            TraceEvent::Invalidation {
                at: base + 3,
                cell: 1,
                subpage: 4,
            },
            TraceEvent::AtomicRejection {
                at: base + 4,
                cell: 2,
                subpage: 4,
            },
            TraceEvent::BarrierEpisode {
                at: base + 5,
                cell: 0,
                episode: 1,
            },
            TraceEvent::LockHandoff {
                at: base + 6,
                cell: 1,
                subpage: 4,
            },
            TraceEvent::DataRead {
                at: base + 7,
                cell: 0,
                addr: 512,
            },
            TraceEvent::DataWrite {
                at: base + 8,
                cell: 0,
                addr: 512,
            },
            TraceEvent::SpinRead {
                at: base + 9,
                cell: 1,
                addr: 640,
            },
            TraceEvent::SyncAcquire {
                at: base + 10,
                cell: 2,
                subpage: 5,
                rmw: false,
            },
            TraceEvent::SyncRelease {
                at: base + 11,
                cell: 2,
                subpage: 5,
                rmw: false,
            },
        ]
    }

    #[test]
    fn kind_index_matches_declaration_order() {
        for (i, kind) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i, "{} out of order", kind.label());
        }
        let events = one_of_each(0);
        assert_eq!(events.len(), TraceKind::ALL.len());
        for (event, kind) in events.iter().zip(TraceKind::ALL) {
            assert_eq!(event.kind(), kind);
        }
    }

    #[test]
    fn counting_sink_totals_cover_every_kind() {
        let (t, counts) = Tracer::counting();
        // Emit each kind a distinct number of times: kind i fires i+1
        // times, so any cross-kind misattribution shows up as a wrong
        // per-kind total.
        for (i, event) in one_of_each(100).into_iter().enumerate() {
            for _ in 0..=i {
                t.emit_with(|| event);
            }
        }
        let c = counts.lock().unwrap();
        for (i, kind) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(c.count(*kind), (i + 1) as u64, "kind {}", kind.label());
        }
        let n = TraceKind::ALL.len() as u64;
        assert_eq!(c.total(), n * (n + 1) / 2);
    }

    #[test]
    fn ring_buffer_wraparound_preserves_arrival_order() {
        let mut sink = RingBufferSink::new(4);
        // 11 events across several wraps of a capacity-4 buffer.
        for at in 0..11 {
            sink.record(&ev(at));
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 7);
        let ats: Vec<Cycles> = sink.events().map(TraceEvent::at).collect();
        assert_eq!(ats, vec![7, 8, 9, 10], "oldest-first order after wrap");
        // One more event pushes out exactly the oldest survivor.
        sink.record(&ev(11));
        let ats: Vec<Cycles> = sink.events().map(TraceEvent::at).collect();
        assert_eq!(ats, vec![8, 9, 10, 11]);
        assert_eq!(sink.dropped(), 8);
    }

    #[test]
    fn ring_buffer_capacity_floor_is_one() {
        let mut sink = RingBufferSink::new(0);
        sink.record(&ev(1));
        sink.record(&ev(2));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events().next().map(TraceEvent::at), Some(2));
    }
}

//! Deterministic pseudo-random number generation.
//!
//! The KSR-1's caches use a *random replacement policy* (§2 of the paper),
//! and the paper's measurement methodology leans on that fact (e.g. the
//! sub-cache flush trick in §3.1 re-reads a filler array "to improve the
//! chance of the sub-cache being filled"). The simulator reproduces random
//! replacement with this small xorshift generator so that a machine seed
//! fully determines every simulation — a requirement for reproducible
//! experiments and for resimulating a failure.

/// A 64-bit xorshift* PRNG (Marsaglia 2003, Vigna's `xorshift64*` variant).
///
/// Not cryptographic; chosen for determinism, tiny state, and speed in the
/// cache-replacement hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Derive an independent stream for a subcomponent (e.g. one cache out
    /// of many) from this seed and the component's index.
    #[must_use]
    pub fn derive(&self, stream: u64) -> Self {
        // SplitMix64 step over (state, stream) gives well-separated streams.
        let mut z = self
            .state
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift range reduction (Lemire); slight modulo bias is
        // irrelevant for replacement-way selection.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn derived_streams_differ_from_parent_and_each_other() {
        let parent = XorShift64::new(7);
        let mut s0 = parent.derive(0);
        let mut s1 = parent.derive(1);
        let mut p = parent.clone();
        assert_ne!(s0.next_u64(), s1.next_u64());
        assert_ne!(parent.derive(0).next_u64(), p.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(16) < 16);
            assert_eq!(r.next_below(1), 0);
        }
    }

    #[test]
    fn next_below_hits_all_residues() {
        let mut r = XorShift64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = XorShift64::new(11);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_f64_roughly_uniform() {
        let mut r = XorShift64::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_bool_extremes() {
        let mut r = XorShift64::new(17);
        assert!(!(0..100).any(|_| r.next_bool(0.0)));
        assert!((0..100).all(|_| r.next_bool(1.0)));
    }
}

//! A minimal hand-rolled JSON value, writer, and reader.
//!
//! The experiment harness writes machine-readable results
//! (`results/<id>.json`, `results/summary.json`) so downstream tooling
//! can ingest perf trajectories without scraping text tables, and the
//! sweep cache reads its own entries back ([`Json::parse`]). The
//! workspace builds offline with no external crates, so this module
//! provides the small subset of JSON we need: construction, escaping,
//! deterministic rendering (object keys keep insertion order, so a
//! fixed run produces byte-identical files), and a strict recursive-
//! descent parser whose job is round-tripping our own output — numbers
//! we rendered must re-render byte-identically after a parse.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer rendered exactly (cycle counts exceed f64's 2^53
    /// mantissa in long simulations).
    Int(i64),
    /// An unsigned integer rendered exactly.
    UInt(u64),
    /// A finite double; non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order for reproducible output.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Self::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Self::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Self::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    #[must_use]
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Self {
        Self::Arr(items.into_iter().collect())
    }

    /// Append a key to an object (panics on non-objects).
    pub fn push_field(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Self::Obj(pairs) => pairs.push((key.into(), value)),
            _ => panic!("push_field on a non-object Json value"),
        }
    }

    /// Parse a JSON document. Strict: exactly one value, nothing but
    /// whitespace after it, no extensions. Errors carry the byte offset.
    ///
    /// Number mapping preserves this module's rendering exactly:
    /// integers without `.`/`e` become [`Json::UInt`]/[`Json::Int`]
    /// (full 64-bit range, exact), everything else — including `-0`,
    /// which `{}`-formats differently as an integer — becomes
    /// [`Json::Num`]. Rust's shortest-round-trip float formatting then
    /// guarantees `parse(v.render()).render() == v.render()`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (any of `Int`/`UInt`/`Num`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Int(i) => Some(*i as f64),
            Self::UInt(u) => Some(*u as f64),
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned integer payload, if exactly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::UInt(u) => Some(*u),
            Self::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Boolean payload.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object pairs in document order, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Self::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Self::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Self::Str(s) => write_escaped(out, s),
            Self::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Self::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Escape and quote a string per RFC 8259: `"`, `\`, and all control
/// characters below 0x20 (the common ones with short escapes, the rest as
/// `\u00XX`).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Guard against stack exhaustion on pathological nesting; our own
/// artifacts are at most a handful of levels deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_lit("null", Json::Null),
            Some(b't') => self.expect_lit("true", Json::Bool(true)),
            Some(b'f') => self.expect_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free, control-free run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must pair with a following \uXXXX
                    // low surrogate.
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let _ = self.eat(b'-');
        // Integer part: one zero, or a nonzero digit run (RFC 8259).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        let mut fractional = false;
        if self.eat(b'.') {
            fractional = true;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if !fractional {
            // `-0` must stay a float: as Int(0) it would re-render "0",
            // losing the sign `{}`-formatting preserves for -0.0.
            if text.starts_with('-') && text != "-0" {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if !text.starts_with('-') {
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Json::UInt(u));
                }
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(false).render(), "false");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn exact_large_integers() {
        // 2^53 + 1 is not representable as f64; UInt must render exactly.
        let v = (1u64 << 53) + 1;
        assert_eq!(Json::from(v).render(), v.to_string());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn string_escaping() {
        let s = "quote\" back\\ nl\n cr\r tab\t bell\u{07} fe\u{0C} bs\u{08} unicode é";
        let r = Json::from(s).render();
        assert_eq!(
            r,
            "\"quote\\\" back\\\\ nl\\n cr\\r tab\\t bell\\u0007 fe\\f bs\\b unicode é\""
        );
    }

    #[test]
    fn nested_compact() {
        let v = Json::obj([
            ("id", Json::from("FIG4")),
            (
                "rows",
                Json::arr([Json::obj([("procs", Json::from(32usize))])]),
            ),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj(Vec::<(String, Json)>::new())),
        ]);
        assert_eq!(
            v.render(),
            r#"{"id":"FIG4","rows":[{"procs":32}],"empty_arr":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn nested_pretty_round_trips_structure() {
        let v = Json::obj([
            ("a", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("b", Json::obj([("c", Json::Null)])),
        ]);
        let pretty = v.render_pretty();
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": null\n  }\n}\n"
        );
    }

    #[test]
    fn push_field_extends_objects() {
        let mut v = Json::obj(Vec::<(String, Json)>::new());
        v.push_field("k", Json::from(1u64));
        assert_eq!(v.render(), r#"{"k":1}"#);
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_field_rejects_arrays() {
        Json::arr([]).push_field("k", Json::Null);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Num(2000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::from("hi"));
    }

    #[test]
    fn parse_nested_structures() {
        let v = Json::parse(r#"{"id":"FIG4","rows":[{"procs":32}],"empty":[],"o":{}}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("FIG4"));
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("procs").and_then(Json::as_u64), Some(32));
        assert_eq!(v.get("empty").and_then(Json::as_arr), Some(&[][..]));
        assert!(v.get("o").and_then(Json::as_obj).unwrap().is_empty());
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""quote\" back\\ nl\n tab\t sol\/ uA bmpé""#).unwrap();
        assert_eq!(v.as_str(), Some("quote\" back\\ nl\n tab\t sol/ uA bmpé"));
        // Surrogate pairs combine into one astral code point.
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\q""#).is_err(), "unknown escape");
    }

    #[test]
    fn parse_number_taxonomy() {
        // Integers keep exactness across the full 64-bit range.
        let big = u64::MAX.to_string();
        assert_eq!(Json::parse(&big).unwrap(), Json::UInt(u64::MAX));
        let small = i64::MIN.to_string();
        assert_eq!(Json::parse(&small).unwrap(), Json::Int(i64::MIN));
        // Out-of-range integers degrade to floats rather than erroring.
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Num(_)
        ));
        // -0 stays a float so the sign survives re-rendering.
        assert_eq!(Json::parse("-0").unwrap(), Json::Num(-0.0));
        assert_eq!(Json::parse("-0").unwrap().render(), "-0");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "  ",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            ".5",
            "+1",
            "nul",
            "tru",
            "\"open",
            "1e",
            "--1",
            "1 2",
            "[1]]",
            "{}{}",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
        assert!(
            Json::parse(&format!("{}1{}", "[".repeat(200), "]".repeat(200))).is_err(),
            "depth limit"
        );
    }

    #[test]
    fn parse_round_trips_our_own_rendering() {
        let v = Json::obj([
            ("metric", Json::from("ep_run_seconds")),
            (
                "params",
                Json::obj([("procs", Json::from(32usize)), ("series", Json::from("cg"))]),
            ),
            ("value", Json::from(0.017_325_5)),
            ("neg", Json::from(-3i64)),
            ("exact", Json::from((1u64 << 53) + 1)),
            ("flag", Json::from(true)),
            ("none", Json::Null),
            ("whole", Json::Num(2.0)),
            ("text", Json::from("nl\n é \"q\"")),
        ]);
        for rendered in [v.render(), v.render_pretty()] {
            let reparsed = Json::parse(&rendered).unwrap();
            // Byte-identical re-rendering is the cache's contract. (The
            // value itself may shift representation: Num(2.0) renders
            // "2" and reparses as UInt(2) — both render "2".)
            assert_eq!(reparsed.render(), v.render());
            assert_eq!(reparsed.render_pretty(), v.render_pretty());
        }
    }

    #[test]
    fn accessors_read_each_variant() {
        assert_eq!(Json::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Json::from(3u64).as_f64(), Some(3.0));
        assert_eq!(Json::from(-3i64).as_f64(), Some(-3.0));
        assert_eq!(Json::from(3u64).as_u64(), Some(3));
        assert_eq!(Json::Int(3).as_u64(), Some(3));
        assert_eq!(Json::Int(-3).as_u64(), None);
        assert_eq!(Json::from(true).as_bool(), Some(true));
        assert_eq!(Json::Null.as_f64(), None);
        assert_eq!(Json::Null.as_str(), None);
    }
}

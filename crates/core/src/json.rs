//! A minimal hand-rolled JSON value and writer.
//!
//! The experiment harness writes machine-readable results
//! (`results/<id>.json`, `results/summary.json`) so downstream tooling
//! can ingest perf trajectories without scraping text tables. The
//! workspace builds offline with no external crates, so this module
//! provides the small subset of JSON we need: construction, escaping,
//! and deterministic rendering (object keys keep insertion order, so a
//! fixed run produces byte-identical files).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer rendered exactly (cycle counts exceed f64's 2^53
    /// mantissa in long simulations).
    Int(i64),
    /// An unsigned integer rendered exactly.
    UInt(u64),
    /// A finite double; non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order for reproducible output.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Self::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Self::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Self::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Self::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Self::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    #[must_use]
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Self {
        Self::Arr(items.into_iter().collect())
    }

    /// Append a key to an object (panics on non-objects).
    pub fn push_field(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Self::Obj(pairs) => pairs.push((key.into(), value)),
            _ => panic!("push_field on a non-object Json value"),
        }
    }

    /// Compact rendering (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Self::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Self::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Self::Str(s) => write_escaped(out, s),
            Self::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Self::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Escape and quote a string per RFC 8259: `"`, `\`, and all control
/// characters below 0x20 (the common ones with short escapes, the rest as
/// `\u00XX`).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(false).render(), "false");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn exact_large_integers() {
        // 2^53 + 1 is not representable as f64; UInt must render exactly.
        let v = (1u64 << 53) + 1;
        assert_eq!(Json::from(v).render(), v.to_string());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn string_escaping() {
        let s = "quote\" back\\ nl\n cr\r tab\t bell\u{07} fe\u{0C} bs\u{08} unicode é";
        let r = Json::from(s).render();
        assert_eq!(
            r,
            "\"quote\\\" back\\\\ nl\\n cr\\r tab\\t bell\\u0007 fe\\f bs\\b unicode é\""
        );
    }

    #[test]
    fn nested_compact() {
        let v = Json::obj([
            ("id", Json::from("FIG4")),
            (
                "rows",
                Json::arr([Json::obj([("procs", Json::from(32usize))])]),
            ),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj(Vec::<(String, Json)>::new())),
        ]);
        assert_eq!(
            v.render(),
            r#"{"id":"FIG4","rows":[{"procs":32}],"empty_arr":[],"empty_obj":{}}"#
        );
    }

    #[test]
    fn nested_pretty_round_trips_structure() {
        let v = Json::obj([
            ("a", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("b", Json::obj([("c", Json::Null)])),
        ]);
        let pretty = v.render_pretty();
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": null\n  }\n}\n"
        );
    }

    #[test]
    fn push_field_extends_objects() {
        let mut v = Json::obj(Vec::<(String, Json)>::new());
        v.push_field("k", Json::from(1u64));
        assert_eq!(v.render(), r#"{"k":1}"#);
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_field_rejects_arrays() {
        Json::arr([]).push_field("k", Json::Null);
    }
}

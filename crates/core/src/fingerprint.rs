//! Deterministic 128-bit content fingerprints for job descriptors.
//!
//! The sweep cache keys each pure job by a fingerprint of its canonical
//! descriptor (experiment id, label, config, seed, mode flags — see
//! `ksr_bench::exec::JobDesc`). The requirements differ from the
//! hot-path tables [`crate::hash::FxHasher`] serves:
//!
//! * **Stability is a file-format contract.** A cache directory written
//!   today must hit tomorrow, on another host, at either word size. The
//!   known-value tests below pin the exact algorithm; changing it
//!   silently invalidates every existing cache and must be deliberate.
//! * **128 bits, not 64.** Cache entries are trusted by fingerprint
//!   alone, so accidental collisions must be out of reach even across
//!   millions of descriptors. Two independently-salted [`FxHasher`]
//!   lanes give 128 bits without importing a cryptographic hash into a
//!   zero-dependency workspace. (The input is our own descriptor text,
//!   never untrusted data — adversarial collisions are out of scope.)
//!
//! [`FxHasher`]: crate::hash::FxHasher

use std::hash::Hasher as _;

use crate::hash::FxHasher;

/// Salt mixed into the second lane before any input, so the two lanes
/// are independent functions of the same bytes ("KSRFPRN2" in ASCII).
const LANE2_SALT: u64 = 0x4b53_5246_5052_4e32;

/// A 128-bit content fingerprint: two independently-salted FxHash lanes
/// over the same byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint([u64; 2]);

impl Fingerprint {
    /// The 32-character lowercase hex form — used as the cache file
    /// stem, so it must stay filesystem-safe and fixed-width.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// Parse the [`Fingerprint::hex`] form back; `None` for anything
    /// that is not exactly 32 hex digits.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Self([hi, lo]))
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Incremental fingerprint builder, for callers hashing composite input
/// without materializing one buffer.
#[derive(Debug, Clone, Default)]
pub struct FingerprintBuilder {
    lane1: FxHasher,
    lane2: FxHasher,
    salted: bool,
}

impl FingerprintBuilder {
    /// A fresh builder (equivalent to hashing an empty prefix).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `bytes` into both lanes.
    pub fn update(&mut self, bytes: &[u8]) {
        if !self.salted {
            self.lane2.write_u64(LANE2_SALT);
            self.salted = true;
        }
        self.lane1.write(bytes);
        self.lane2.write(bytes);
    }

    /// Finish: the fingerprint of everything folded in so far.
    #[must_use]
    pub fn finish(mut self) -> Fingerprint {
        if !self.salted {
            self.lane2.write_u64(LANE2_SALT);
        }
        Fingerprint([self.lane1.finish(), self.lane2.finish()])
    }
}

/// Fingerprint a byte string in one call.
#[must_use]
pub fn fingerprint(bytes: &[u8]) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    b.update(bytes);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_pin_the_algorithm() {
        // Golden values: the fingerprint is an on-disk cache-key format,
        // so any change here invalidates every existing cache directory
        // and must be deliberate. These exact strings must come out on
        // x86-64 and aarch64 alike.
        assert_eq!(fingerprint(b"").hex(), "0000000000000000f9819c449563ec8c");
        assert_eq!(
            fingerprint(b"KSR-1").hex(),
            "aaf1b1bad35610b4f1f6a0e8c44be702"
        );
        assert_eq!(
            fingerprint(br#"{"experiment":"FIG4","seed":1000}"#).hex(),
            "93645088f89c3508982ad4135245ecad"
        );
    }

    #[test]
    fn deterministic_across_calls() {
        let a = fingerprint(b"subpage");
        let b = fingerprint(b"subpage");
        assert_eq!(a, b);
        assert_eq!(a.hex(), b.hex());
    }

    #[test]
    fn small_input_changes_move_both_lanes() {
        let a = fingerprint(b"seed=100");
        let b = fingerprint(b"seed=101");
        assert_ne!(a, b);
        // Both 64-bit halves must react — a dead lane would quietly
        // halve the collision margin.
        assert_ne!(a.0[0], b.0[0]);
        assert_ne!(a.0[1], b.0[1]);
    }

    #[test]
    fn lanes_are_independent() {
        // If the salt were ignored, both lanes would be the same
        // function and the "128-bit" fingerprint would carry 64 bits.
        let fp = fingerprint(b"lane independence");
        assert_ne!(fp.0[0], fp.0[1]);
    }

    #[test]
    fn builder_matches_one_shot_regardless_of_chunking() {
        let whole = fingerprint(b"abcdefghij");
        let mut split = FingerprintBuilder::new();
        split.update(b"abcde");
        split.update(b"fghij");
        // FxHasher's length tag makes chunking observable; the cache
        // always hashes one canonical buffer, so the builder only has to
        // be self-consistent, not chunking-invariant. Pin the behaviour
        // so nobody assumes otherwise.
        assert_ne!(split.finish(), whole);
        let mut one = FingerprintBuilder::new();
        one.update(b"abcdefghij");
        assert_eq!(one.finish(), whole);
    }

    #[test]
    fn hex_round_trips() {
        let fp = fingerprint(b"round trip");
        assert_eq!(Fingerprint::from_hex(&fp.hex()), Some(fp));
        assert_eq!(fp.hex().len(), 32);
        assert!(fp.hex().bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(&fp.hex()[..31]), None);
        assert_eq!(
            Fingerprint::from_hex(&format!("{}0", fp.hex())),
            None,
            "over-length strings must not parse"
        );
    }

    #[test]
    fn display_is_hex() {
        let fp = fingerprint(b"display");
        assert_eq!(format!("{fp}"), fp.hex());
    }
}

//! The software queue-based read/write ticket lock of §3.2.1.
//!
//! "We have implemented a simple read-write lock using the KSR-1 exclusive
//! lock primitive. Our algorithm is a modified version of Anderson's
//! ticket lock. A shared data structure can be acquired in read-shared
//! mode or in a write-exclusive mode. Lock requests are granted tickets
//! atomically using the get_sub_page primitive. Consecutive read lock
//! requests are combined by allowing them to get the same ticket.
//! Concurrent readers can thus share the lock and writers are stalled
//! until all readers (concurrently holding a read lock) have released the
//! lock. Fairness is assured among readers and writers by maintaining a
//! strict FCFS queue."
//!
//! ## Protocol
//!
//! Queue head state sits on one sub-page guarded by `get_sub_page`
//! (`next`, `serving`, `last_is_read`, `last_ticket`); per-ticket reader
//! bookkeeping lives in a 64-slot table (`readers[t]`, `released[t]`,
//! indexed by `t mod 64`) that is only ever touched while holding the
//! queue sub-page. Sixty-four slots suffice because every processor holds
//! at most one outstanding ticket, and the KSR-2 tops out at 64 cells.
//!
//! * a **reader** combines onto the most recent ticket when that ticket
//!   is a read ticket not yet retired (`last_ticket >= serving`);
//!   otherwise it opens a fresh read ticket;
//! * a **writer** always takes a fresh ticket and closes the open read
//!   ticket to further combining; if the queue head had already drained
//!   (`readers == released`) it advances `serving` over it immediately;
//! * the *last* releasing reader of the serving ticket advances `serving`
//!   when someone is queued behind it; with no one waiting the ticket
//!   stays open so later readers keep entering at zero cost;
//! * tickets are sequential, so the queue is strictly FCFS.

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

const NEXT: u64 = 0;
const SERVING: u64 = 8;
const LAST_IS_READ: u64 = 16;
const LAST_TICKET: u64 = 24;

/// Per-ticket bookkeeping slots (≥ max processors, power of two).
const SLOTS: u64 = 64;

/// Acquisition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) access.
    Read,
    /// Exclusive (write) access.
    Write,
}

/// Proof of acquisition, needed to release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    number: u64,
    mode: LockMode,
}

impl Ticket {
    /// Reconstruct a ticket from its queue position — for the cohort
    /// reader-writer lock (`crate::cohort`), whose local handoff passes
    /// an open global write ticket between same-leaf writers.
    pub(crate) fn internal(number: u64, mode: LockMode) -> Self {
        Self { number, mode }
    }

    /// The ticket's queue position.
    #[must_use]
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The mode it was granted in.
    #[must_use]
    pub fn mode(&self) -> LockMode {
        self.mode
    }
}

/// The software read/write queue lock.
#[derive(Debug, Clone, Copy)]
pub struct SwRwLock {
    q: u64,
    rtab: u64,
}

impl SwRwLock {
    /// Allocate the lock's sub-pages.
    pub fn alloc(m: &mut Machine) -> Result<Self> {
        let q = m.alloc_subpage(32)?;
        let rtab = m.alloc_subpage(SLOTS * 16)?;
        Ok(Self { q, rtab })
    }

    fn readers_addr(&self, t: u64) -> u64 {
        self.rtab + (t % SLOTS) * 16
    }

    fn released_addr(&self, t: u64) -> u64 {
        self.rtab + (t % SLOTS) * 16 + 8
    }

    /// Acquire in the given mode; blocks (FCFS) until granted.
    pub async fn acquire(&self, cpu: &mut Cpu, mode: LockMode) -> Ticket {
        match mode {
            LockMode::Read => self.acquire_read(cpu).await,
            LockMode::Write => self.acquire_write(cpu).await,
        }
    }

    async fn acquire_read(&self, cpu: &mut Cpu) -> Ticket {
        cpu.acquire_sub_page(self.q).await;
        let serving = cpu.read_u64(self.q + SERVING).await;
        let last_is_read = cpu.read_u64(self.q + LAST_IS_READ).await == 1;
        let last_ticket = cpu.read_u64(self.q + LAST_TICKET).await;
        let ticket = if last_is_read && last_ticket >= serving {
            // Combine onto the open read ticket.
            let r = cpu.read_u64(self.readers_addr(last_ticket)).await;
            cpu.write_u64(self.readers_addr(last_ticket), r + 1).await;
            last_ticket
        } else {
            let t = cpu.read_u64(self.q + NEXT).await;
            cpu.write_u64(self.q + NEXT, t + 1).await;
            debug_assert!(
                t - serving < SLOTS,
                "more in-flight tickets than table slots"
            );
            cpu.write_u64(self.q + LAST_IS_READ, 1).await;
            cpu.write_u64(self.q + LAST_TICKET, t).await;
            cpu.write_u64(self.readers_addr(t), 1).await;
            cpu.write_u64(self.released_addr(t), 0).await;
            t
        };
        cpu.release_sub_page(self.q).await;
        if serving != ticket {
            cpu.spin_until(self.q + SERVING, move |v| v == ticket).await;
        }
        Ticket {
            number: ticket,
            mode: LockMode::Read,
        }
    }

    async fn acquire_write(&self, cpu: &mut Cpu) -> Ticket {
        cpu.acquire_sub_page(self.q).await;
        let ticket = cpu.read_u64(self.q + NEXT).await;
        cpu.write_u64(self.q + NEXT, ticket + 1).await;
        let serving = cpu.read_u64(self.q + SERVING).await;
        debug_assert!(
            ticket - serving < SLOTS,
            "more in-flight tickets than table slots"
        );
        // If the head of the queue is a fully-drained read ticket, nobody
        // is left to advance it: step over it now.
        if cpu.read_u64(self.q + LAST_IS_READ).await == 1
            && serving == cpu.read_u64(self.q + LAST_TICKET).await
            && serving + 1 == ticket
        {
            let r = cpu.read_u64(self.readers_addr(serving)).await;
            let rel = cpu.read_u64(self.released_addr(serving)).await;
            if r == rel {
                cpu.write_u64(self.q + SERVING, ticket).await;
            }
        }
        cpu.write_u64(self.q + LAST_IS_READ, 0).await;
        cpu.release_sub_page(self.q).await;
        let at_head = cpu.read_u64(self.q + SERVING).await == ticket;
        if !at_head {
            cpu.spin_until(self.q + SERVING, move |v| v == ticket).await;
        }
        Ticket {
            number: ticket,
            mode: LockMode::Write,
        }
    }

    /// Release a previously acquired ticket.
    pub async fn release(&self, cpu: &mut Cpu, ticket: Ticket) {
        cpu.acquire_sub_page(self.q).await;
        match ticket.mode {
            LockMode::Write => {
                cpu.write_u64(self.q + SERVING, ticket.number + 1).await;
            }
            LockMode::Read => {
                let t = ticket.number;
                let rel = cpu.read_u64(self.released_addr(t)).await + 1;
                cpu.write_u64(self.released_addr(t), rel).await;
                let r = cpu.read_u64(self.readers_addr(t)).await;
                let next = cpu.read_u64(self.q + NEXT).await;
                // Advance only when the ticket is fully drained and
                // someone is queued behind it; otherwise leave it open so
                // later readers keep combining at zero cost.
                if rel == r && next > t + 1 {
                    cpu.write_u64(self.q + SERVING, t + 1).await;
                }
            }
        }
        cpu.release_sub_page(self.q).await;
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::program;

    use super::*;

    #[test]
    fn writers_exclude_each_other() {
        let mut m = Machine::ksr1(21).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        let shared = m.alloc_subpage(16).unwrap();
        m.run(
            (0..8)
                .map(|_| {
                    program(move |mut cpu| async move {
                        for _ in 0..8 {
                            let t = lock.acquire(&mut cpu, LockMode::Write).await;
                            let a = cpu.read_u64(shared).await;
                            cpu.compute(29);
                            cpu.write_u64(shared, a + 1).await;
                            let b = cpu.read_u64(shared + 8).await;
                            assert_eq!(a, b, "mutual exclusion violated");
                            cpu.write_u64(shared + 8, b + 1).await;
                            lock.release(&mut cpu, t).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(shared).unwrap(), 64);
        assert_eq!(m.peek_u64(shared + 8).unwrap(), 64);
    }

    #[test]
    fn concurrent_readers_overlap() {
        // With pure readers, total time must be far below the sum of hold
        // times (readers share) — the whole point of the §3.2.1 result.
        let mut m = Machine::ksr1(22).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        let hold = 20_000u64;
        let readers = 8;
        let r = m
            .run(
                (0..readers)
                    .map(|_| {
                        program(move |mut cpu| async move {
                            let t = lock.acquire(&mut cpu, LockMode::Read).await;
                            cpu.compute(hold);
                            lock.release(&mut cpu, t).await;
                        })
                    })
                    .collect(),
            )
            .expect("run");
        assert!(
            r.duration_cycles() < hold * readers / 2,
            "readers must overlap: {} vs serialized {}",
            r.duration_cycles(),
            hold * readers
        );
    }

    #[test]
    fn writer_waits_for_all_readers() {
        let mut m = Machine::ksr1(23).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        let data = m.alloc_subpage(8).unwrap();
        m.poke_u64(data, 1).unwrap();
        let r = m
            .run(vec![
                program(move |mut cpu| async move {
                    let t = lock.acquire(&mut cpu, LockMode::Read).await;
                    let v = cpu.read_u64(data).await;
                    assert_eq!(v, 1);
                    cpu.compute(30_000);
                    let v = cpu.read_u64(data).await;
                    assert_eq!(v, 1, "writer must still be excluded");
                    lock.release(&mut cpu, t).await;
                }),
                program(move |mut cpu| async move {
                    let t = lock.acquire(&mut cpu, LockMode::Read).await;
                    cpu.compute(10_000);
                    lock.release(&mut cpu, t).await;
                }),
                program(move |mut cpu| async move {
                    cpu.compute(2_000); // arrive after the readers
                    let t = lock.acquire(&mut cpu, LockMode::Write).await;
                    cpu.write_u64(data, 2).await;
                    lock.release(&mut cpu, t).await;
                }),
            ])
            .expect("run");
        assert_eq!(m.peek_u64(data).unwrap(), 2);
        assert!(
            r.proc_end[2] > 30_000,
            "writer finished only after the long reader"
        );
    }

    #[test]
    fn fcfs_reader_after_writer_waits() {
        let mut m = Machine::ksr1(24).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        let log = m.alloc_subpage(64).unwrap();
        let log_idx = m.alloc_subpage(8).unwrap();
        // Proc 0: long reader. Proc 1: writer queued behind it. Proc 2:
        // reader arriving after the writer — FCFS forbids queue-jumping.
        m.run(vec![
            program(move |mut cpu| async move {
                let t = lock.acquire(&mut cpu, LockMode::Read).await;
                cpu.compute(20_000);
                lock.release(&mut cpu, t).await;
            }),
            program(move |mut cpu| async move {
                cpu.compute(3_000);
                let t = lock.acquire(&mut cpu, LockMode::Write).await;
                let i = cpu.read_u64(log_idx).await;
                cpu.write_u64(log + i * 8, 100).await;
                cpu.write_u64(log_idx, i + 1).await;
                lock.release(&mut cpu, t).await;
            }),
            program(move |mut cpu| async move {
                cpu.compute(6_000);
                let t = lock.acquire(&mut cpu, LockMode::Read).await;
                let i = cpu.read_u64(log_idx).await;
                cpu.write_u64(log + i * 8, 200).await;
                cpu.write_u64(log_idx, i + 1).await;
                lock.release(&mut cpu, t).await;
            }),
        ])
        .expect("run");
        assert_eq!(
            m.peek_u64(log).unwrap(),
            100,
            "writer entered before the later reader"
        );
        assert_eq!(m.peek_u64(log + 8).unwrap(), 200);
    }

    #[test]
    fn writer_after_drained_readers_advances_itself() {
        let mut m = Machine::ksr1(26).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        let data = m.alloc_subpage(8).unwrap();
        m.run(vec![
            program(move |mut cpu| async move {
                let t = lock.acquire(&mut cpu, LockMode::Read).await;
                cpu.compute(100);
                lock.release(&mut cpu, t).await;
            }),
            program(move |mut cpu| async move {
                cpu.compute(50_000); // the reader is long gone
                let t = lock.acquire(&mut cpu, LockMode::Write).await;
                cpu.write_u64(data, 1).await;
                lock.release(&mut cpu, t).await;
            }),
        ])
        .expect("run");
        assert_eq!(
            m.peek_u64(data).unwrap(),
            1,
            "writer must not deadlock behind a drained ticket"
        );
    }

    #[test]
    fn late_reader_combines_with_in_service_ticket() {
        // A reader arriving while a read ticket is being served must enter
        // immediately (combining), not queue.
        let mut m = Machine::ksr1(27).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        let r = m
            .run(vec![
                program(move |mut cpu| async move {
                    let t = lock.acquire(&mut cpu, LockMode::Read).await;
                    cpu.compute(40_000);
                    lock.release(&mut cpu, t).await;
                }),
                program(move |mut cpu| async move {
                    cpu.compute(10_000); // proc 0 is mid-hold
                    let t = lock.acquire(&mut cpu, LockMode::Read).await;
                    cpu.compute(100);
                    lock.release(&mut cpu, t).await;
                }),
            ])
            .expect("run");
        assert!(
            r.proc_end[1] < 20_000,
            "combining reader must not wait for the holder: {}",
            r.proc_end[1]
        );
    }

    #[test]
    fn interleaved_modes_stress() {
        let mut m = Machine::ksr1(25).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        let counter = m.alloc_subpage(8).unwrap();
        let procs = 10;
        let iters = 6;
        m.run(
            (0..procs)
                .map(|p| {
                    program(move |mut cpu| async move {
                        for i in 0..iters {
                            if (p + i) % 3 == 0 {
                                let t = lock.acquire(&mut cpu, LockMode::Write).await;
                                let v = cpu.read_u64(counter).await;
                                cpu.compute(13);
                                cpu.write_u64(counter, v + 1).await;
                                lock.release(&mut cpu, t).await;
                            } else {
                                let t = lock.acquire(&mut cpu, LockMode::Read).await;
                                let _ = cpu.read_u64(counter).await;
                                cpu.compute(13);
                                lock.release(&mut cpu, t).await;
                            }
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        let expected: u64 = (0..procs)
            .map(|p| (0..iters).filter(|i| (p + i) % 3 == 0).count() as u64)
            .sum();
        assert_eq!(m.peek_u64(counter).unwrap(), expected, "no write was lost");
    }

    #[test]
    fn ticket_accessors() {
        let mut m = Machine::ksr1(1).unwrap();
        let lock = SwRwLock::alloc(&mut m).unwrap();
        m.run(vec![program(move |mut cpu| async move {
            let t = lock.acquire(&mut cpu, LockMode::Write).await;
            assert_eq!(t.number(), 0);
            assert_eq!(t.mode(), LockMode::Write);
            lock.release(&mut cpu, t).await;
            let t = lock.acquire(&mut cpu, LockMode::Read).await;
            assert_eq!(t.number(), 1);
            assert_eq!(t.mode(), LockMode::Read);
            lock.release(&mut cpu, t).await;
        })])
        .expect("run");
    }
}

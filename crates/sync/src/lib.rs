//! # ksr-sync
//!
//! Shared-memory synchronization on the simulated KSR-1, reproducing the
//! §3.2 experiments of *"Scalability Study of the KSR-1"*:
//!
//! * [`atomic`] — fetch-and-Φ built from `get_sub_page`, exactly as the
//!   paper's barrier implementations assume;
//! * [`hwlock`] — the naive hardware exclusive lock (`get_sub_page` /
//!   `release_sub_page`), which serializes all requests;
//! * [`rwlock`] — the paper's software queue-based read/write ticket lock
//!   (modified Anderson ticket lock) with read combining and strict FCFS;
//! * [`cohort`] — topology-aware hierarchical (cohort) locks: per-leaf
//!   FCFS queues under a global FCFS queue with a bounded local-handoff
//!   budget, plus a reader-writer variant layered on the ticket lock;
//! * [`barrier`] — the nine barrier algorithms of Figures 4 and 5:
//!   counter, dynamic tree, dissemination, tournament, MCS, the three
//!   global-wakeup-flag "(M)" variants, and the "System" library barrier;
//! * [`mutants`] — seeded concurrency-bug workloads (a lock-order
//!   inversion, a racy flag handoff, a missed-invalidation probe) whose
//!   default deterministic schedule is clean: validation targets for the
//!   predictive passes and the schedule explorer in `ksr-verify`.

#![warn(missing_docs)]

pub mod atomic;
pub mod barrier;
pub mod cohort;
pub mod hwlock;
pub mod mutants;
pub mod rwlock;

pub use barrier::{
    AnyBarrier, BarrierAlg, BarrierKind, CounterBarrier, DisseminationBarrier, Episode, McsBarrier,
    SystemBarrier, TournamentBarrier, TreeBarrier,
};
pub use cohort::{CohortLock, CohortRwLock, CohortTicket, DEFAULT_HANDOFF_BUDGET};
pub use hwlock::{BackoffConfig, HwLock};
pub use mutants::{LockOrderMutant, MissedInvalidationProbe, RacyHandoff};
pub use rwlock::{LockMode, SwRwLock, Ticket};

//! Atomic read-modify-write helpers built on `get_sub_page`.
//!
//! The KSR-1 has no fetch-and-Φ instruction; §3.2.2 notes that the
//! counter and dynamic-tree barriers "assume an atomic fetch_and
//! instruction, which is implemented using the get_sub_page primitive".
//! These helpers are that implementation: acquire the sub-page atomically,
//! read-modify-write, release.

use ksr_machine::Cpu;

/// Atomically add `delta` to the word at `addr`; returns the old value.
pub async fn fetch_add(cpu: &mut Cpu, addr: u64, delta: u64) -> u64 {
    cpu.acquire_sub_page(addr).await;
    let old = cpu.read_u64(addr).await;
    cpu.write_u64(addr, old.wrapping_add(delta)).await;
    cpu.release_sub_page(addr).await;
    old
}

/// Atomically subtract `delta`; returns the old value.
pub async fn fetch_sub(cpu: &mut Cpu, addr: u64, delta: u64) -> u64 {
    fetch_add(cpu, addr, delta.wrapping_neg()).await
}

/// Atomically apply `f` to the word at `addr`; returns `(old, new)`.
pub async fn fetch_update(cpu: &mut Cpu, addr: u64, f: impl FnOnce(u64) -> u64) -> (u64, u64) {
    cpu.acquire_sub_page(addr).await;
    let old = cpu.read_u64(addr).await;
    let new = f(old);
    cpu.write_u64(addr, new).await;
    cpu.release_sub_page(addr).await;
    (old, new)
}

#[cfg(test)]
mod tests {
    use ksr_machine::{program, Machine};

    use super::*;

    #[test]
    fn fetch_add_returns_old_and_stores_new() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        m.poke_u64(a, 10).unwrap();
        m.run(vec![program(move |mut cpu| async move {
            assert_eq!(fetch_add(&mut cpu, a, 5).await, 10);
            assert_eq!(cpu.read_u64(a).await, 15);
        })])
        .expect("run");
    }

    #[test]
    fn fetch_sub_wraps_correctly() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        m.poke_u64(a, 3).unwrap();
        m.run(vec![program(move |mut cpu| async move {
            assert_eq!(fetch_sub(&mut cpu, a, 1).await, 3);
            assert_eq!(cpu.read_u64(a).await, 2);
        })])
        .expect("run");
    }

    #[test]
    fn concurrent_fetch_adds_do_not_lose_updates() {
        let mut m = Machine::ksr1(2).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let procs = 12;
        let iters = 20;
        m.run(
            (0..procs)
                .map(|_| {
                    program(move |mut cpu| async move {
                        for _ in 0..iters {
                            fetch_add(&mut cpu, a, 1).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(a).unwrap(), (procs * iters) as u64);
    }

    #[test]
    fn fetch_update_applies_arbitrary_function() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        m.poke_u64(a, 7).unwrap();
        m.run(vec![program(move |mut cpu| async move {
            let (old, new) = fetch_update(&mut cpu, a, |v| v * 3).await;
            assert_eq!((old, new), (7, 21));
        })])
        .expect("run");
        assert_eq!(m.peek_u64(a).unwrap(), 21);
    }
}

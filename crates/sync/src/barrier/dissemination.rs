//! Algorithm 3: the dissemination barrier (Hensgen, Finkel & Manber).
//!
//! "A dissemination barrier, which involves exchanging messages for
//! ⌈log₂P⌉ rounds as processors arrive at the barrier. In each round a
//! total of P messages are exchanged... after the log₂P rounds are over
//! all the processors are aware of barrier completion." (§3.2.2)
//!
//! On the KSR-1 it "does not perform as well... because it involves
//! O(P log P) distinct communication steps. Yet, owing to the pipelined
//! ring this algorithm does better than the counter algorithm." On the
//! cache-less Butterfly it is the *best* algorithm — it needs no
//! broadcast, only point-to-point flags (§3.2.3).

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

use super::{BarrierAlg, Episode, FlagArray};

/// Dissemination barrier: `rounds x n` flags, one sub-page each.
#[derive(Debug, Clone, Copy)]
pub struct DisseminationBarrier {
    flags: FlagArray,
    n: usize,
    rounds: usize,
}

impl DisseminationBarrier {
    /// Allocate for `n` processors.
    pub fn alloc(m: &mut Machine, n: usize) -> Result<Self> {
        let rounds = if n <= 1 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        let flags = FlagArray::alloc(m, rounds.max(1) * n)?;
        Ok(Self { flags, n, rounds })
    }

    fn flag(&self, round: usize, proc: usize) -> u64 {
        self.flags.addr(round * self.n + proc)
    }
}

impl BarrierAlg for DisseminationBarrier {
    fn nprocs(&self) -> usize {
        self.n
    }

    async fn sync(&self, cpu: &mut Cpu, ep: &mut Episode) {
        let my_ep = ep.ep;
        ep.ep += 1;
        let p = cpu.id();
        for k in 0..self.rounds {
            let partner = (p + (1 << k)) % self.n;
            let out = self.flag(k, partner);
            // Plain invalidating write: the paper applied poststore to the
            // *global wakeup flag* methods; pushing every one of the
            // O(P log P) point-to-point flags would be the "indiscriminate
            // use of this primitive" its §4 warns against.
            cpu.write_u64(out, my_ep + 1).await;
            // A partner may already be an episode ahead of us in later
            // rounds, hence >= rather than ==.
            cpu.spin_until(self.flag(k, p), move |v| v > my_ep).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::{program, Machine};

    use super::*;

    #[test]
    fn rounds_are_ceil_log2() {
        let mut m = Machine::ksr1(1).unwrap();
        assert_eq!(DisseminationBarrier::alloc(&mut m, 1).unwrap().rounds, 0);
        assert_eq!(DisseminationBarrier::alloc(&mut m, 2).unwrap().rounds, 1);
        assert_eq!(DisseminationBarrier::alloc(&mut m, 5).unwrap().rounds, 3);
        assert_eq!(DisseminationBarrier::alloc(&mut m, 32).unwrap().rounds, 5);
    }

    #[test]
    fn straggler_holds_everyone() {
        let mut m = Machine::ksr1(4).unwrap();
        let b = DisseminationBarrier::alloc(&mut m, 5).unwrap();
        let r = m
            .run(
                (0..5)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut ep = Episode::default();
                            cpu.compute(if p == 2 { 40_000 } else { 50 });
                            b.wait(&mut cpu, &mut ep).await;
                        })
                    })
                    .collect(),
            )
            .expect("run");
        for p in 0..5 {
            assert!(r.proc_end[p] >= 40_000, "proc {p} escaped early");
        }
    }

    #[test]
    fn episodes_may_skew_by_design() {
        // Dissemination tolerates a processor racing ahead into the next
        // episode's early rounds; this must not wedge or corrupt.
        let mut m = Machine::ksr1(6).unwrap();
        let b = DisseminationBarrier::alloc(&mut m, 4).unwrap();
        m.run(
            (0..4)
                .map(|p| {
                    program(move |mut cpu| async move {
                        let mut ep = Episode::default();
                        for e in 0..6 {
                            cpu.compute(((p * 211 + e * 97) % 700) as u64);
                            b.wait(&mut cpu, &mut ep).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
    }
}

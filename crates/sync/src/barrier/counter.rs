//! Algorithm 1: the naive central-counter barrier.
//!
//! "A global counter is decremented by each processor upon arrival. The
//! counter becoming zero is the indication of barrier completion, and
//! this is observed independently by each processor by testing the
//! counter." (§3.2.2)
//!
//! Every arrival costs at least two ring accesses on the same sub-page —
//! one to fetch the counter atomically and one implicit in re-arming the
//! spinners — and since they all target the *same* location they
//! serialize on the ring: the pipelining that saves the tree-style
//! barriers is of no help here. This is the slowest curve in Figure 4.

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

use super::{BarrierAlg, Episode};

/// Central-counter barrier. The counter and the generation word share a
/// sub-page — the hot spot is the algorithm.
#[derive(Debug, Clone, Copy)]
pub struct CounterBarrier {
    /// Sub-page: word 0 = remaining count, word 1 = completed generation.
    base: u64,
    n: usize,
}

impl CounterBarrier {
    /// Allocate and initialise for `n` processors.
    pub fn alloc(m: &mut Machine, n: usize) -> Result<Self> {
        let base = m.alloc_subpage(16)?;
        m.poke_u64(base, n as u64)?;
        m.poke_u64(base + 8, 0)?;
        Ok(Self { base, n })
    }
}

impl BarrierAlg for CounterBarrier {
    fn nprocs(&self) -> usize {
        self.n
    }

    async fn sync(&self, cpu: &mut Cpu, ep: &mut Episode) {
        let my_gen = ep.ep;
        ep.ep += 1;
        // Atomic decrement: native fetch-and-add where the machine has
        // one (Symmetry/Butterfly), otherwise the KSR get_sub_page
        // synthesis. No new arrival can race the re-arm below, because
        // nobody re-enters until the generation flag is published.
        let old = cpu.fetch_add(self.base, u64::MAX).await;
        if old == 1 {
            // Last arrival: re-arm and publish completion.
            cpu.write_u64(self.base, self.n as u64).await;
            cpu.write_u64(self.base + 8, my_gen + 1).await;
            cpu.poststore(self.base + 8).await;
        } else {
            cpu.spin_until(self.base + 8, move |v| v > my_gen).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::{program, Machine};

    use super::*;

    #[test]
    fn two_procs_meet() {
        let mut m = Machine::ksr1(1).unwrap();
        let b = CounterBarrier::alloc(&mut m, 2).unwrap();
        let r = m
            .run(
                (0..2)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut ep = Episode::default();
                            cpu.compute(if p == 0 { 10_000 } else { 10 });
                            b.wait(&mut cpu, &mut ep).await;
                        })
                    })
                    .collect(),
            )
            .expect("run");
        // The fast processor waited for the slow one.
        assert!(r.proc_end[1] > 10_000);
    }

    #[test]
    fn counter_rearms_across_episodes() {
        let mut m = Machine::ksr1(2).unwrap();
        let b = CounterBarrier::alloc(&mut m, 4).unwrap();
        m.run(
            (0..4)
                .map(|_| {
                    program(move |mut cpu| async move {
                        let mut ep = Episode::default();
                        for _ in 0..5 {
                            b.wait(&mut cpu, &mut ep).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(b.base).unwrap(), 4, "counter re-armed");
        assert_eq!(
            m.peek_u64(b.base + 8).unwrap(),
            5,
            "five generations completed"
        );
    }
}

//! Algorithm 2: the dynamic combining-tree barrier (and its global-flag
//! variant, `tree(M)`).
//!
//! "A tree combining barrier that reduces the hot spot contention in the
//! previous algorithm by allocating a barrier variable (a counter) for
//! every pair of processors participating in the barrier. The processors
//! are the leaves of the binary tree, and the higher levels of the tree
//! get constructed dynamically as the processors reach the barrier thus
//! propagating the arrival information. The last processor to arrive at
//! the barrier will reach the root of the arrival tree and becomes
//! responsible for starting the notification of barrier completion down
//! this same binary tree." (§3.2.2)
//!
//! The `tree(M)` modification (suggested in Mellor-Crummey & Scott)
//! replaces the wake-up tree with a single global flag: "one, the wakeup
//! tree is collapsed thus reducing the number of distinct rounds of
//! communication, and two, read-snarfing helps this global wakeup flag
//! notification method tremendously."

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

use super::{BarrierAlg, Episode, FlagArray};

/// Dynamic combining-tree barrier.
#[derive(Debug, Clone, Copy)]
pub struct TreeBarrier {
    /// Pairwise arrival counters, one sub-page per internal node
    /// (flattened `(level, index)` grid; at most `n-1` live nodes).
    counters: FlagArray,
    /// Per-node wake-up flags (tree wake-up) — same flattened indexing.
    wakeups: FlagArray,
    /// Global wake-up flag (flag variant).
    global_flag: u64,
    n: usize,
    levels: usize,
    use_global_flag: bool,
}

/// Number of positions at `level` when `n` processors enter at level 0.
fn width_at(n: usize, level: usize) -> usize {
    let mut w = n;
    for _ in 0..level {
        w = w.div_ceil(2);
    }
    w
}

impl TreeBarrier {
    /// Allocate for `n` processors; `use_global_flag` selects `tree(M)`.
    pub fn alloc(m: &mut Machine, n: usize, use_global_flag: bool) -> Result<Self> {
        let levels = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        // Flattened node grid: level l gets width_at(n, l + 1) nodes; we
        // over-allocate a rectangular grid for simplicity of addressing.
        let per_level = width_at(n, 1).max(1);
        let cells = levels * per_level;
        Ok(Self {
            counters: FlagArray::alloc(m, cells)?,
            wakeups: FlagArray::alloc(m, cells)?,
            global_flag: m.alloc_subpage(8)?,
            n,
            levels,
            use_global_flag,
        })
    }

    fn node(&self, level: usize, idx: usize) -> usize {
        level * width_at(self.n, 1).max(1) + idx
    }
}

impl BarrierAlg for TreeBarrier {
    fn nprocs(&self) -> usize {
        self.n
    }

    async fn sync(&self, cpu: &mut Cpu, ep: &mut Episode) {
        let my_ep = ep.ep;
        ep.ep += 1;
        if self.n == 1 {
            return;
        }
        // Arrival: climb while second-to-arrive; remember the nodes we
        // climbed through (their first arrivers wait for us).
        let mut path: Vec<usize> = Vec::with_capacity(self.levels);
        let mut level = 0usize;
        let mut pos = cpu.id();
        let champion = loop {
            let w = width_at(self.n, level);
            if w == 1 {
                break true;
            }
            let partner = pos ^ 1;
            if partner >= w {
                // Bye: advance unopposed.
                pos /= 2;
                level += 1;
                continue;
            }
            let node = self.node(level, pos / 2);
            let caddr = self.counters.addr(node);
            // Accumulating pairwise counter: even parity = first arrival.
            // fetch_add is the get_sub_page synthesis on the KSR and a
            // native instruction on the comparison machines.
            let first = cpu.fetch_add(caddr, 1).await.is_multiple_of(2);
            if first {
                // Wait here for completion.
                if self.use_global_flag {
                    cpu.spin_until(self.global_flag, move |v| v > my_ep).await;
                } else {
                    let waddr = self.wakeups.addr(node);
                    cpu.spin_until(waddr, move |v| v > my_ep).await;
                }
                break false;
            }
            path.push(node);
            pos /= 2;
            level += 1;
        };

        if champion {
            if self.use_global_flag {
                cpu.write_u64(self.global_flag, my_ep + 1).await;
                cpu.poststore(self.global_flag).await;
                return;
            }
        } else if self.use_global_flag {
            return;
        }
        // Tree wake-up: rouse the first arriver at every node we won.
        for &node in path.iter().rev() {
            let waddr = self.wakeups.addr(node);
            cpu.write_u64(waddr, my_ep + 1).await;
            cpu.poststore(waddr).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::{program, Machine};

    use super::*;

    #[test]
    fn width_shrinks_by_halving() {
        assert_eq!(width_at(8, 0), 8);
        assert_eq!(width_at(8, 1), 4);
        assert_eq!(width_at(8, 3), 1);
        assert_eq!(width_at(5, 1), 3);
        assert_eq!(width_at(5, 2), 2);
        assert_eq!(width_at(5, 3), 1);
    }

    #[test]
    fn single_proc_is_a_noop() {
        let mut m = Machine::ksr1(1).unwrap();
        let b = TreeBarrier::alloc(&mut m, 1, false).unwrap();
        let r = m
            .run(vec![program(move |mut cpu| async move {
                let mut ep = Episode::default();
                b.wait(&mut cpu, &mut ep).await;
                b.wait(&mut cpu, &mut ep).await;
            })])
            .expect("run");
        assert!(r.duration_cycles() < 10);
    }

    #[test]
    fn stragglers_hold_everyone_both_variants() {
        for flag in [false, true] {
            let mut m = Machine::ksr1(3).unwrap();
            let b = TreeBarrier::alloc(&mut m, 6, flag).unwrap();
            let r = m
                .run(
                    (0..6)
                        .map(|p| {
                            program(move |mut cpu| async move {
                                let mut ep = Episode::default();
                                cpu.compute(if p == 3 { 50_000 } else { 100 });
                                b.wait(&mut cpu, &mut ep).await;
                            })
                        })
                        .collect(),
                )
                .expect("run");
            for p in 0..6 {
                assert!(
                    r.proc_end[p] >= 50_000,
                    "flag={flag} proc {p} escaped early"
                );
            }
        }
    }

    #[test]
    fn repeated_episodes_do_not_wedge() {
        for flag in [false, true] {
            let mut m = Machine::ksr1(5).unwrap();
            let b = TreeBarrier::alloc(&mut m, 7, flag).unwrap();
            m.run(
                (0..7)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut ep = Episode::default();
                            for e in 0..4 {
                                cpu.compute(((p * 31 + e * 17) % 300) as u64);
                                b.wait(&mut cpu, &mut ep).await;
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        }
    }
}

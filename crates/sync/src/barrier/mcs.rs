//! Algorithm 5: the Mellor-Crummey & Scott tree barrier (and `MCS(M)`).
//!
//! "A 4-ary tree is used in the former for arrival; and 'parent'
//! processors arrive at intermediate nodes of the arrival tree... The
//! parents at each level wait for their respective 4 children to arrive
//! at the barrier by spinning on a 32-bit word, while each of the
//! children indicate arrival by setting a designated byte of that word."
//! (§3.2.2)
//!
//! The packed arrival word is deliberately reproduced here: each parent's
//! four child-arrival slots share **one sub-page**, so the four children's
//! stores false-share and serialize — "every such false sharing access
//! results in one ring latency... the cost of the communication is at
//! least quadrupled for each level of the tree compared to the binary
//! tree". Wake-up uses a binary tree ("each node wakes up two children
//! this is faster than the corresponding wake up tree used in
//! tournament"), or the global flag in `MCS(M)`.

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

use super::{BarrierAlg, Episode, FlagArray};

/// MCS tree barrier: k-ary arrival (4-ary in the paper), binary wake-up.
#[derive(Debug, Clone, Copy)]
pub struct McsBarrier {
    /// Per-processor packed arrival words: `arity` slots of 8 bytes on a
    /// *single* sub-page per parent (intentional false sharing).
    arrival_base: u64,
    /// Per-processor wake-up flags, one sub-page each.
    wakeups: FlagArray,
    /// Global flag for the `(M)` variant.
    global_flag: u64,
    n: usize,
    arity: usize,
    use_global_flag: bool,
}

impl McsBarrier {
    /// Allocate for `n` processors; `use_global_flag` selects `MCS(M)`.
    pub fn alloc(m: &mut Machine, n: usize, use_global_flag: bool) -> Result<Self> {
        Self::alloc_with_arity(m, n, use_global_flag, 4)
    }

    /// Like [`Self::alloc`] with an explicit arrival-tree arity (the
    /// paper's analysis contrasts the 4-ary MCS arrival with the binary
    /// tournament; the arity sweep is an ablation bench). All `arity`
    /// child slots share one sub-page, as in the original algorithm.
    pub fn alloc_with_arity(
        m: &mut Machine,
        n: usize,
        use_global_flag: bool,
        arity: usize,
    ) -> Result<Self> {
        assert!(
            (2..=16).contains(&arity),
            "arity must fit one sub-page of 8-byte slots"
        );
        // One 128 B sub-page per parent holding its child slots.
        let arrival_base = m.alloc(128 * n as u64, 128)?;
        Ok(Self {
            arrival_base,
            wakeups: FlagArray::alloc(m, n)?,
            global_flag: m.alloc_subpage(8)?,
            n,
            arity,
            use_global_flag,
        })
    }

    /// Address of child-slot `c` in parent `p`'s packed arrival word.
    fn child_slot(&self, parent: usize, c: usize) -> u64 {
        self.arrival_base + 128 * parent as u64 + 8 * c as u64
    }
}

impl BarrierAlg for McsBarrier {
    fn nprocs(&self) -> usize {
        self.n
    }

    async fn sync(&self, cpu: &mut Cpu, ep: &mut Episode) {
        let my_ep = ep.ep;
        ep.ep += 1;
        if self.n <= 1 {
            return;
        }
        let p = cpu.id();
        // Wait for my arrival-tree children (processors k*p+1 .. k*p+k).
        for c in 0..self.arity {
            let child = self.arity * p + 1 + c;
            if child < self.n {
                cpu.spin_until(self.child_slot(p, c), move |v| v > my_ep)
                    .await;
            }
        }
        if p != 0 {
            // Report to my parent's packed word, then wait for wake-up.
            let parent = (p - 1) / self.arity;
            let slot = (p - 1) % self.arity;
            let out = self.child_slot(parent, slot);
            cpu.write_u64(out, my_ep + 1).await;
            cpu.poststore(out).await;
            if self.use_global_flag {
                cpu.spin_until(self.global_flag, move |v| v > my_ep).await;
                return;
            }
            cpu.spin_until(self.wakeups.addr(p), move |v| v > my_ep)
                .await;
        } else if self.use_global_flag {
            cpu.write_u64(self.global_flag, my_ep + 1).await;
            cpu.poststore(self.global_flag).await;
            return;
        }
        // Binary wake-up tree: wake processors 2p+1 and 2p+2.
        for child in [2 * p + 1, 2 * p + 2] {
            if child < self.n {
                let w = self.wakeups.addr(child);
                cpu.write_u64(w, my_ep + 1).await;
                cpu.poststore(w).await;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::{program, Machine};

    use super::*;

    #[test]
    fn child_slots_share_a_subpage() {
        let mut m = Machine::ksr1(1).unwrap();
        let b = McsBarrier::alloc(&mut m, 8, false).unwrap();
        let s0 = b.child_slot(0, 0) / 128;
        let s3 = b.child_slot(0, 3) / 128;
        assert_eq!(s0, s3, "the four child slots must false-share one sub-page");
        let other = b.child_slot(1, 0) / 128;
        assert_ne!(s0, other, "different parents use different sub-pages");
    }

    #[test]
    fn straggler_holds_everyone_both_variants() {
        for flag in [false, true] {
            let mut m = Machine::ksr1(12).unwrap();
            let b = McsBarrier::alloc(&mut m, 9, flag).unwrap();
            let r = m
                .run(
                    (0..9)
                        .map(|p| {
                            program(move |mut cpu| async move {
                                let mut ep = Episode::default();
                                cpu.compute(if p == 7 { 70_000 } else { 200 });
                                b.wait(&mut cpu, &mut ep).await;
                            })
                        })
                        .collect(),
                )
                .expect("run");
            for p in 0..9 {
                assert!(
                    r.proc_end[p] >= 70_000,
                    "flag={flag} proc {p} escaped early"
                );
            }
        }
    }

    #[test]
    fn repeated_episodes() {
        for flag in [false, true] {
            let mut m = Machine::ksr1(13).unwrap();
            let b = McsBarrier::alloc(&mut m, 11, flag).unwrap();
            m.run(
                (0..11)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut ep = Episode::default();
                            for e in 0..4 {
                                cpu.compute(((p * 53 + e * 29) % 350) as u64);
                                b.wait(&mut cpu, &mut ep).await;
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        }
    }
}

//! The "System" barrier: the vendor pthread-library barrier.
//!
//! The paper benchmarks "the system library provided pthread barriers"
//! and observes that "its performance is almost similar to that of the
//! dynamic-tree barrier with global wakeup flag" (§3.2.2, and again on
//! the KSR-2 where System trails only tournament(M) "closely followed by
//! System and tree(M)"). The library's source is not public; that
//! near-identical curve is strong evidence the library used a combining-
//! tree arrival with a global completion flag, so that is how it is
//! modelled here — plus a constant per-call library overhead (argument
//! checking, descriptor lookup) that keeps it a shade slower than the
//! hand-rolled tree(M).

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

use super::tree::TreeBarrier;
use super::{BarrierAlg, Episode};

/// Cycles of fixed library-call overhead per `wait`.
const CALL_OVERHEAD: u64 = 90;

/// Library-style barrier: combining-tree arrival, global-flag wake-up,
/// plus call overhead.
#[derive(Debug, Clone, Copy)]
pub struct SystemBarrier {
    inner: TreeBarrier,
    n: usize,
}

impl SystemBarrier {
    /// Allocate and initialise for `n` processors.
    pub fn alloc(m: &mut Machine, n: usize) -> Result<Self> {
        Ok(Self {
            inner: TreeBarrier::alloc(m, n, true)?,
            n,
        })
    }
}

impl BarrierAlg for SystemBarrier {
    fn nprocs(&self) -> usize {
        self.n
    }

    async fn sync(&self, cpu: &mut Cpu, ep: &mut Episode) {
        cpu.compute(CALL_OVERHEAD);
        self.inner.sync(cpu, ep).await;
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::{program, Machine};

    use super::*;

    #[test]
    fn straggler_holds_everyone() {
        let mut m = Machine::ksr1(15).unwrap();
        let b = SystemBarrier::alloc(&mut m, 6).unwrap();
        let r = m
            .run(
                (0..6)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut ep = Episode::default();
                            cpu.compute(if p == 0 { 45_000 } else { 80 });
                            b.wait(&mut cpu, &mut ep).await;
                        })
                    })
                    .collect(),
            )
            .expect("run");
        for p in 0..6 {
            assert!(r.proc_end[p] >= 45_000, "proc {p} escaped early");
        }
    }

    #[test]
    fn many_episodes_stable() {
        let mut m = Machine::ksr1(16).unwrap();
        let b = SystemBarrier::alloc(&mut m, 5).unwrap();
        m.run(
            (0..5)
                .map(|p| {
                    program(move |mut cpu| async move {
                        let mut ep = Episode::default();
                        for e in 0..8 {
                            cpu.compute(((p * 101 + e * 13) % 250) as u64);
                            b.wait(&mut cpu, &mut ep).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
    }

    #[test]
    fn costs_more_than_bare_tree_flag() {
        let episode = |system: bool| {
            let mut m = Machine::ksr1(17).unwrap();
            let run = |m: &mut Machine, b: super::super::AnyBarrier| {
                use super::super::BarrierKind;
                let _ = BarrierKind::System;
                m.run(
                    (0..8)
                        .map(|_| {
                            program(move |mut cpu| async move {
                                let mut ep = Episode::default();
                                for _ in 0..5 {
                                    b.wait(&mut cpu, &mut ep).await;
                                }
                            })
                        })
                        .collect(),
                )
                .expect("run")
                .duration_cycles()
            };
            if system {
                let b = SystemBarrier::alloc(&mut m, 8).unwrap();
                run(&mut m, super::super::AnyBarrier::System(b))
            } else {
                let b = TreeBarrier::alloc(&mut m, 8, true).unwrap();
                run(&mut m, super::super::AnyBarrier::Tree(b))
            }
        };
        let sys = episode(true);
        let tree = episode(false);
        assert!(sys > tree, "library overhead must show: {sys} vs {tree}");
        assert!(
            sys < tree * 2,
            "but stay in the same family: {sys} vs {tree}"
        );
    }
}

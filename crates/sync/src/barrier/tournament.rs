//! Algorithm 4: the tournament barrier (and `tournament(M)`).
//!
//! "A tournament barrier (another tree-style algorithm similar to
//! Algorithm 2) in which the winner in each round is determined
//! statically." (§3.2.2) The loser of each round reports its arrival to
//! the statically-known winner and waits; winners advance. The champion
//! (processor 0) observes completion after ⌈log₂P⌉ rounds and starts the
//! wake-up — a binary tree in the plain variant, a single global flag in
//! `tournament(M)`.
//!
//! "The tournament algorithm incurs only 1 communication step for a pair
//! of nodes in the binary tree in the best case... In a machine such as
//! the KSR-1 which has multiple communication paths all the communication
//! at each level of the binary tree can proceed in parallel." — this is
//! why `tournament(M)` is the best barrier in Figure 4.

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

use super::{BarrierAlg, Episode, FlagArray};

/// Static tournament barrier.
#[derive(Debug, Clone, Copy)]
pub struct TournamentBarrier {
    /// Arrival flags: `rounds x n`, one sub-page each (indexed by the
    /// *winner's* id for its round).
    arrivals: FlagArray,
    /// Wake-up flags: one per processor, own sub-page.
    wakeups: FlagArray,
    /// Global flag for the `(M)` variant.
    global_flag: u64,
    n: usize,
    rounds: usize,
    use_global_flag: bool,
}

impl TournamentBarrier {
    /// Allocate for `n` processors; `use_global_flag` selects
    /// `tournament(M)`.
    pub fn alloc(m: &mut Machine, n: usize, use_global_flag: bool) -> Result<Self> {
        let rounds = if n <= 1 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        Ok(Self {
            arrivals: FlagArray::alloc(m, rounds.max(1) * n)?,
            wakeups: FlagArray::alloc(m, n)?,
            global_flag: m.alloc_subpage(8)?,
            n,
            rounds,
            use_global_flag,
        })
    }

    fn arrival(&self, round: usize, winner: usize) -> u64 {
        self.arrivals.addr(round * self.n + winner)
    }
}

impl BarrierAlg for TournamentBarrier {
    fn nprocs(&self) -> usize {
        self.n
    }

    async fn sync(&self, cpu: &mut Cpu, ep: &mut Episode) {
        let my_ep = ep.ep;
        ep.ep += 1;
        if self.n <= 1 {
            return;
        }
        let p = cpu.id();
        // Rounds where p is a (potential) winner: its k low bits are 0.
        // It loses at the round of its lowest set bit.
        let mut lost_at = self.rounds;
        for k in 0..self.rounds {
            let bit = 1usize << k;
            if p & (bit - 1) != 0 {
                unreachable!("would have lost in an earlier round");
            }
            if p & bit != 0 {
                // Loser: report to the statically-known winner, then wait.
                let winner = p & !bit;
                let out = self.arrival(k, winner);
                cpu.write_u64(out, my_ep + 1).await;
                cpu.poststore(out).await;
                if self.use_global_flag {
                    cpu.spin_until(self.global_flag, move |v| v > my_ep).await;
                } else {
                    cpu.spin_until(self.wakeups.addr(p), move |v| v > my_ep)
                        .await;
                }
                lost_at = k;
                break;
            }
            // Winner: wait for the loser's report (if that peer exists).
            let peer = p | bit;
            if peer < self.n {
                cpu.spin_until(self.arrival(k, p), move |v| v > my_ep).await;
            }
        }
        if self.use_global_flag {
            if lost_at == self.rounds {
                // Champion: one write wakes everyone (read-snarfing turns
                // the re-reads into a single ring transaction).
                cpu.write_u64(self.global_flag, my_ep + 1).await;
                cpu.poststore(self.global_flag).await;
            }
            return;
        }
        // Tree wake-up: wake the peers I defeated, top-down.
        for j in (0..lost_at).rev() {
            let peer = p | (1usize << j);
            if peer < self.n {
                let w = self.wakeups.addr(peer);
                cpu.write_u64(w, my_ep + 1).await;
                cpu.poststore(w).await;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::{program, Machine};

    use super::*;

    #[test]
    fn straggler_holds_everyone_both_variants() {
        for flag in [false, true] {
            let mut m = Machine::ksr1(7).unwrap();
            let b = TournamentBarrier::alloc(&mut m, 8, flag).unwrap();
            let r = m
                .run(
                    (0..8)
                        .map(|p| {
                            program(move |mut cpu| async move {
                                let mut ep = Episode::default();
                                cpu.compute(if p == 5 { 60_000 } else { 100 });
                                b.wait(&mut cpu, &mut ep).await;
                            })
                        })
                        .collect(),
                )
                .expect("run");
            for p in 0..8 {
                assert!(
                    r.proc_end[p] >= 60_000,
                    "flag={flag} proc {p} escaped early"
                );
            }
        }
    }

    #[test]
    fn repeated_episodes() {
        for flag in [false, true] {
            let mut m = Machine::ksr1(8).unwrap();
            let b = TournamentBarrier::alloc(&mut m, 6, flag).unwrap();
            m.run(
                (0..6)
                    .map(|p| {
                        program(move |mut cpu| async move {
                            let mut ep = Episode::default();
                            for e in 0..5 {
                                cpu.compute(((p * 73 + e * 41) % 400) as u64);
                                b.wait(&mut cpu, &mut ep).await;
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        }
    }

    #[test]
    fn single_proc_noop() {
        let mut m = Machine::ksr1(9).unwrap();
        let b = TournamentBarrier::alloc(&mut m, 1, false).unwrap();
        let r = m
            .run(vec![program(move |mut cpu| async move {
                let mut ep = Episode::default();
                b.wait(&mut cpu, &mut ep).await;
            })])
            .expect("run");
        assert!(r.duration_cycles() < 10);
    }
}

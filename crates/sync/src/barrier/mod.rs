//! The nine barrier implementations of §3.2.2 (Figures 4 and 5).
//!
//! | Paper label     | Type                                        |
//! |-----------------|---------------------------------------------|
//! | `counter`       | [`CounterBarrier`]                          |
//! | `tree`          | [`TreeBarrier`] (dynamic combining tree)    |
//! | `tree(M)`       | [`TreeBarrier`] with global wakeup flag     |
//! | `dissemination` | [`DisseminationBarrier`]                    |
//! | `tournament`    | [`TournamentBarrier`]                       |
//! | `tournament(M)` | [`TournamentBarrier`] with global flag      |
//! | `MCS`           | [`McsBarrier`]                              |
//! | `MCS(M)`        | [`McsBarrier`] with global flag             |
//! | `System`        | [`SystemBarrier`] (pthread-style library)   |
//!
//! Every mutually exclusive shared variable sits on its own 128 B
//! sub-page ("we have aligned (whenever possible) mutually exclusive
//! parts of shared data structures on separate cache lines so that there
//! is no false sharing") — with the single deliberate exception of the
//! MCS arrival word, whose four per-child slots *share* a sub-page: that
//! false sharing is intrinsic to the algorithm and is exactly what the
//! paper blames for MCS's extra ring traffic on the KSR-1.
//!
//! Completion flags carry monotonically increasing episode stamps, so
//! repeated barrier episodes need no reset phase; wake-up writes are
//! followed by `poststore` ("read-snarfing is further aided by the use of
//! poststore in our implementation of these algorithms"), toggleable for
//! the ablation benches.

mod counter;
mod dissemination;
mod mcs;
mod system;
mod tournament;
mod tree;

pub use counter::CounterBarrier;
pub use dissemination::DisseminationBarrier;
pub use mcs::McsBarrier;
pub use system::SystemBarrier;
pub use tournament::TournamentBarrier;
pub use tree::TreeBarrier;

use std::future::Future;

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

/// Per-processor private barrier state: the episode counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Episode {
    /// Number of episodes this processor has completed.
    pub ep: u64,
}

/// A barrier algorithm usable by the generic experiment driver.
pub trait BarrierAlg: Copy + Send + 'static {
    /// Number of participating processors.
    fn nprocs(&self) -> usize;
    /// The algorithm body: block until all `nprocs()` processors have
    /// arrived for this episode. Implementations provide this; callers
    /// go through [`BarrierAlg::wait`].
    fn sync(&self, cpu: &mut Cpu, ep: &mut Episode) -> impl Future<Output = ()>;
    /// Block until all `nprocs()` processors have called `wait` for
    /// this episode, then stamp one cycle-stamped `BarrierEpisode`
    /// trace event per processor (a no-op unless the machine has a
    /// tracer attached). The verification passes key barrier *eras* off
    /// these events, so every barrier — whichever concrete type the
    /// kernel holds — reports episodes through this one place.
    fn wait(&self, cpu: &mut Cpu, ep: &mut Episode) -> impl Future<Output = ()> {
        async move {
            self.sync(cpu, ep).await;
            cpu.trace_barrier_episode(ep.ep);
        }
    }
}

/// An array of episode-stamped flags, one sub-page per flag.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlagArray {
    base: u64,
}

impl FlagArray {
    pub(crate) fn alloc(m: &mut Machine, n: usize) -> Result<Self> {
        Ok(Self {
            base: m.alloc(128 * n as u64, 128)?,
        })
    }

    pub(crate) fn addr(&self, i: usize) -> u64 {
        self.base + 128 * i as u64
    }
}

/// The nine Figure-4 barriers behind one dispatchable value, in the
/// paper's legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// Library barrier ("System").
    System,
    /// Naive central counter.
    Counter,
    /// Dynamic combining tree, tree wakeup.
    Tree,
    /// Dynamic combining tree, global-flag wakeup.
    TreeFlag,
    /// Dissemination.
    Dissemination,
    /// Static tournament, tree wakeup.
    Tournament,
    /// Static tournament, global-flag wakeup.
    TournamentFlag,
    /// Mellor-Crummey & Scott 4-ary arrival / binary wakeup.
    Mcs,
    /// MCS arrival with global-flag wakeup.
    McsFlag,
}

impl BarrierKind {
    /// All nine, in the paper's legend order.
    pub const ALL: [Self; 9] = [
        Self::System,
        Self::Counter,
        Self::Tree,
        Self::TreeFlag,
        Self::Dissemination,
        Self::Tournament,
        Self::TournamentFlag,
        Self::Mcs,
        Self::McsFlag,
    ];

    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::System => "System",
            Self::Counter => "Counter",
            Self::Tree => "Tree",
            Self::TreeFlag => "Tree(M)",
            Self::Dissemination => "Dissemination",
            Self::Tournament => "Tournament",
            Self::TournamentFlag => "Tournament(M)",
            Self::Mcs => "MCS",
            Self::McsFlag => "MCS(M)",
        }
    }

    /// Whether this variant needs coherent caches for its wakeup
    /// broadcast (the global-flag variants cannot run on the Butterfly,
    /// §3.2.3).
    #[must_use]
    pub fn needs_coherent_caches(&self) -> bool {
        matches!(
            self,
            Self::TreeFlag | Self::TournamentFlag | Self::McsFlag | Self::System
        )
    }
}

/// Any of the nine barriers, dispatchable by value.
#[derive(Debug, Clone, Copy)]
pub enum AnyBarrier {
    /// Library barrier.
    System(SystemBarrier),
    /// Central counter.
    Counter(CounterBarrier),
    /// Dynamic tree (either wakeup flavour).
    Tree(TreeBarrier),
    /// Dissemination.
    Dissemination(DisseminationBarrier),
    /// Tournament (either wakeup flavour).
    Tournament(TournamentBarrier),
    /// MCS (either wakeup flavour).
    Mcs(McsBarrier),
}

impl AnyBarrier {
    /// Allocate a barrier of the given kind for `n` processors.
    pub fn alloc(kind: BarrierKind, m: &mut Machine, n: usize) -> Result<Self> {
        Ok(match kind {
            BarrierKind::System => Self::System(SystemBarrier::alloc(m, n)?),
            BarrierKind::Counter => Self::Counter(CounterBarrier::alloc(m, n)?),
            BarrierKind::Tree => Self::Tree(TreeBarrier::alloc(m, n, false)?),
            BarrierKind::TreeFlag => Self::Tree(TreeBarrier::alloc(m, n, true)?),
            BarrierKind::Dissemination => Self::Dissemination(DisseminationBarrier::alloc(m, n)?),
            BarrierKind::Tournament => Self::Tournament(TournamentBarrier::alloc(m, n, false)?),
            BarrierKind::TournamentFlag => Self::Tournament(TournamentBarrier::alloc(m, n, true)?),
            BarrierKind::Mcs => Self::Mcs(McsBarrier::alloc(m, n, false)?),
            BarrierKind::McsFlag => Self::Mcs(McsBarrier::alloc(m, n, true)?),
        })
    }
}

impl BarrierAlg for AnyBarrier {
    fn nprocs(&self) -> usize {
        match self {
            Self::System(b) => b.nprocs(),
            Self::Counter(b) => b.nprocs(),
            Self::Tree(b) => b.nprocs(),
            Self::Dissemination(b) => b.nprocs(),
            Self::Tournament(b) => b.nprocs(),
            Self::Mcs(b) => b.nprocs(),
        }
    }

    async fn sync(&self, cpu: &mut Cpu, ep: &mut Episode) {
        match self {
            Self::System(b) => b.sync(cpu, ep).await,
            Self::Counter(b) => b.sync(cpu, ep).await,
            Self::Tree(b) => b.sync(cpu, ep).await,
            Self::Dissemination(b) => b.sync(cpu, ep).await,
            Self::Tournament(b) => b.sync(cpu, ep).await,
            Self::Mcs(b) => b.sync(cpu, ep).await,
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use ksr_machine::{program, Machine, Program, RunReport};

    use super::{AnyBarrier, BarrierAlg, Episode};

    /// Run `episodes` barrier episodes on `procs` processors, asserting
    /// the fundamental safety property: no processor enters episode k+1
    /// before every processor has entered episode k. Returns the report.
    pub(crate) fn check_barrier(
        m: &mut Machine,
        b: AnyBarrier,
        procs: usize,
        episodes: usize,
    ) -> RunReport {
        // Shared arrival counters per episode, updated with plain
        // (racy-free: distinct slots) writes.
        let marks = (0..procs)
            .map(|_| m.alloc_subpage(8 * episodes as u64).unwrap())
            .collect::<Vec<_>>();
        let all_marks = marks.clone();
        let programs: Vec<Box<dyn Program>> = (0..procs)
            .map(|p| {
                let my_mark = marks[p];
                let all = all_marks.clone();
                program(move |mut cpu| async move {
                    let mut ep = Episode::default();
                    for e in 0..episodes {
                        // Phase work so processors arrive skewed.
                        cpu.compute(((p * 137 + e * 59) % 500) as u64 + 10);
                        cpu.write_u64(my_mark + 8 * e as u64, 1).await;
                        b.wait(&mut cpu, &mut ep).await;
                        // After the barrier, every processor must have
                        // marked this episode.
                        for &other in &all {
                            let v = cpu.read_u64(other + 8 * e as u64).await;
                            assert_eq!(v, 1, "barrier let a processor through early (ep {e})");
                        }
                    }
                })
            })
            .collect();
        m.run(programs).expect("run")
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::Machine;

    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = BarrierKind::ALL.iter().map(BarrierKind::label).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn flag_variants_need_coherence() {
        assert!(BarrierKind::TournamentFlag.needs_coherent_caches());
        assert!(!BarrierKind::Dissemination.needs_coherent_caches());
        assert!(!BarrierKind::Counter.needs_coherent_caches());
        assert!(!BarrierKind::Mcs.needs_coherent_caches());
    }

    #[test]
    fn all_nine_allocate() {
        let mut m = Machine::ksr1(1).unwrap();
        for kind in BarrierKind::ALL {
            let b = AnyBarrier::alloc(kind, &mut m, 8).unwrap();
            assert_eq!(b.nprocs(), 8, "{}", kind.label());
        }
    }

    #[test]
    fn every_barrier_is_safe_on_ksr1() {
        for kind in BarrierKind::ALL {
            let mut m = Machine::ksr1(31).unwrap();
            let b = AnyBarrier::alloc(kind, &mut m, 8).unwrap();
            testutil::check_barrier(&mut m, b, 8, 3);
        }
    }

    #[test]
    fn every_barrier_is_safe_with_odd_proc_counts() {
        for kind in BarrierKind::ALL {
            for procs in [2usize, 3, 5, 7] {
                let mut m = Machine::ksr1(33).unwrap();
                let b = AnyBarrier::alloc(kind, &mut m, procs).unwrap();
                testutil::check_barrier(&mut m, b, procs, 2);
            }
        }
    }

    #[test]
    fn tree_barriers_work_at_32_procs() {
        for kind in [
            BarrierKind::Tree,
            BarrierKind::TournamentFlag,
            BarrierKind::Mcs,
        ] {
            let mut m = Machine::ksr1(35).unwrap();
            let b = AnyBarrier::alloc(kind, &mut m, 32).unwrap();
            testutil::check_barrier(&mut m, b, 32, 2);
        }
    }

    #[test]
    fn non_flag_barriers_run_on_butterfly() {
        for kind in BarrierKind::ALL {
            if kind.needs_coherent_caches() {
                continue;
            }
            let mut m = Machine::butterfly(8, 37).unwrap();
            let b = AnyBarrier::alloc(kind, &mut m, 8).unwrap();
            testutil::check_barrier(&mut m, b, 8, 2);
        }
    }

    #[test]
    fn barriers_run_on_symmetry() {
        for kind in [
            BarrierKind::Counter,
            BarrierKind::Mcs,
            BarrierKind::TournamentFlag,
        ] {
            let mut m = Machine::symmetry(8, 39).unwrap();
            let b = AnyBarrier::alloc(kind, &mut m, 8).unwrap();
            testutil::check_barrier(&mut m, b, 8, 2);
        }
    }

    #[test]
    fn barriers_run_on_ksr2_across_ring_boundary() {
        for kind in [BarrierKind::TournamentFlag, BarrierKind::Dissemination] {
            let mut m = Machine::ksr2(41).unwrap();
            let b = AnyBarrier::alloc(kind, &mut m, 40).unwrap();
            testutil::check_barrier(&mut m, b, 40, 2);
        }
    }
}

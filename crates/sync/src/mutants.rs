//! Seeded concurrency-bug workloads for validating `ksr-verify`.
//!
//! Each builder allocates its shared state on a [`Machine`] and hands
//! back one program per processor. All three mutants share a shape: the
//! processors race a *guard* sub-page with `get_sub_page` at virtual
//! time 0, so the coordinator's very first equal-time tie decides the
//! scenario — and the **default** tie-break (lowest proc id first)
//! always takes the benign path. The single deterministic schedule is
//! clean; only a different resolution of the tie (a
//! `ksr_machine::ScheduleOracle`, enumerated by `ksr_verify::explore`)
//! exposes the seeded bug:
//!
//! * [`LockOrderMutant`] — two processors nest two locks in opposite
//!   orders. Under the default schedule the critical sections are
//!   serialized and nobody blocks; under the flipped tie both hold one
//!   lock while (boundedly) retrying the other, recording the mutual
//!   blocking. The opposite-order *edges* are present in every trace,
//!   so the predictive lock-order graph flags the potential deadlock
//!   even from the clean run.
//! * [`RacyHandoff`] — a producer sets a flag before its data is
//!   written; the consumer polls the flag exactly once. Default: the
//!   poll loses the race, sees 0, and takes the fallback. Flipped: the
//!   poll sees the flag and reads stale data.
//! * [`MissedInvalidationProbe`] — a 4-processor probe for a seeded
//!   `ksr_mem` protocol fault (exclusive fetches skip invalidations).
//!   The fault is harmless while sub-page `x` has a single writer
//!   (default); the flipped tie adds a second writer and the coherence
//!   checker sees multiple writable copies.
//!
//! Every path is bounded — failed attempts are counted, never retried
//! forever — so no schedule deadlocks the simulator.

use ksr_core::Result;
use ksr_machine::{program, Machine, Program};

/// Virtual-cycle pad the guard loser takes before entering its critical
/// section.
const LOSER_PAD: u64 = 3_000;
/// Fixed pre-section pad of the second processor (makes the default
/// schedule serialize and the flipped one overlap).
const PRE_PAD: u64 = 4_000;
/// Cycles spent inside a critical section before touching the second
/// lock.
const HOLD: u64 = 2_000;
/// Gap between bounded lock retries.
const RETRY_GAP: u64 = 800;
/// Bounded retry count (keeps every schedule deadlock-free).
const TRIES: u64 = 6;

/// The value a correct handoff delivers.
pub const HANDOFF_VALUE: u64 = 42;
/// The fallback the consumer records when it (correctly) sees the flag
/// unset.
pub const HANDOFF_SENTINEL: u64 = 7_777;

/// Two processors nesting locks `A` and `B` in opposite orders behind a
/// racing guard.
#[derive(Debug, Clone, Copy)]
pub struct LockOrderMutant {
    guard: u64,
    lock_a: u64,
    lock_b: u64,
    fails: u64,
    counter: u64,
}

impl LockOrderMutant {
    /// Allocate the guard, both locks, and the per-processor
    /// failed-attempt counters.
    pub fn alloc(m: &mut Machine) -> Result<Self> {
        Ok(Self {
            guard: m.alloc_subpage(8)?,
            lock_a: m.alloc_subpage(8)?,
            lock_b: m.alloc_subpage(8)?,
            fails: m.alloc_subpage(16)?,
            counter: m.alloc_subpage(8)?,
        })
    }

    /// The mutant: proc 0 nests `A` then `B`, proc 1 nests `B` then `A`.
    #[must_use]
    pub fn programs(&self) -> Vec<Box<dyn Program>> {
        let s = *self;
        let section = |first: u64, second: u64, fails_at: u64, pre: u64| {
            program(move |mut cpu| async move {
                // Both processors race the guard at t=0; the tie-break is
                // the scenario's one scheduling choice.
                if cpu.get_sub_page(s.guard).await {
                    cpu.release_sub_page(s.guard).await;
                } else {
                    cpu.compute(LOSER_PAD);
                }
                cpu.compute(pre);
                cpu.acquire_sub_page(first).await;
                cpu.compute(HOLD);
                let mut fails = 0u64;
                for _ in 0..TRIES {
                    if cpu.get_sub_page(second).await {
                        cpu.release_sub_page(second).await;
                        break;
                    }
                    fails += 1;
                    cpu.compute(RETRY_GAP);
                }
                cpu.write_u64(fails_at, fails).await;
                cpu.release_sub_page(first).await;
            })
        };
        vec![
            section(s.lock_a, s.lock_b, s.fails, 0),
            section(s.lock_b, s.lock_a, s.fails + 8, PRE_PAD),
        ]
    }

    /// The clean counterpart: the same guard race and the same two
    /// locks, but both processors nest `A` then `B` around a shared
    /// counter — correct under every schedule.
    #[must_use]
    pub fn clean_programs(&self) -> Vec<Box<dyn Program>> {
        let s = *self;
        let worker = |pre: u64| {
            program(move |mut cpu| async move {
                if cpu.get_sub_page(s.guard).await {
                    cpu.release_sub_page(s.guard).await;
                } else {
                    cpu.compute(LOSER_PAD);
                }
                cpu.compute(pre);
                for _ in 0..2 {
                    cpu.acquire_sub_page(s.lock_a).await;
                    cpu.acquire_sub_page(s.lock_b).await;
                    let v = cpu.read_u64(s.counter).await;
                    cpu.compute(50);
                    cpu.write_u64(s.counter, v + 1).await;
                    cpu.release_sub_page(s.lock_b).await;
                    cpu.release_sub_page(s.lock_a).await;
                }
            })
        };
        vec![worker(0), worker(PRE_PAD)]
    }

    /// Whether the finished run shows *mutual* blocking: both processors
    /// recorded failed acquisitions of the lock the other held. Under
    /// the default schedule the sections are serialized and this is
    /// `false`; a flipped guard tie overlaps them.
    pub fn mutual_blocking(&self, m: &mut Machine) -> Result<bool> {
        Ok(m.peek_u64(self.fails)? > 0 && m.peek_u64(self.fails + 8)? > 0)
    }

    /// Counter value after [`Self::clean_programs`] (must be 4).
    pub fn counter_value(&self, m: &mut Machine) -> Result<u64> {
        m.peek_u64(self.counter)
    }

    /// Both processors' failed-acquisition counts (for state hashing).
    pub fn fail_counts(&self, m: &mut Machine) -> Result<(u64, u64)> {
        Ok((m.peek_u64(self.fails)?, m.peek_u64(self.fails + 8)?))
    }
}

/// A producer/consumer pair whose mutant consumer polls the ready flag
/// exactly once, without synchronization.
#[derive(Debug, Clone, Copy)]
pub struct RacyHandoff {
    flag: u64,
    data: u64,
    result: u64,
}

impl RacyHandoff {
    /// Allocate the flag, the payload, and the consumer's result word.
    pub fn alloc(m: &mut Machine) -> Result<Self> {
        Ok(Self {
            flag: m.alloc_subpage(8)?,
            data: m.alloc_subpage(8)?,
            result: m.alloc_subpage(8)?,
        })
    }

    /// The mutant: the producer publishes the flag *before* the data;
    /// the consumer polls the flag once, racing the producer's flag
    /// write at t=0.
    #[must_use]
    pub fn programs(&self) -> Vec<Box<dyn Program>> {
        let s = *self;
        vec![
            program(move |mut cpu| async move {
                let ready = cpu.read_u64(s.flag).await;
                if ready == 1 {
                    let d = cpu.read_u64(s.data).await;
                    cpu.write_u64(s.result, d).await;
                } else {
                    cpu.write_u64(s.result, HANDOFF_SENTINEL).await;
                }
            }),
            program(move |mut cpu| async move {
                cpu.write_u64(s.flag, 1).await;
                cpu.compute(HOLD);
                cpu.write_u64(s.data, HANDOFF_VALUE).await;
            }),
        ]
    }

    /// The clean counterpart: data is published before the flag and the
    /// consumer spins — correct under every schedule.
    #[must_use]
    pub fn clean_programs(&self) -> Vec<Box<dyn Program>> {
        let s = *self;
        vec![
            program(move |mut cpu| async move {
                cpu.spin_until_eq(s.flag, 1).await;
                let d = cpu.read_u64(s.data).await;
                cpu.write_u64(s.result, d).await;
            }),
            program(move |mut cpu| async move {
                cpu.write_u64(s.data, HANDOFF_VALUE).await;
                cpu.compute(HOLD);
                cpu.write_u64(s.flag, 1).await;
            }),
        ]
    }

    /// Whether the finished run delivered a stale payload: the consumer
    /// saw the flag but read data from before the producer's write.
    pub fn stale(&self, m: &mut Machine) -> Result<bool> {
        let r = m.peek_u64(self.result)?;
        Ok(r != HANDOFF_SENTINEL && r != HANDOFF_VALUE)
    }

    /// The consumer's delivered value (for state hashing).
    pub fn result_value(&self, m: &mut Machine) -> Result<u64> {
        m.peek_u64(self.result)
    }
}

/// A 4-processor probe that keeps a seeded `MissedInvalidation`
/// protocol fault dormant under the default schedule (sub-page `x` has
/// one writer) and triggers it under a flipped guard tie (a second
/// writer joins).
#[derive(Debug, Clone, Copy)]
pub struct MissedInvalidationProbe {
    guard: u64,
    x: u64,
    y: u64,
}

impl MissedInvalidationProbe {
    /// Allocate the guard and the two data sub-pages.
    pub fn alloc(m: &mut Machine) -> Result<Self> {
        Ok(Self {
            guard: m.alloc_subpage(8)?,
            x: m.alloc_subpage(8)?,
            y: m.alloc_subpage(8)?,
        })
    }

    /// The four programs. Procs 0 and 1 race the guard; proc 0 writes
    /// `x` only if it *loses*. Procs 2 and 3 are steady writers of `x`
    /// and `y` respectively, staggered off the t=0 tie.
    #[must_use]
    pub fn programs(&self) -> Vec<Box<dyn Program>> {
        let s = *self;
        vec![
            program(move |mut cpu| async move {
                if cpu.get_sub_page(s.guard).await {
                    cpu.release_sub_page(s.guard).await;
                } else {
                    cpu.write_u64(s.x, 1).await;
                }
            }),
            program(move |mut cpu| async move {
                if cpu.get_sub_page(s.guard).await {
                    cpu.release_sub_page(s.guard).await;
                }
            }),
            program(move |mut cpu| async move {
                cpu.compute(500);
                for i in 0..3u64 {
                    cpu.write_u64(s.x, 10 + i).await;
                    cpu.compute(400);
                }
            }),
            program(move |mut cpu| async move {
                cpu.compute(700);
                for i in 0..3u64 {
                    cpu.write_u64(s.y, i).await;
                    cpu.compute(400);
                }
            }),
        ]
    }

    /// Final `(x, y)` values (for state hashing).
    pub fn final_values(&self, m: &mut Machine) -> Result<(u64, u64)> {
        Ok((m.peek_u64(self.x)?, m.peek_u64(self.y)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_order_mutant_is_clean_under_the_default_schedule() {
        let mut m = Machine::ksr1(11).unwrap();
        let s = LockOrderMutant::alloc(&mut m).unwrap();
        m.run(s.programs()).expect("run");
        assert!(
            !s.mutual_blocking(&mut m).unwrap(),
            "default tie-break must serialize the critical sections"
        );
    }

    #[test]
    fn lock_order_clean_counterpart_counts_correctly() {
        let mut m = Machine::ksr1(11).unwrap();
        let s = LockOrderMutant::alloc(&mut m).unwrap();
        m.run(s.clean_programs()).expect("run");
        assert_eq!(s.counter_value(&mut m).unwrap(), 4);
    }

    #[test]
    fn racy_handoff_takes_the_fallback_by_default() {
        let mut m = Machine::ksr1(12).unwrap();
        let s = RacyHandoff::alloc(&mut m).unwrap();
        m.run(s.programs()).expect("run");
        assert!(!s.stale(&mut m).unwrap());
        assert_eq!(m.peek_u64(s.result).unwrap(), HANDOFF_SENTINEL);
    }

    #[test]
    fn clean_handoff_always_delivers() {
        let mut m = Machine::ksr1(12).unwrap();
        let s = RacyHandoff::alloc(&mut m).unwrap();
        m.run(s.clean_programs()).expect("run");
        assert_eq!(m.peek_u64(s.result).unwrap(), HANDOFF_VALUE);
    }

    #[test]
    fn missed_invalidation_probe_runs_on_a_correct_machine() {
        // On an unfaulted machine the probe is boring by design: it runs
        // to completion under the default schedule.
        let mut m = Machine::ksr1(13).unwrap();
        let s = MissedInvalidationProbe::alloc(&mut m).unwrap();
        m.run(s.programs()).expect("run");
        assert_eq!(m.peek_u64(s.x).unwrap(), 12, "last staggered write");
    }
}

//! Topology-aware hierarchical (cohort) locks.
//!
//! The flat locks of §3.2.1 ignore the ring hierarchy: under contention
//! a ticket lock's handoff hops to whichever cell queued next, and on
//! the 256/512/1024-cell machines that cell usually sits on another
//! leaf ring, so every handoff drags the lock word (and the protected
//! data) through one or more ARDs. "High-Performance Distributed RMA
//! Locks" (Schmid, Besta, Hoefler; see PAPERS.md) solves this with
//! *cohort* queues: one FCFS queue per locality domain plus one global
//! FCFS queue of domains, and a bounded budget of consecutive
//! local handoffs before the domain must surrender the global lock.
//!
//! ## Protocol
//!
//! [`CohortLock`] derives its cohorts from the machine's
//! [`Topology`]: on a ring hierarchy each leaf ring is one cohort
//! (`cell / cells_per_leaf`); bus and Butterfly machines have no
//! locality to exploit and collapse to a single cohort. Each cohort
//! owns one sub-page holding a ticket pair (`lnext`/`lserving`) plus
//! `lowns` ("this cohort currently holds the global lock") and
//! `lhandoffs` (consecutive local handoffs so far); a final sub-page
//! holds the global ticket pair (`gnext`/`gserving`).
//!
//! * **acquire** — take a local ticket under `get_sub_page`, spin on
//!   `lserving` (all same-leaf traffic). The cohort's head checks
//!   `lowns`: if the cohort does not hold the global lock it takes a
//!   global ticket and spins on `gserving` — the only cross-ring spin,
//!   and only one cell per cohort ever does it.
//! * **release** — if local waiters are queued and fewer than `budget`
//!   consecutive local handoffs have happened, advance `lserving` only:
//!   the lock stays inside the leaf ring and the handoff is a purely
//!   local reference. Otherwise clear `lowns`, advance `lserving`, and
//!   release the global ticket.
//!
//! ## Fairness
//!
//! Both queues are strict FCFS and the handoff budget bounds how long a
//! cohort may retain the global lock: once a remote cohort enqueues
//! globally, at most `budget + 1` critical sections (the current holder
//! plus `budget` local handoffs) run before the global ticket advances,
//! and global tickets are FCFS, so every waiter gets the lock after a
//! bounded number of critical sections — starvation-freedom is
//! preserved, merely relaxed from strict global FCFS by the budget.
//!
//! ## Verification silence
//!
//! Every bookkeeping word lives on a sub-page that is either a
//! `get_sub_page` target or a spin target, so the race detector's
//! sync-exemption covers all lock metadata, and the lock never holds
//! two `get_sub_page` sub-pages at once (the global ticket is taken
//! and released outside the local sub-page hold), so the lock-order
//! predictor sees no edges. The `LCK --check` gate in `scripts/check.sh`
//! holds both properties.

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};
use ksr_net::Topology;

use crate::rwlock::{LockMode, SwRwLock, Ticket};

/// Local-queue word offsets (one 128-byte sub-page per cohort).
const LNEXT: u64 = 0;
const LSERVING: u64 = 8;
const LOWNS: u64 = 16;
const LHANDOFFS: u64 = 24;
/// Global write-ticket number inherited on local handoff
/// ([`CohortRwLock`] only).
const LGTICK: u64 = 32;

/// Global-queue word offsets.
const GNEXT: u64 = 0;
const GSERVING: u64 = 8;

/// Sub-page stride between cohort queues.
const COHORT_STRIDE: u64 = 128;

/// Default bound on consecutive local handoffs before the global
/// ticket must be released.
pub const DEFAULT_HANDOFF_BUDGET: u64 = 8;

/// Cohort geometry shared by both lock flavors.
#[derive(Debug, Clone, Copy)]
struct Cohorts {
    /// Base address of `count` consecutive local-queue sub-pages.
    locals: u64,
    /// Cells per cohort (= cells per leaf ring on a ring hierarchy).
    cells_per_cohort: u64,
    /// Number of cohorts.
    count: u64,
}

impl Cohorts {
    fn alloc(m: &mut Machine) -> Result<Self> {
        let cells = m.config().cells.max(1);
        let cells_per_cohort = match &m.config().topology {
            // One cohort per leaf ring, matching `RingHierarchy::leaf_of`.
            Topology::Ring(cfg) => cfg.cells_per_leaf.min(cells),
            // No locality to exploit: a single cohort (the lock then
            // behaves as a flat FCFS ticket lock with a pass-through
            // global stage).
            Topology::Bus(_) | Topology::Butterfly(_) => cells,
        };
        let count = cells.div_ceil(cells_per_cohort);
        let locals = m.alloc_subpage(count as u64 * COHORT_STRIDE)?;
        Ok(Self {
            locals,
            cells_per_cohort: cells_per_cohort as u64,
            count: count as u64,
        })
    }

    /// The local-queue sub-page of `cell`'s cohort.
    fn queue_of(&self, cell: usize) -> u64 {
        let cohort = (cell as u64 / self.cells_per_cohort).min(self.count - 1);
        self.locals + cohort * COHORT_STRIDE
    }

    /// Take a local ticket and wait until this processor heads its
    /// cohort's queue. Returns the cohort queue address.
    async fn await_local_head(&self, cpu: &mut Cpu) -> u64 {
        let q = self.queue_of(cpu.id());
        cpu.acquire_sub_page(q).await;
        let t = cpu.read_u64(q + LNEXT).await;
        cpu.write_u64(q + LNEXT, t + 1).await;
        let serving = cpu.read_u64(q + LSERVING).await;
        cpu.release_sub_page(q).await;
        if serving != t {
            cpu.spin_until(q + LSERVING, move |v| v == t).await;
        }
        q
    }

    /// Release decision at `q`: on a local handoff, advance `lserving`
    /// and return `true`; otherwise clear `lowns`, advance `lserving`,
    /// and return `false` — the caller must then release the global
    /// stage it still holds.
    async fn handoff_or_surrender(&self, cpu: &mut Cpu, q: u64, budget: u64) -> bool {
        cpu.acquire_sub_page(q).await;
        let t = cpu.read_u64(q + LSERVING).await;
        let next = cpu.read_u64(q + LNEXT).await;
        let handoffs = cpu.read_u64(q + LHANDOFFS).await;
        let local = next > t + 1 && handoffs < budget;
        if local {
            cpu.write_u64(q + LHANDOFFS, handoffs + 1).await;
        } else {
            cpu.write_u64(q + LHANDOFFS, 0).await;
            cpu.write_u64(q + LOWNS, 0).await;
        }
        cpu.write_u64(q + LSERVING, t + 1).await;
        cpu.release_sub_page(q).await;
        local
    }
}

/// The hierarchical MCS/cohort mutex: per-leaf FCFS local queues under
/// a FCFS global queue, with a bounded local-handoff budget (see the
/// module docs for the protocol and fairness argument).
#[derive(Debug, Clone, Copy)]
pub struct CohortLock {
    global: u64,
    cohorts: Cohorts,
    budget: u64,
}

impl CohortLock {
    /// Allocate with the default handoff budget, deriving cohorts from
    /// the machine's topology.
    pub fn alloc(m: &mut Machine) -> Result<Self> {
        Self::with_budget(m, DEFAULT_HANDOFF_BUDGET)
    }

    /// Allocate with an explicit handoff budget. A budget of 0 releases
    /// the global ticket after every critical section (strict global
    /// FCFS, no locality benefit).
    pub fn with_budget(m: &mut Machine, budget: u64) -> Result<Self> {
        let global = m.alloc_subpage(16)?;
        let cohorts = Cohorts::alloc(m)?;
        Ok(Self {
            global,
            cohorts,
            budget,
        })
    }

    /// Number of cohorts (leaf rings, or 1 without ring locality).
    #[must_use]
    pub fn cohorts(&self) -> u64 {
        self.cohorts.count
    }

    /// The configured local-handoff budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Acquire the lock; blocks until granted.
    pub async fn acquire(&self, cpu: &mut Cpu) {
        let q = self.cohorts.await_local_head(cpu).await;
        // Head of the cohort. `lowns` is only ever touched by the
        // cohort head (ordered by the `lserving` spin on this same
        // sub-page), so no `get_sub_page` is needed here.
        if cpu.read_u64(q + LOWNS).await == 0 {
            let g = self.global;
            cpu.acquire_sub_page(g).await;
            let t = cpu.read_u64(g + GNEXT).await;
            cpu.write_u64(g + GNEXT, t + 1).await;
            let serving = cpu.read_u64(g + GSERVING).await;
            cpu.release_sub_page(g).await;
            if serving != t {
                cpu.spin_until(g + GSERVING, move |v| v == t).await;
            }
            cpu.write_u64(q + LOWNS, 1).await;
        }
    }

    /// Release the lock, preferring a local handoff within the cohort
    /// while the budget lasts.
    pub async fn release(&self, cpu: &mut Cpu) {
        let q = self.cohorts.queue_of(cpu.id());
        if !self.cohorts.handoff_or_surrender(cpu, q, self.budget).await {
            let g = self.global;
            cpu.acquire_sub_page(g).await;
            let serving = cpu.read_u64(g + GSERVING).await;
            cpu.write_u64(g + GSERVING, serving + 1).await;
            cpu.release_sub_page(g).await;
        }
    }
}

/// Proof of [`CohortRwLock`] acquisition, needed to release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortTicket {
    global: Ticket,
}

impl CohortTicket {
    /// The mode the lock was granted in.
    #[must_use]
    pub fn mode(&self) -> LockMode {
        self.global.mode()
    }
}

/// Reader-writer cohort lock layered on the [`SwRwLock`] ticket
/// machinery of §3.2.1: readers combine globally exactly as in the
/// paper's lock (read-sharing already scales, and readers never take a
/// handoff), while writers queue through their cohort and hand the
/// *global write ticket* to same-leaf writers within the handoff
/// budget. Because the global stage is the paper's FCFS queue, readers
/// and writer-cohorts interleave in strict global FCFS order.
///
/// The global [`SwRwLock`]'s 64-slot ticket table bounds in-flight
/// global tickets; with per-cohort writer combining there is at most
/// one global write ticket per cohort (≤ 32 on any valid ring tree),
/// so the constraint only binds the reader count, as for the flat lock.
#[derive(Debug, Clone, Copy)]
pub struct CohortRwLock {
    global: SwRwLock,
    cohorts: Cohorts,
    budget: u64,
}

impl CohortRwLock {
    /// Allocate with the default handoff budget.
    pub fn alloc(m: &mut Machine) -> Result<Self> {
        Self::with_budget(m, DEFAULT_HANDOFF_BUDGET)
    }

    /// Allocate with an explicit writer handoff budget.
    pub fn with_budget(m: &mut Machine, budget: u64) -> Result<Self> {
        let global = SwRwLock::alloc(m)?;
        let cohorts = Cohorts::alloc(m)?;
        Ok(Self {
            global,
            cohorts,
            budget,
        })
    }

    /// Number of cohorts.
    #[must_use]
    pub fn cohorts(&self) -> u64 {
        self.cohorts.count
    }

    /// Acquire in the given mode; blocks (FCFS) until granted.
    pub async fn acquire(&self, cpu: &mut Cpu, mode: LockMode) -> CohortTicket {
        match mode {
            LockMode::Read => CohortTicket {
                global: self.global.acquire(cpu, LockMode::Read).await,
            },
            LockMode::Write => {
                let q = self.cohorts.await_local_head(cpu).await;
                let number = if cpu.read_u64(q + LOWNS).await == 0 {
                    let t = self.global.acquire(cpu, LockMode::Write).await;
                    cpu.write_u64(q + LGTICK, t.number()).await;
                    cpu.write_u64(q + LOWNS, 1).await;
                    t.number()
                } else {
                    // Inherit the cohort's open global write ticket.
                    cpu.read_u64(q + LGTICK).await
                };
                CohortTicket {
                    global: Ticket::internal(number, LockMode::Write),
                }
            }
        }
    }

    /// Release a previously acquired ticket.
    pub async fn release(&self, cpu: &mut Cpu, ticket: CohortTicket) {
        match ticket.global.mode() {
            LockMode::Read => self.global.release(cpu, ticket.global).await,
            LockMode::Write => {
                let q = self.cohorts.queue_of(cpu.id());
                if !self.cohorts.handoff_or_surrender(cpu, q, self.budget).await {
                    self.global.release(cpu, ticket.global).await;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::{program, MachineConfig};

    use super::*;

    /// Two-word critical-section invariant under `procs` programs on
    /// the given machine, `iters` acquisitions each.
    fn exclusion_stress(mut m: Machine, lock: CohortLock, procs: usize, iters: u64) {
        let shared = m.alloc_subpage(16).unwrap();
        m.run(
            (0..procs)
                .map(|_| {
                    program(move |mut cpu| async move {
                        for _ in 0..iters {
                            lock.acquire(&mut cpu).await;
                            let a = cpu.read_u64(shared).await;
                            cpu.compute(31); // widen the race window
                            cpu.write_u64(shared, a + 1).await;
                            let b = cpu.read_u64(shared + 8).await;
                            assert_eq!(a, b, "critical-section invariant violated");
                            cpu.write_u64(shared + 8, b + 1).await;
                            lock.release(&mut cpu).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(shared).unwrap(), procs as u64 * iters);
        assert_eq!(m.peek_u64(shared + 8).unwrap(), procs as u64 * iters);
    }

    #[test]
    fn single_leaf_machine_collapses_to_one_cohort() {
        let mut m = Machine::ksr1(31).unwrap();
        let lock = CohortLock::alloc(&mut m).unwrap();
        assert_eq!(lock.cohorts(), 1);
        assert_eq!(lock.budget(), DEFAULT_HANDOFF_BUDGET);
        exclusion_stress(m, lock, 8, 6);
    }

    /// The asymmetric three-level 1024-cell tree: programs span three
    /// leaf rings, so handoffs exercise local, Ring:1, and the budget
    /// logic across cohorts.
    #[test]
    fn mutual_exclusion_on_asymmetric_deep_ring() {
        let mut m = Machine::new(MachineConfig::ksr_ring(33, &[32, 8, 4])).unwrap();
        let lock = CohortLock::with_budget(&mut m, 3).unwrap();
        assert_eq!(lock.cohorts(), 32);
        exclusion_stress(m, lock, 80, 2);
    }

    /// Degenerate two-cell leaves (`&[2, 2]` = four cells in cohorts of
    /// two): the smallest leaf the topology validator admits.
    #[test]
    fn mutual_exclusion_on_degenerate_two_cell_leaves() {
        let mut m = Machine::new(MachineConfig::ksr_ring(34, &[2, 2])).unwrap();
        let lock = CohortLock::with_budget(&mut m, 2).unwrap();
        assert_eq!(lock.cohorts(), 2);
        exclusion_stress(m, lock, 4, 8);
    }

    /// Starvation-freedom across cohorts: a lone writer on another leaf
    /// enqueues globally while the first leaf floods the lock; the
    /// budget forces a global release after at most `budget` local
    /// handoffs, so the remote cell enters long before the flood ends.
    #[test]
    fn remote_cohort_is_not_starved_by_local_handoffs() {
        let mut m = Machine::new(MachineConfig::ksr_ring(35, &[32, 8, 4])).unwrap();
        let budget = 4;
        let lock = CohortLock::with_budget(&mut m, budget).unwrap();
        let counter = m.alloc_subpage(8).unwrap();
        let seen = m.alloc_subpage(8).unwrap();
        let locals = 16usize;
        let iters = 8u64;
        let mut progs: Vec<_> = (0..locals)
            .map(|_| {
                program(move |mut cpu| async move {
                    for _ in 0..iters {
                        lock.acquire(&mut cpu).await;
                        let v = cpu.read_u64(counter).await;
                        cpu.compute(200);
                        cpu.write_u64(counter, v + 1).await;
                        lock.release(&mut cpu).await;
                    }
                })
            })
            .collect();
        // Pad so the observer lands on cell 32 = the second leaf ring.
        progs.extend((locals..32).map(|_| program(move |mut cpu| async move { cpu.compute(1) })));
        progs.push(program(move |mut cpu| async move {
            cpu.compute(2_000); // arrive while the flood is in full swing
            lock.acquire(&mut cpu).await;
            let v = cpu.read_u64(counter).await;
            cpu.write_u64(seen, v + 1).await; // +1 distinguishes "ran" from 0
            lock.release(&mut cpu).await;
        }));
        m.run(progs).expect("run");
        let total = locals as u64 * iters;
        assert_eq!(m.peek_u64(counter).unwrap(), total);
        let seen = m.peek_u64(seen).unwrap();
        assert!(seen > 0, "the remote cell never got the lock");
        assert!(
            seen - 1 < total,
            "remote cohort was starved until the flood finished: saw {} of {total}",
            seen - 1
        );
    }

    /// FCFS within a cohort: with a huge budget and one cohort, grant
    /// order must equal local ticket order (strict arrival FCFS).
    #[test]
    fn grants_are_fcfs_within_a_cohort() {
        let mut m = Machine::ksr1(36).unwrap();
        let lock = CohortLock::with_budget(&mut m, u64::MAX).unwrap();
        let log = m.alloc_subpage(64).unwrap();
        let idx = m.alloc_subpage(8).unwrap();
        // Staggered arrivals: proc p arrives at ~p*3000 cycles while
        // proc 0 still holds the lock, so they queue in arrival order.
        m.run(
            (0..4u64)
                .map(|p| {
                    program(move |mut cpu| async move {
                        cpu.compute(1 + p * 3_000);
                        lock.acquire(&mut cpu).await;
                        if p == 0 {
                            cpu.compute(15_000); // hold across all arrivals
                        }
                        let i = cpu.read_u64(idx).await;
                        cpu.write_u64(log + i * 8, p + 1).await;
                        cpu.write_u64(idx, i + 1).await;
                        lock.release(&mut cpu).await;
                    })
                })
                .collect(),
        )
        .expect("run");
        for p in 0..4u64 {
            assert_eq!(
                m.peek_u64(log + p * 8).unwrap(),
                p + 1,
                "grant order must match arrival order"
            );
        }
    }

    #[test]
    fn rw_writers_exclude_and_readers_share() {
        let mut m = Machine::new(
            MachineConfig::ksr2(37).with_interrupts(ksr_machine::InterruptConfig::ksr_os()),
        )
        .unwrap();
        let lock = CohortRwLock::with_budget(&mut m, 2).unwrap();
        assert_eq!(lock.cohorts(), 2);
        let counter = m.alloc_subpage(8).unwrap();
        let procs = 12usize;
        let iters = 4u64;
        m.run(
            (0..procs)
                .map(|p| {
                    program(move |mut cpu| async move {
                        for i in 0..iters {
                            if (p as u64 + i).is_multiple_of(3) {
                                let t = lock.acquire(&mut cpu, LockMode::Write).await;
                                let v = cpu.read_u64(counter).await;
                                cpu.compute(17);
                                cpu.write_u64(counter, v + 1).await;
                                lock.release(&mut cpu, t).await;
                            } else {
                                let t = lock.acquire(&mut cpu, LockMode::Read).await;
                                let _ = cpu.read_u64(counter).await;
                                cpu.compute(17);
                                lock.release(&mut cpu, t).await;
                            }
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        let expected: u64 = (0..procs as u64)
            .map(|p| (0..iters).filter(|i| (p + i) % 3 == 0).count() as u64)
            .sum();
        assert_eq!(m.peek_u64(counter).unwrap(), expected, "no write was lost");
    }

    #[test]
    fn rw_readers_overlap_across_leaves() {
        let mut m = Machine::new(MachineConfig::ksr_ring(38, &[32, 2])).unwrap();
        let lock = CohortRwLock::alloc(&mut m).unwrap();
        let hold = 20_000u64;
        let readers = 40usize; // spans both leaf rings
        let r = m
            .run(
                (0..readers)
                    .map(|_| {
                        program(move |mut cpu| async move {
                            let t = lock.acquire(&mut cpu, LockMode::Read).await;
                            assert_eq!(t.mode(), LockMode::Read);
                            cpu.compute(hold);
                            lock.release(&mut cpu, t).await;
                        })
                    })
                    .collect(),
            )
            .expect("run");
        assert!(
            r.duration_cycles() < hold * readers as u64 / 2,
            "readers must overlap: {}",
            r.duration_cycles()
        );
    }

    /// Writer handoff inherits the open global write ticket: same-leaf
    /// writers chain without touching the global queue, and the final
    /// surrender releases it exactly once (a double release would
    /// corrupt `serving` and hang later acquirers).
    #[test]
    fn rw_writer_handoff_inherits_global_ticket() {
        let mut m = Machine::new(MachineConfig::ksr_ring(39, &[32, 2])).unwrap();
        let lock = CohortRwLock::with_budget(&mut m, 8).unwrap();
        let counter = m.alloc_subpage(8).unwrap();
        m.run(
            (0..6)
                .map(|_| {
                    program(move |mut cpu| async move {
                        for _ in 0..4 {
                            let t = lock.acquire(&mut cpu, LockMode::Write).await;
                            let v = cpu.read_u64(counter).await;
                            cpu.compute(23);
                            cpu.write_u64(counter, v + 1).await;
                            lock.release(&mut cpu, t).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(counter).unwrap(), 24);
        // The lock must still be serviceable after the storm.
        m.run(vec![program(move |mut cpu| async move {
            let t = lock.acquire(&mut cpu, LockMode::Write).await;
            let v = cpu.read_u64(counter).await;
            cpu.write_u64(counter, v + 1).await;
            lock.release(&mut cpu, t).await;
        })])
        .expect("run");
        assert_eq!(m.peek_u64(counter).unwrap(), 25);
    }
}

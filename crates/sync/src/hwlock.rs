//! The naive hardware exclusive lock of §3.2.1.
//!
//! "The KSR-1 hardware primitive get_sub_page provides an exclusive lock
//! on a sub-page for the requesting processor. This exclusive lock is
//! relinquished using the release_sub_page instruction. The hardware does
//! not guarantee FCFS to resolve lock contention but does guarantee
//! forward progress due to the unidirectionality of the ring."
//!
//! The paper's Figure 3 measures this lock against the software read/write
//! queue lock: it serializes *all* requests regardless of read-sharing,
//! which is exactly the weakness the experiment exposes.

use ksr_core::Result;
use ksr_machine::{Cpu, Machine};

/// Deterministic bounded exponential backoff between `get_sub_page`
/// retries: after the `n`-th consecutive rejection the requester
/// computes `min(base << n, cap)` cycles before retrying, relieving
/// ring pressure at high contention. Purely a function of the retry
/// count, so runs stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Pause after the first rejection, in cycles.
    pub base: u64,
    /// Upper bound on any single pause, in cycles.
    pub cap: u64,
}

impl BackoffConfig {
    /// A mild default: start near one ring round-trip, cap at ~16×.
    #[must_use]
    pub fn ksr1() -> Self {
        Self {
            base: 128,
            cap: 2_048,
        }
    }
}

/// An exclusive lock occupying one private sub-page.
#[derive(Debug, Clone, Copy)]
pub struct HwLock {
    addr: u64,
    backoff: Option<BackoffConfig>,
}

impl HwLock {
    /// Allocate the lock's sub-page. Backoff is off by default: every
    /// retry hits the ring immediately, exactly like the hardware the
    /// paper measured (and exactly the FIG3 artifact's behavior).
    pub fn alloc(m: &mut Machine) -> Result<Self> {
        Ok(Self {
            addr: m.alloc_subpage(8)?,
            backoff: None,
        })
    }

    /// Enable (or, with `None`, explicitly disable) retry backoff.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Option<BackoffConfig>) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sub-page address (diagnostics).
    #[must_use]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Spin until the sub-page is acquired atomically. Each retry is a
    /// fresh ring transaction, exactly like hardware spinning on
    /// `get_sub_page`; with a [`BackoffConfig`] the retries are paced
    /// by a deterministic bounded exponential pause.
    pub async fn acquire(&self, cpu: &mut Cpu) {
        match self.backoff {
            None => cpu.acquire_sub_page(self.addr).await,
            Some(b) => {
                let mut pause = b.base;
                while !cpu.get_sub_page(self.addr).await {
                    cpu.compute(pause.min(b.cap));
                    pause = pause.saturating_mul(2);
                }
            }
        }
    }

    /// One acquisition attempt.
    pub async fn try_acquire(&self, cpu: &mut Cpu) -> bool {
        cpu.get_sub_page(self.addr).await
    }

    /// Release the lock.
    pub async fn release(&self, cpu: &mut Cpu) {
        cpu.release_sub_page(self.addr).await;
    }
}

#[cfg(test)]
mod tests {
    use ksr_machine::program;

    use super::*;

    #[test]
    fn mutual_exclusion_holds() {
        let mut m = Machine::ksr1(3).unwrap();
        let lock = HwLock::alloc(&mut m).unwrap();
        let shared = m.alloc_subpage(16).unwrap();
        // Two words updated non-atomically inside the critical section;
        // they stay equal only if the lock excludes.
        m.poke_u64(shared, 0).unwrap();
        m.poke_u64(shared + 8, 0).unwrap();
        m.run(
            (0..8)
                .map(|_| {
                    program(move |mut cpu| async move {
                        for _ in 0..10 {
                            lock.acquire(&mut cpu).await;
                            let a = cpu.read_u64(shared).await;
                            cpu.compute(37); // widen the race window
                            cpu.write_u64(shared, a + 1).await;
                            let b = cpu.read_u64(shared + 8).await;
                            assert_eq!(a, b, "critical-section invariant violated");
                            cpu.write_u64(shared + 8, b + 1).await;
                            lock.release(&mut cpu).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(shared).unwrap(), 80);
        assert_eq!(m.peek_u64(shared + 8).unwrap(), 80);
    }

    #[test]
    fn try_acquire_fails_while_held() {
        let mut m = Machine::ksr1(9).unwrap();
        let lock = HwLock::alloc(&mut m).unwrap();
        m.run(vec![
            program(move |mut cpu| async move {
                assert!(lock.try_acquire(&mut cpu).await);
                cpu.compute(5_000);
                lock.release(&mut cpu).await;
            }),
            program(move |mut cpu| async move {
                cpu.compute(1_000); // proc 0 holds the lock now
                assert!(!lock.try_acquire(&mut cpu).await, "lock is held");
                cpu.compute(10_000); // past the release
                assert!(lock.try_acquire(&mut cpu).await, "lock is free");
                lock.release(&mut cpu).await;
            }),
        ])
        .expect("run");
    }

    /// One contended run, returning (duration, total atomic rejections).
    fn contended_run(configure: fn(HwLock) -> HwLock) -> (u64, u64) {
        let mut m = Machine::ksr1(17).unwrap();
        let lock = configure(HwLock::alloc(&mut m).unwrap());
        let counter = m.alloc_subpage(8).unwrap();
        let r = m
            .run(
                (0..16)
                    .map(|_| {
                        program(move |mut cpu| async move {
                            for _ in 0..5 {
                                lock.acquire(&mut cpu).await;
                                let v = cpu.read_u64(counter).await;
                                cpu.compute(500);
                                cpu.write_u64(counter, v + 1).await;
                                lock.release(&mut cpu).await;
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        assert_eq!(m.peek_u64(counter).unwrap(), 80);
        (r.duration_cycles(), m.perfmon_total().atomic_rejections)
    }

    /// `with_backoff(None)` must be indistinguishable from a lock that
    /// never saw the builder — the artifact-stability guarantee behind
    /// the committed FIG3 results.
    #[test]
    fn disabled_backoff_is_identical_to_default() {
        assert_eq!(
            contended_run(|lock| lock),
            contended_run(|lock| lock.with_backoff(None))
        );
    }

    /// Pacing the retries must cut rejected ring transactions without
    /// losing any increments.
    #[test]
    fn backoff_reduces_atomic_rejections() {
        let (_, rejections_plain) = contended_run(|lock| lock);
        let (_, rejections_paced) =
            contended_run(|lock| lock.with_backoff(Some(BackoffConfig::ksr1())));
        assert!(
            rejections_paced < rejections_plain / 2,
            "backoff must relieve ring pressure: {rejections_paced} vs {rejections_plain}"
        );
    }

    #[test]
    fn forward_progress_under_heavy_contention() {
        let mut m = Machine::ksr1(17).unwrap();
        let lock = HwLock::alloc(&mut m).unwrap();
        let counter = m.alloc_subpage(8).unwrap();
        m.run(
            (0..16)
                .map(|_| {
                    program(move |mut cpu| async move {
                        for _ in 0..5 {
                            lock.acquire(&mut cpu).await;
                            let v = cpu.read_u64(counter).await;
                            cpu.write_u64(counter, v + 1).await;
                            lock.release(&mut cpu).await;
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(counter).unwrap(), 80);
    }
}

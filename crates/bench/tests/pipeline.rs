//! The machine-readable experiment pipeline, end to end: registry →
//! run → `<id>.json` → `summary.json`.

use std::path::PathBuf;

use ksr_bench::common::{write_summary, RunOpts};
use ksr_bench::registry::{find, Experiment, REGISTRY};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ksr_pipeline_{tag}_{}", std::process::id()))
}

/// `summary.json` must name every registered experiment id — the
/// contract `run_all` (and anything consuming `results/`) relies on.
#[test]
fn summary_names_every_registered_experiment() {
    let dir = temp_dir("summary");
    let opts = RunOpts {
        quick: true,
        seed: 0,
        results_dir: dir.clone(),
        ..RunOpts::default()
    };
    // Summary metadata comes from the outputs' id/title fields, which the
    // registry provides without running the (slow) sweeps.
    let outputs: Vec<_> = REGISTRY
        .iter()
        .map(|e| ksr_bench::ExperimentOutput::new(e.id(), e.title()))
        .collect();
    let path = write_summary(&outputs, &opts).unwrap();
    let body = std::fs::read_to_string(path).unwrap();
    for e in REGISTRY {
        assert!(
            body.contains(&format!("\"id\": \"{}\"", e.id())),
            "summary.json is missing {}",
            e.id()
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// One real experiment through the whole pipeline in quick mode: the
/// registry resolves it, the run emits typed rows, and write_to lands
/// txt + json artifacts.
#[test]
fn quick_run_writes_typed_json_results() {
    let dir = temp_dir("run");
    let opts = RunOpts {
        quick: true,
        seed: 0,
        results_dir: dir.clone(),
        ..RunOpts::default()
    };
    let exp = find("SEC31A").expect("registered");
    let out = exp.run(&opts);
    assert_eq!(out.id, "SEC31A");
    assert!(!out.rows.is_empty(), "experiments must emit typed rows");
    out.write_to(&opts.results_dir).unwrap();
    let json = std::fs::read_to_string(dir.join("sec31a.json")).unwrap();
    assert!(json.contains("\"id\": \"SEC31A\""));
    assert!(json.contains("\"metric\": \"mean_access_seconds\""));
    assert!(json.contains("\"stride_bytes\": 16384"));
    assert!(dir.join("sec31a.txt").exists());
    let _ = std::fs::remove_dir_all(dir);
}

/// The seed in RunOpts perturbs machine seeds; the default leaves the
/// baseline untouched.
#[test]
fn seed_perturbs_machine_seeds() {
    let base = RunOpts::default();
    let perturbed = RunOpts {
        seed: 0xDEAD,
        ..RunOpts::default()
    };
    assert_eq!(base.machine_seed(500), 500);
    assert_ne!(perturbed.machine_seed(500), 500);
}

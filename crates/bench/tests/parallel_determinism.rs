//! Tier-1 determinism gate for the parallel executor: running the same
//! experiment selection at `-j1` and `-j8` must produce byte-identical
//! result files — `summary.json`, every per-experiment `.json`/`.txt`/
//! `.csv`, and (under `--check`) `violations.json`.
//!
//! Uses the cheap experiments (FIG4, SEC323, EP, TAB3), the lock
//! crossover sweep (LCK, whose cohort lock must also stay silent under
//! the predictive passes), and the schedule explorer (EXPLORE, whose
//! predictive passes hash schedule states across processes) in quick
//! mode so the gate stays debug-build friendly.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use ksr_bench::common::write_summary;
use ksr_bench::registry::{find, Experiment};
use ksr_bench::{check, exec, RunOpts};
use ksr_core::Progress;

const IDS: [&str; 6] = ["FIG4", "SEC323", "EP", "TAB3", "LCK", "EXPLORE"];

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ksr_parallel_determinism_{}_{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    dir
}

/// Plan, execute, and persist the selection exactly the way the CLI
/// does (minus stdout rendering), at the given worker count.
fn run_at(jobs: usize, dir: &Path) {
    let opts = RunOpts {
        quick: true,
        jobs,
        check: true,
        results_dir: dir.to_path_buf(),
        ..RunOpts::default()
    };
    let plans = IDS
        .iter()
        .map(|id| find(id).expect("registered id").plan(&opts))
        .collect();
    let report = exec::execute(plans, &opts, &Progress::disabled());
    assert_eq!(report.results.len(), IDS.len());
    let mut outputs = Vec::new();
    let mut checks = Vec::new();
    for (id, result) in IDS.iter().zip(report.results) {
        result
            .output
            .write_to(&opts.results_dir)
            .expect("write result files");
        checks.push((
            *id,
            result.check.expect("check mode collects per-job sinks"),
        ));
        outputs.push(result.output);
    }
    write_summary(&outputs, &opts).expect("write summary");
    let (path, clean) = check::finalize(&checks, &opts).expect("write violations");
    assert!(path.ends_with("violations.json"));
    assert!(clean, "the stock protocol must check clean");
}

fn file_names(dir: &Path) -> BTreeSet<String> {
    fs::read_dir(dir)
        .expect("read results dir")
        .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
        .collect()
}

#[test]
fn results_are_byte_identical_across_worker_counts() {
    let serial_dir = fresh_dir("j1");
    let parallel_dir = fresh_dir("j8");
    run_at(1, &serial_dir);
    run_at(8, &parallel_dir);

    let names = file_names(&serial_dir);
    assert_eq!(
        names,
        file_names(&parallel_dir),
        "both runs must produce the same artifact set"
    );
    assert!(names.contains("summary.json"));
    assert!(names.contains("violations.json"));
    assert!(names.contains("fig4.json"));
    assert!(names.contains("explore.json"));
    for name in &names {
        let a = fs::read(serial_dir.join(name)).expect("read serial artifact");
        let b = fs::read(parallel_dir.join(name)).expect("read parallel artifact");
        assert_eq!(a, b, "{name} must be byte-identical between -j1 and -j8");
    }

    let _ = fs::remove_dir_all(serial_dir);
    let _ = fs::remove_dir_all(parallel_dir);
}

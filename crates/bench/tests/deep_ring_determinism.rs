//! Deep-ring determinism gate: the 256-cell quick point of the SCB
//! scaling sweep must produce byte-identical artifacts at `-j1` and
//! `-j8` — every result file, `violations.json` from check mode, and
//! the rendered stdout.
//!
//! The worker-count gate in `parallel_determinism.rs` covers the paper
//! experiments on the 32/64-cell presets; this one pins the new
//! multi-level Topology machines (quick SCB builds ring[32x4] and
//! ring[32x8] trees), where a scheduling leak would be likeliest to
//! show up as cross-job nondeterminism.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const IDS: &str = "SCB";

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ksr_deep_ring_determinism_{}_{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    dir
}

/// Run the selection at the given worker count in a child process with
/// a scrubbed environment; returns the rendered stdout.
fn run_jobs(jobs: &str, dir: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args([
            "--quick", "--check", "--jobs", jobs, "--seed", "0", "--only", IDS,
        ])
        .arg("--results")
        .arg(dir)
        .env_remove("KSR_QUICK")
        .env_remove("KSR_SEED")
        .env_remove("KSR_RESULTS")
        .env_remove("KSR_JOBS")
        .env_remove("KSR_CHECK")
        .env_remove("KSR_CACHE")
        .output()
        .expect("spawn run_all");
    assert!(
        out.status.success(),
        "run_all at -j{jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("rendered results are utf-8")
}

#[test]
fn deep_ring_artifacts_are_identical_at_any_worker_count() {
    let serial_dir = fresh_dir("j1");
    let parallel_dir = fresh_dir("j8");
    let serial_stdout = run_jobs("1", &serial_dir);
    let parallel_stdout = run_jobs("8", &parallel_dir);

    assert_eq!(
        serial_stdout, parallel_stdout,
        "rendered output diverged between -j1 and -j8"
    );

    let file_names = |dir: &Path| -> BTreeSet<String> {
        fs::read_dir(dir)
            .expect("read results dir")
            .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
            .collect()
    };
    let names = file_names(&serial_dir);
    assert_eq!(
        names,
        file_names(&parallel_dir),
        "the worker counts wrote different file sets"
    );
    assert!(
        names.contains("violations.json"),
        "check mode must produce violations.json: {names:?}"
    );
    for name in &names {
        if name == "timings.json" {
            continue; // wall-clock times: legitimately nondeterministic
        }
        let serial = fs::read(serial_dir.join(name)).expect("read -j1 file");
        let parallel = fs::read(parallel_dir.join(name)).expect("read -j8 file");
        assert_eq!(
            serial, parallel,
            "determinism violation: {name} differs between -j1 and -j8"
        );
    }

    let _ = fs::remove_dir_all(serial_dir);
    let _ = fs::remove_dir_all(parallel_dir);
}

//! Tier-1 gate for the sweep-at-scale machinery: the content-addressed
//! results cache and round-robin sharding must never change what a run
//! produces — only whether jobs execute.
//!
//! Covered here, end-to-end over real registry experiments (TAB3 and
//! TAB4 in quick mode, so the gate stays debug-build friendly):
//!
//! * a warm re-run hits on every job and writes byte-identical
//!   artifacts;
//! * changing the run seed misses on every job (no stale reuse);
//! * a corrupted cache entry degrades to a miss — the job re-runs and
//!   the artifacts stay byte-identical, never wrong;
//! * `--shard 1/2` ∪ `--shard 2/2` followed by a join reduces to
//!   artifacts byte-identical to an unsharded run without executing
//!   anything.

use std::fs;
use std::path::{Path, PathBuf};

use ksr_bench::common::write_summary;
use ksr_bench::registry::find;
use ksr_bench::{exec, CacheStats, Experiment, RunOpts, Shard};
use ksr_core::Progress;

const IDS: [&str; 2] = ["TAB3", "TAB4"];

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksr_sweep_cache_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn opts(seed: u64, cache: Option<&Path>, results: &Path) -> RunOpts {
    RunOpts {
        quick: true,
        seed,
        jobs: 2,
        cache: cache.map(Path::to_path_buf),
        results_dir: results.to_path_buf(),
        ..RunOpts::default()
    }
}

fn plans(opts: &RunOpts) -> Vec<exec::ExperimentPlan> {
    IDS.iter()
        .map(|id| find(id).expect("registered id").plan(opts))
        .collect()
}

/// Execute the selection and persist its artifacts the way `run_all`
/// does; returns the cache counters.
fn run_and_persist(opts: &RunOpts) -> Option<CacheStats> {
    let report = exec::execute(plans(opts), opts, &Progress::disabled());
    let mut outputs = Vec::new();
    for result in report.results {
        result
            .output
            .write_to(&opts.results_dir)
            .expect("write result files");
        outputs.push(result.output);
    }
    write_summary(&outputs, opts).expect("write summary");
    report.cache
}

/// Every artifact in `dir` as (name, bytes), sorted by name.
fn artifacts(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("read results dir")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().into_string().unwrap(),
                fs::read(e.path()).expect("read artifact"),
            )
        })
        .collect();
    files.sort();
    files
}

fn total_jobs(opts: &RunOpts) -> usize {
    plans(opts).iter().map(|p| p.jobs().len()).sum()
}

#[test]
fn warm_runs_hit_everything_and_reproduce_artifacts_exactly() {
    let cache = fresh_dir("warm_cache");
    let cold_dir = fresh_dir("warm_cold");
    let warm_dir = fresh_dir("warm_warm");
    let n = total_jobs(&opts(0, None, &cold_dir));
    assert!(n >= 2, "selection too small to be a meaningful gate");

    let cold = run_and_persist(&opts(0, Some(&cache), &cold_dir)).expect("cache active");
    assert_eq!(
        cold,
        CacheStats {
            hits: 0,
            misses: n,
            skipped: 0
        }
    );

    let warm = run_and_persist(&opts(0, Some(&cache), &warm_dir)).expect("cache active");
    assert_eq!(
        warm,
        CacheStats {
            hits: n,
            misses: 0,
            skipped: 0
        },
        "a warm re-run must execute zero jobs"
    );
    assert_eq!(
        artifacts(&cold_dir),
        artifacts(&warm_dir),
        "cached rows must reduce to byte-identical artifacts"
    );

    // A different run seed is a different descriptor: all misses, and
    // the stale entries stay untouched for their own seed.
    let other_dir = fresh_dir("warm_other");
    let other = run_and_persist(&opts(1, Some(&cache), &other_dir)).expect("cache active");
    assert_eq!(
        other,
        CacheStats {
            hits: 0,
            misses: n,
            skipped: 0
        },
        "a new seed must never reuse old rows"
    );

    for dir in [cache, cold_dir, warm_dir, other_dir] {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn corrupted_entries_degrade_to_misses_not_wrong_results() {
    let cache = fresh_dir("corrupt_cache");
    let cold_dir = fresh_dir("corrupt_cold");
    let rerun_dir = fresh_dir("corrupt_rerun");
    let n = total_jobs(&opts(0, None, &cold_dir));

    let cold = run_and_persist(&opts(0, Some(&cache), &cold_dir)).expect("cache active");
    assert_eq!(cold.misses, n);

    // Truncate one entry mid-file: its validation must fail closed.
    let victim = fs::read_dir(&cache)
        .expect("read cache dir")
        .map(|e| e.expect("dir entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("cache has entries");
    let bytes = fs::read(&victim).expect("read entry");
    fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate entry");

    let rerun = run_and_persist(&opts(0, Some(&cache), &rerun_dir)).expect("cache active");
    assert_eq!(
        rerun,
        CacheStats {
            hits: n - 1,
            misses: 1,
            skipped: 0
        },
        "exactly the corrupted entry must re-run"
    );
    assert_eq!(
        artifacts(&cold_dir),
        artifacts(&rerun_dir),
        "the re-executed job must restore identical artifacts"
    );

    for dir in [cache, cold_dir, rerun_dir] {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn sharded_halves_join_to_an_unsharded_run_byte_for_byte() {
    let cache = fresh_dir("shard_cache");
    let plain_dir = fresh_dir("shard_plain");
    let join_dir = fresh_dir("shard_join");
    let n = total_jobs(&opts(0, None, &plain_dir));

    // Reference: an unsharded, uncached run.
    let plain = run_and_persist(&opts(0, None, &plain_dir));
    assert!(plain.is_none(), "no cache configured for the reference run");

    // Both halves, at different worker counts for good measure.
    let mut executed = 0;
    for (index, jobs) in [(1, 1), (2, 4)] {
        let mut o = opts(0, Some(&cache), &join_dir);
        o.jobs = jobs;
        o.shard = Some(Shard { index, count: 2 });
        let report = exec::execute_shard(plans(&o), &o, &Progress::disabled());
        assert_eq!(report.total_jobs, n);
        assert_eq!(report.cache.hits, 0, "fresh cache: nothing to hit");
        assert_eq!(
            report.cache.misses + report.cache.skipped,
            n,
            "every job is either owned or left to the other shard"
        );
        executed += report.cache.misses;
    }
    assert_eq!(
        executed, n,
        "the two shards must cover the job list exactly"
    );

    // The join is a warm run: zero executions, identical artifacts.
    let join = run_and_persist(&opts(0, Some(&cache), &join_dir)).expect("cache active");
    assert_eq!(
        join,
        CacheStats {
            hits: n,
            misses: 0,
            skipped: 0
        }
    );
    assert_eq!(
        artifacts(&plain_dir),
        artifacts(&join_dir),
        "a sharded+joined run must be byte-identical to an unsharded one"
    );

    for dir in [cache, plain_dir, join_dir] {
        let _ = fs::remove_dir_all(dir);
    }
}

//! Dual-core differential gate: the event-driven coordinator and the
//! threaded oracle (`KSR_CORE=threaded`) must produce byte-identical
//! artifacts for the same experiment selection — every result file,
//! `violations.json` from check mode, and the rendered stdout.
//!
//! The core is chosen once per process (the `KSR_CORE` lookup is
//! cached), so each run is a separate `run_all` invocation via
//! `CARGO_BIN_EXE_run_all` rather than an in-process call.
//!
//! Uses the cheap experiments (FIG4, SEC323, EP, TAB3) in quick mode so
//! the gate stays debug-build friendly, mirroring the worker-count
//! determinism gate in `parallel_determinism.rs`.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const IDS: &str = "FIG4,SEC323,EP,TAB3";

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ksr_core_differential_{}_{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp results dir");
    dir
}

/// Run the selection under the named core in a child process with a
/// scrubbed environment; returns the rendered stdout.
fn run_core(core: &str, dir: &Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args([
            "--quick", "--check", "--jobs", "1", "--seed", "0", "--only", IDS,
        ])
        .arg("--results")
        .arg(dir)
        .env("KSR_CORE", core)
        .env_remove("KSR_QUICK")
        .env_remove("KSR_SEED")
        .env_remove("KSR_RESULTS")
        .env_remove("KSR_JOBS")
        .env_remove("KSR_CHECK")
        .output()
        .expect("spawn run_all");
    assert!(
        out.status.success(),
        "run_all on the {core} core failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("rendered results are utf-8")
}

fn file_names(dir: &Path) -> BTreeSet<String> {
    fs::read_dir(dir)
        .expect("read results dir")
        .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
        .collect()
}

#[test]
fn event_and_threaded_cores_produce_identical_artifacts() {
    let event_dir = fresh_dir("event");
    let threaded_dir = fresh_dir("threaded");
    let event_stdout = run_core("event", &event_dir);
    let threaded_stdout = run_core("threaded", &threaded_dir);

    assert_eq!(
        event_stdout, threaded_stdout,
        "rendered output diverged between cores"
    );

    let names = file_names(&event_dir);
    assert_eq!(
        names,
        file_names(&threaded_dir),
        "the cores wrote different file sets"
    );
    assert!(
        names.contains("violations.json"),
        "check mode must produce violations.json: {names:?}"
    );
    for name in &names {
        if name == "timings.json" {
            continue; // wall-clock times: legitimately nondeterministic
        }
        let event = fs::read(event_dir.join(name)).expect("read event-core file");
        let threaded = fs::read(threaded_dir.join(name)).expect("read threaded-core file");
        assert_eq!(
            event, threaded,
            "core divergence: {name} differs between the event core and the threaded oracle"
        );
    }

    let _ = fs::remove_dir_all(event_dir);
    let _ = fs::remove_dir_all(threaded_dir);
}

//! Criterion micro-benchmarks of the simulator's own hot paths: how fast
//! the host machine can push simulated cycles. These guard the
//! simulator's throughput (the experiments replay millions of memory
//! operations), not the KSR-1's performance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ksr_core::XorShift64;
use ksr_machine::{program, Cpu, Machine};
use ksr_mem::{CacheTiming, MemGeometry, MemOp, MemorySystem};
use ksr_net::{Fabric, PacketKind, RingConfig, SlottedRing};
use ksr_sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode};

fn bench_ring_transact(c: &mut Criterion) {
    c.bench_function("ring/transact", |b| {
        b.iter_batched_ref(
            || SlottedRing::new(RingConfig::ksr1_leaf()).unwrap(),
            |ring| {
                let mut t = 0u64;
                for i in 0..100u64 {
                    t += 200;
                    let _ = ring.transact(t, (i % 2) as usize, PacketKind::ReadData);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_protocol_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.bench_function("subcache_hit", |b| {
        let mut mem = MemorySystem::new(
            MemGeometry::ksr1(),
            CacheTiming::ksr1(),
            Fabric::ksr1_32().unwrap(),
            4,
            1,
        )
        .unwrap();
        mem.warm(0, 0, 4096);
        let _ = mem.access(0, 0, MemOp::Read, 0);
        let mut now = 100u64;
        b.iter(|| {
            now += 10;
            std::hint::black_box(mem.access(0, 0, MemOp::Read, now))
        });
    });
    g.bench_function("remote_miss_stream", |b| {
        b.iter_batched_ref(
            || {
                let mut mem = MemorySystem::new(
                    MemGeometry::ksr1(),
                    CacheTiming::ksr1(),
                    Fabric::ksr1_32().unwrap(),
                    4,
                    1,
                )
                .unwrap();
                mem.warm(1, 0, 1 << 20);
                mem
            },
            |mem| {
                let mut now = 0u64;
                for i in 0..64u64 {
                    now += 300;
                    std::hint::black_box(mem.access(0, i * 128, MemOp::Read, now));
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_machine_roundtrip(c: &mut Criterion) {
    // Full coordinator round-trip cost per simulated memory operation.
    c.bench_function("machine/roundtrip_1k_ops", |b| {
        b.iter_batched(
            || Machine::ksr1(1).unwrap(),
            |mut m| {
                let a = m.alloc_subpage(8).unwrap();
                m.run(vec![program(move |cpu: &mut Cpu| {
                    for i in 0..1_000u64 {
                        cpu.write_u64(a, i);
                    }
                })]);
                m
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_barrier_episode(c: &mut Criterion) {
    c.bench_function("machine/tournament_flag_episode_8p", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::ksr1(1).unwrap();
                let bar = AnyBarrier::alloc(BarrierKind::TournamentFlag, &mut m, 8).unwrap();
                (m, bar)
            },
            |(mut m, bar)| {
                m.run(
                    (0..8)
                        .map(|_| {
                            program(move |cpu: &mut Cpu| {
                                let mut ep = Episode::default();
                                for _ in 0..4 {
                                    bar.wait(cpu, &mut ep);
                                }
                            })
                        })
                        .collect(),
                );
                m
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("core/xorshift64", |b| {
        let mut rng = XorShift64::new(42);
        b.iter(|| std::hint::black_box(rng.next_u64()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ring_transact, bench_protocol_access, bench_machine_roundtrip,
              bench_barrier_episode, bench_rng
}
criterion_main!(benches);

//! Criterion benches, one per table/figure of the paper (reduced sweeps —
//! the full experiment binaries in `src/bin/` regenerate the complete
//! artifacts; these track that each experiment stays runnable and its
//! simulation cost does not regress).

use criterion::{criterion_group, criterion_main, Criterion};
use ksr_bench::fig4_barriers::{episode_time, BarrierMachine};
use ksr_bench::{ep_scaling, fig2_latency, table1_cg, table2_is, table3_sp};
use ksr_nas::{CgConfig, IsConfig, SpConfig};
use ksr_sync::BarrierKind;

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2/remote_read_point_8procs", |b| {
        b.iter(|| std::hint::black_box(fig2_latency::run(true)));
    });
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    for kind in [BarrierKind::Counter, BarrierKind::TournamentFlag, BarrierKind::Dissemination] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                std::hint::black_box(episode_time(BarrierMachine::Ksr1, kind, 8, 4, 1))
            });
        });
    }
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5/ksr2_tournament_flag_40p", |b| {
        b.iter(|| {
            std::hint::black_box(episode_time(
                BarrierMachine::Ksr2,
                BarrierKind::TournamentFlag,
                40,
                3,
                1,
            ))
        });
    });
}

fn bench_sec323(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec323");
    g.bench_function("symmetry_counter", |b| {
        b.iter(|| std::hint::black_box(episode_time(BarrierMachine::Symmetry, BarrierKind::Counter, 8, 4, 1)));
    });
    g.bench_function("butterfly_dissemination", |b| {
        b.iter(|| {
            std::hint::black_box(episode_time(
                BarrierMachine::Butterfly,
                BarrierKind::Dissemination,
                8,
                4,
                1,
            ))
        });
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    let cg = CgConfig { n: 140, offdiag_per_row: 14, iterations: 2, seed: 1, ..Default::default() };
    g.bench_function("tab1_cg_4p", |b| {
        b.iter(|| std::hint::black_box(table1_cg::cg_time(cg, 4, 1)));
    });
    let is = IsConfig { keys: 1 << 12, max_key: 1 << 8, seed: 1, chunk: 64 };
    g.bench_function("tab2_is_4p", |b| {
        b.iter(|| std::hint::black_box(table2_is::is_time(is, 4, 1)));
    });
    let sp = SpConfig { n: 8, iterations: 1, ..SpConfig::default() };
    g.bench_function("tab3_sp_4p", |b| {
        b.iter(|| std::hint::black_box(table3_sp::sp_time_per_iter(sp, 4, 1)));
    });
    g.bench_function("ep_4p", |b| {
        b.iter(|| {
            std::hint::black_box(ep_scaling::ep_time(
                ksr_nas::EpConfig { pairs: 1 << 12, ..Default::default() },
                4,
                1,
            ))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig4, bench_fig5, bench_sec323, bench_tables
}
criterion_main!(benches);

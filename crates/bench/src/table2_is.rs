//! TAB2 — Integer Sort scalability (§3.3.2, Table 2).
//!
//! Runs the scaled IS problem (2^16 keys against the paper's 2^23, with
//! the caches scaled by the same factor so the key/rank arrays still
//! overflow one local cache at low processor counts) for the paper's
//! processor counts including the 30-vs-32 pair that exposes ring
//! saturation.

use ksr_core::metrics::ScalingTable;
use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::Machine;
use ksr_nas::{IsConfig, IsSetup};

use crate::common::{ExperimentOutput, MetricRow, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};
use crate::table1_cg::SCALE;

/// Registry id.
pub const ID: &str = "TAB2";
/// Registry title.
pub const TITLE: &str = "Integer Sort (Table 2, Figure 8)";
/// Cache schema version of the TAB2 jobs — bump when [`is_time`] or the
/// two-row job layout changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

/// Seconds for one IS run at `procs` processors. Also returns the mean
/// remote-access latency observed by the performance monitor — the
/// counter the authors used to attribute the 30→32 jump to the ring.
#[must_use]
pub fn is_time(cfg: IsConfig, procs: usize, seed: u64) -> (f64, f64) {
    let mut m = Machine::ksr1_scaled(seed, SCALE).expect("machine");
    let setup = IsSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    let lat = m.perfmon_total().mean_ring_latency();
    (
        cycles_to_seconds(r.duration_cycles(), m.config().clock_hz),
        lat,
    )
}

/// The scaled Table-2 configuration.
#[must_use]
pub fn paper_config(quick: bool) -> IsConfig {
    IsConfig {
        keys: if quick { 1 << 13 } else { 1 << 16 },
        max_key: if quick { 1 << 9 } else { 1 << 11 },
        seed: 1 << 23,
        chunk: 128,
    }
}

/// Plan Table 2: one job per processor count; each job reports both the
/// run time and the perfmon ring latency.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let cfg = paper_config(quick);
    let procs: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16, 30, 32]
    };
    let seed = opts.machine_seed(600);
    let jobs: Vec<Job> = procs
        .iter()
        .map(|&p| {
            let desc = JobDesc::new(ID, SCHEMA, format!("TAB2 is p={p}"), opts)
                .seed(seed)
                .param("keys", cfg.keys)
                .param("max_key", cfg.max_key)
                .param("chunk", cfg.chunk)
                .param("procs", p);
            Job::new(desc, p, move || {
                let (t, lat) = is_time(cfg, p, seed);
                vec![
                    MetricRow::new("is_run_seconds", &[], t, "s"),
                    MetricRow::new("mean_ring_latency_cycles", &[], lat, "cycles"),
                ]
            })
        })
        .collect();
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let times: Vec<(usize, f64)> = procs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, res.rows(i)[0].value))
            .collect();
        let lat_rows: Vec<(usize, f64)> = procs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, res.rows(i)[1].value))
            .collect();
        let table = ScalingTable::from_times(&times);
        out.push_text(&table.render(&format!(
            "Integer Sort, number of input keys = 2^{} (scaled 1/{SCALE})",
            cfg.keys.trailing_zeros()
        )));
        out.line(format_args!(
            "serial fraction monotonically increasing: {} (paper: yes — the algorithm, \
             not the architecture)",
            table.serial_fraction_monotonic_up()
        ));
        let t1 = times[0].1;
        for &(p, t) in &times {
            out.row("is_run_seconds", &[("procs", Json::from(p))], t, "s");
            out.row("speedup", &[("procs", Json::from(p))], t1 / t, "x");
        }
        out.push_text("perfmon mean remote latency (cycles) — the 30→32 rise is the ring:");
        for (p, lat) in lat_rows {
            out.line(format_args!("  {p:>2} procs: {lat:8.1}"));
            out.row(
                "mean_ring_latency_cycles",
                &[("procs", Json::from(p))],
                lat,
                "cycles",
            );
        }
        out
    })
}

/// Run Table 2 (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_scales_through_4_procs() {
        let cfg = paper_config(true);
        let (t1, _) = is_time(cfg, 1, 1);
        let (t4, _) = is_time(cfg, 4, 1);
        let s = t1 / t4;
        assert!(s > 2.0, "IS speedup at 4 procs = {s:.2}");
    }

    #[test]
    fn serial_fraction_rises_in_quick_table() {
        let out = run(&RunOpts::quick());
        assert!(out.text.contains("Serial Fraction"));
        assert!(out
            .rows
            .iter()
            .any(|r| r.metric == "mean_ring_latency_cycles"));
    }
}

//! Perf-regression harness: host wall-clock times for simulator
//! microworkloads.
//!
//! Everything else in this crate measures *simulated* time — cycle
//! counts that are byte-identical across hosts and worker counts. This
//! module is the one deliberate exception: it times how long the
//! *simulator itself* takes to run a fixed set of microworkloads, so a
//! change that slows the coordinator hot path down shows up as a number
//! instead of as a mysteriously longer CI run.
//!
//! The four cases drive the same code the real experiments drive (they
//! call the experiment modules' own workload functions, not copies):
//!
//! * `fig2_remote_read` — the Figure-2 latency probe: four processors
//!   stride-reading their ring neighbour's array. Maximal pressure on
//!   the coordinator request path and the directory.
//! * `lock_churn` — the Figure-3 hardware-lock workload: four
//!   processors contending on one `get_sub_page` lock.
//! * `barrier_episode` — one measured MCS-barrier episode across 16
//!   processors (plus the standard two warm-up episodes).
//! * `quick_is` — the quick-mode Integer Sort of Table 2 on four
//!   processors: the closest thing to a whole application.
//!
//! Results go to `bench.json` in the results directory. Wall times are
//! nondeterministic by nature, so — like `timings.json` — that file is
//! excluded from every byte-comparison determinism gate. Longer-term
//! trajectory (before/after numbers for each optimization PR, with the
//! host recorded) lives in the repo-root `BENCH_<n>.json` files; see
//! `EXPERIMENTS.md`.
//!
//! Timing protocol: each case runs `reps` times and reports the minimum
//! and mean wall seconds. The minimum is the comparison number — on a
//! noisy host it is the best available estimate of the undisturbed
//! cost. The simulated seconds each case also reports must never change
//! under a pure performance PR; the smoke test and the determinism gate
//! both lean on that.
//!
//! Gate mode (`--gate BASELINE`): after measuring, compare each case's
//! fresh minimum against the same case in a committed `bench.json` and
//! fail if any regresses past the tolerance (see [`GATE_RELATIVE_SLACK`]
//! and [`GATE_ABSOLUTE_FLOOR_SECONDS`]). On failure the baseline file is
//! left untouched so the gate stays red until the regression is fixed or
//! the baseline is deliberately re-recorded; on success the fresh report
//! replaces it as usual.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use ksr_core::Json;
use ksr_sync::BarrierKind;

use crate::fig2_latency::{measure, Target};
use crate::fig3_locks::run_workload;
use crate::fig4_barriers::{episode_time, BarrierMachine};
use crate::table2_is::{is_time, paper_config};

/// One microworkload: a name, what it stresses, and a runner returning
/// the *simulated* seconds of the workload (the wall clock is the
/// harness's job).
#[derive(Debug)]
pub struct PerfCase {
    /// Stable case name (a JSON key in `bench.json`).
    pub name: &'static str,
    /// One-line description of what the case stresses.
    pub detail: &'static str,
    /// Run the workload once; returns simulated seconds.
    pub run: fn() -> f64,
}

/// Wall-clock result of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case name.
    pub name: &'static str,
    /// Minimum wall seconds over the repetitions (the comparison
    /// number).
    pub wall_seconds_min: f64,
    /// Mean wall seconds over the repetitions.
    pub wall_seconds_mean: f64,
    /// Simulated seconds the workload reported (identical every rep on
    /// a correct build — simulation results do not depend on the host).
    pub sim_seconds: f64,
}

/// The standard case set, in execution order.
#[must_use]
pub fn cases() -> Vec<PerfCase> {
    vec![
        PerfCase {
            name: "fig2_remote_read",
            detail: "4 procs stride-reading a ring neighbour's array (coordinator+directory)",
            run: || measure(Target::RemoteRead, 4, 128, 2048, 100),
        },
        PerfCase {
            name: "lock_churn",
            detail: "4 procs contending on the hardware get_sub_page lock (Figure 3 workload)",
            run: || run_workload(None, 4, 300),
        },
        PerfCase {
            name: "barrier_episode",
            detail: "one MCS barrier episode across 16 procs (plus standard warm-up)",
            run: || episode_time(BarrierMachine::Ksr1, BarrierKind::Mcs, 16, 1, 400),
        },
        PerfCase {
            name: "quick_is",
            detail: "quick-mode Integer Sort on 4 procs (Table 2 workload)",
            run: || is_time(paper_config(true), 4, 500).0,
        },
    ]
}

/// Run `cases` `reps` times each (at least once) and collect wall-clock
/// results.
#[must_use]
pub fn run_cases(cases: &[PerfCase], reps: usize) -> Vec<CaseResult> {
    let reps = reps.max(1);
    cases
        .iter()
        .map(|case| {
            let mut walls = Vec::with_capacity(reps);
            let mut sim = 0.0;
            for _ in 0..reps {
                let t0 = Instant::now();
                sim = (case.run)();
                walls.push(t0.elapsed().as_secs_f64());
            }
            let min = walls.iter().copied().fold(f64::INFINITY, f64::min);
            let mean = walls.iter().sum::<f64>() / walls.len() as f64;
            CaseResult {
                name: case.name,
                wall_seconds_min: min,
                wall_seconds_mean: mean,
                sim_seconds: sim,
            }
        })
        .collect()
}

/// JSON report for a set of case results: schema tag, host parallelism,
/// repetition count, per-case numbers, and the wall total.
#[must_use]
pub fn report(results: &[CaseResult], reps: usize) -> Json {
    let host = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let total: f64 = results.iter().map(|r| r.wall_seconds_min).sum();
    Json::obj([
        ("schema", Json::from("ksr-bench-perf-v1")),
        ("host_parallelism", Json::from(host)),
        ("reps", Json::from(reps)),
        (
            "cases",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::from(r.name)),
                            ("wall_seconds_min", Json::from(r.wall_seconds_min)),
                            ("wall_seconds_mean", Json::from(r.wall_seconds_mean)),
                            ("sim_seconds", Json::from(r.sim_seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_wall_seconds_min", Json::from(total)),
    ])
}

/// Relative regression tolerance for gate mode: a case may be up to 10%
/// slower than the baseline before it fails. This is the real contract
/// (the trajectory gating of ROADMAP item 5); the absolute floor below
/// only exists to keep it honest on tiny cases.
pub const GATE_RELATIVE_SLACK: f64 = 0.10;

/// Absolute regression floor for gate mode: on top of the relative
/// slack, a case must be at least this many wall seconds over the
/// baseline to fail. Sub-50ms minima (`barrier_episode`, `lock_churn`)
/// are dominated by scheduler noise on a busy host; without the floor
/// they would flap the gate on milliseconds.
pub const GATE_ABSOLUTE_FLOOR_SECONDS: f64 = 0.05;

/// Extract `(name, wall_seconds_min)` per case from a `bench.json`
/// produced by [`write_report`].
///
/// Deliberately not a general JSON parser: the baseline is this
/// harness's own output, rendered one field per line with `"name"`
/// preceding `"wall_seconds_min"` inside every case object, and the
/// schema tag is checked up front so anything else is rejected.
pub fn parse_baseline(body: &str) -> Result<Vec<(String, f64)>, String> {
    if !body.contains("\"schema\": \"ksr-bench-perf-v1\"") {
        return Err("baseline is not a ksr-bench-perf-v1 bench.json".into());
    }
    let mut out = Vec::new();
    let mut pending: Option<String> = None;
    for line in body.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            pending = rest.split('"').next().map(str::to_owned);
        } else if let Some(rest) = line.strip_prefix("\"wall_seconds_min\": ") {
            let raw = rest.trim_end_matches(',');
            let min: f64 = raw
                .parse()
                .map_err(|_| format!("bad wall_seconds_min value: {raw}"))?;
            if let Some(name) = pending.take() {
                out.push((name, min));
            }
        }
    }
    if out.is_empty() {
        return Err("baseline has no cases".into());
    }
    Ok(out)
}

/// Compare fresh results against a parsed baseline; returns one message
/// per gate failure (empty means the gate passes). A case present in
/// the baseline but missing from this build fails too — silently
/// dropping a slow case is the easiest way to cheat a perf gate.
#[must_use]
pub fn gate_failures(fresh: &[CaseResult], baseline: &[(String, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline {
        let Some(r) = fresh.iter().find(|r| r.name == name) else {
            failures.push(format!("{name}: in the baseline but not in this build"));
            continue;
        };
        let limit = (base * (1.0 + GATE_RELATIVE_SLACK)).max(base + GATE_ABSOLUTE_FLOOR_SECONDS);
        if r.wall_seconds_min > limit {
            failures.push(format!(
                "{name}: {:.3}s vs baseline {:.3}s (+{:.1}%, limit {:.3}s)",
                r.wall_seconds_min,
                base,
                (r.wall_seconds_min / base - 1.0) * 100.0,
                limit
            ));
        }
    }
    failures
}

/// Write `bench.json` under `dir`, creating the directory if needed.
pub fn write_report(doc: &Json, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("bench.json");
    let mut body = doc.render_pretty();
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Entry point for the `perf` binary:
/// `perf [--reps N] [--results DIR] [--gate BASELINE]`.
///
/// Prints the per-case numbers to stderr and the report path on
/// success; `bench.json` lands in the results directory (default from
/// `KSR_RESULTS`, like every other binary). With `--gate`, the fresh
/// minima are compared against the named baseline `bench.json` first
/// and a regression past the tolerance exits non-zero without touching
/// any file.
#[must_use]
pub fn perf_main() -> ExitCode {
    let mut reps = 3usize;
    let mut dir = crate::common::results_dir();
    let mut gate: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --reps needs a positive integer");
                    return ExitCode::from(2);
                };
                reps = v;
            }
            "--results" => {
                let Some(v) = args.next() else {
                    eprintln!("error: --results needs a directory");
                    return ExitCode::from(2);
                };
                dir = v.into();
            }
            "--gate" => {
                let Some(v) = args.next() else {
                    eprintln!("error: --gate needs a baseline bench.json path");
                    return ExitCode::from(2);
                };
                gate = Some(v.into());
            }
            other => {
                eprintln!(
                    "error: unknown argument: {other}\n\
                     usage: perf [--reps N] [--results DIR] [--gate BASELINE]"
                );
                return ExitCode::from(2);
            }
        }
    }
    // Parse the baseline before spending minutes measuring, so a bad
    // path or a stale schema fails immediately.
    let baseline = match &gate {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(body) => match parse_baseline(&body) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("error: bad gate baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: cannot read gate baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let reps = reps.max(1);
    let set = cases();
    eprintln!("[perf: {} case(s), {} rep(s) each]", set.len(), reps);
    let results = run_cases(&set, reps);
    for r in &results {
        eprintln!(
            "[perf: {:<18} min {:>8.3}s  mean {:>8.3}s  (sim {:.6}s)]",
            r.name, r.wall_seconds_min, r.wall_seconds_mean, r.sim_seconds
        );
    }
    if let Some(baseline) = baseline {
        let failures = gate_failures(&results, &baseline);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perf gate FAIL: {f}");
            }
            eprintln!(
                "perf gate: {} case(s) regressed more than {:.0}% (and {:.0}ms) \
                 over the baseline; bench.json left untouched",
                failures.len(),
                GATE_RELATIVE_SLACK * 100.0,
                GATE_ABSOLUTE_FLOOR_SECONDS * 1000.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[perf gate: all {} case(s) within tolerance]",
            results.len()
        );
    }
    let doc = report(&results, reps);
    match write_report(&doc, &dir) {
        Ok(path) => {
            eprintln!("[bench: {}]", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: could not write bench.json: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cases() -> Vec<PerfCase> {
        vec![
            PerfCase {
                name: "tiny_a",
                detail: "test stub",
                run: || 1.25,
            },
            PerfCase {
                name: "tiny_b",
                detail: "test stub",
                run: || 2.5,
            },
        ]
    }

    #[test]
    fn case_names_are_unique_and_stable() {
        let set = cases();
        assert_eq!(set.len(), 4);
        let names: Vec<_> = set.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            [
                "fig2_remote_read",
                "lock_churn",
                "barrier_episode",
                "quick_is"
            ]
        );
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn run_cases_clamps_reps_and_keeps_sim_seconds() {
        let results = run_cases(&tiny_cases(), 0);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].sim_seconds, 1.25);
        assert_eq!(results[1].sim_seconds, 2.5);
        assert!(results[0].wall_seconds_min <= results[0].wall_seconds_mean);
    }

    #[test]
    fn bench_json_has_the_documented_shape() {
        let dir = std::env::temp_dir().join(format!("ksr_perf_test_{}", std::process::id()));
        let results = run_cases(&tiny_cases(), 2);
        let doc = report(&results, 2);
        let path = write_report(&doc, &dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "bench.json");
        let body = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"schema\": \"ksr-bench-perf-v1\"",
            "\"host_parallelism\"",
            "\"reps\": 2",
            "\"name\": \"tiny_a\"",
            "\"name\": \"tiny_b\"",
            "\"wall_seconds_min\"",
            "\"wall_seconds_mean\"",
            "\"sim_seconds\"",
            "\"total_wall_seconds_min\"",
        ] {
            assert!(body.contains(key), "bench.json missing {key}:\n{body}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn baseline_round_trips_through_the_report() {
        let results = run_cases(&tiny_cases(), 1);
        let body = report(&results, 1).render_pretty();
        let baseline = parse_baseline(&body).unwrap();
        assert_eq!(baseline.len(), 2);
        assert_eq!(baseline[0].0, "tiny_a");
        assert_eq!(baseline[1].0, "tiny_b");
        assert_eq!(baseline[0].1, results[0].wall_seconds_min);
    }

    #[test]
    fn baseline_rejects_foreign_or_empty_documents() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": \"something-else\"}").is_err());
        let tagged = "{\n  \"schema\": \"ksr-bench-perf-v1\",\n  \"cases\": []\n}";
        assert!(parse_baseline(tagged).is_err(), "no cases means no gate");
    }

    fn fresh(name: &'static str, min: f64) -> CaseResult {
        CaseResult {
            name,
            wall_seconds_min: min,
            wall_seconds_mean: min,
            sim_seconds: 1.0,
        }
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_past_it() {
        let baseline = vec![("big".to_string(), 1.0)];
        // +9% is inside the relative slack.
        assert!(gate_failures(&[fresh("big", 1.09)], &baseline).is_empty());
        // +11% is past both the slack and the 50ms floor.
        let failures = gate_failures(&[fresh("big", 1.11)], &baseline);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("big"), "{failures:?}");
        assert!(failures[0].contains("baseline 1.000s"), "{failures:?}");
    }

    #[test]
    fn gate_absolute_floor_shields_tiny_cases() {
        // A 1ms case tripling is still under the 50ms floor: noise, not
        // a regression the gate should act on.
        let baseline = vec![("tiny".to_string(), 0.001)];
        assert!(gate_failures(&[fresh("tiny", 0.003)], &baseline).is_empty());
        // Past the floor it fails like any other case.
        let failures = gate_failures(&[fresh("tiny", 0.100)], &baseline);
        assert_eq!(failures.len(), 1);
    }

    #[test]
    fn gate_fails_on_a_dropped_case() {
        let baseline = vec![("gone".to_string(), 1.0)];
        let failures = gate_failures(&[fresh("other", 0.5)], &baseline);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("not in this build"), "{failures:?}");
    }

    // The real smoke test: one full pass over the standard cases with a
    // single rep. This is the only place in the unit suite that times
    // host wall clock; it asserts structure, never speed.
    #[test]
    fn standard_cases_run_and_report() {
        let results = run_cases(&cases(), 1);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(
                r.sim_seconds > 0.0 && r.sim_seconds.is_finite(),
                "{}: bad sim_seconds {}",
                r.name,
                r.sim_seconds
            );
            assert!(
                r.wall_seconds_min > 0.0 && r.wall_seconds_min.is_finite(),
                "{}: bad wall time",
                r.name
            );
        }
    }
}

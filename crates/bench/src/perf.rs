//! Perf-regression harness: host wall-clock times for simulator
//! microworkloads.
//!
//! Everything else in this crate measures *simulated* time — cycle
//! counts that are byte-identical across hosts and worker counts. This
//! module is the one deliberate exception: it times how long the
//! *simulator itself* takes to run a fixed set of microworkloads, so a
//! change that slows the coordinator hot path down shows up as a number
//! instead of as a mysteriously longer CI run.
//!
//! The four cases drive the same code the real experiments drive (they
//! call the experiment modules' own workload functions, not copies):
//!
//! * `fig2_remote_read` — the Figure-2 latency probe: four processors
//!   stride-reading their ring neighbour's array. Maximal pressure on
//!   the coordinator request path and the directory.
//! * `lock_churn` — the Figure-3 hardware-lock workload: four
//!   processors contending on one `get_sub_page` lock.
//! * `barrier_episode` — one measured MCS-barrier episode across 16
//!   processors (plus the standard two warm-up episodes).
//! * `quick_is` — the quick-mode Integer Sort of Table 2 on four
//!   processors: the closest thing to a whole application.
//!
//! Results go to `bench.json` in the results directory. Wall times are
//! nondeterministic by nature, so — like `timings.json` — that file is
//! excluded from every byte-comparison determinism gate. Longer-term
//! trajectory (before/after numbers for each optimization PR, with the
//! host recorded) lives in the repo-root `BENCH_<n>.json` files; see
//! `EXPERIMENTS.md`.
//!
//! Timing protocol: each case runs `reps` times and reports the minimum
//! and mean wall seconds. The minimum is the comparison number — on a
//! noisy host it is the best available estimate of the undisturbed
//! cost. The simulated seconds each case also reports must never change
//! under a pure performance PR; the smoke test and the determinism gate
//! both lean on that.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use ksr_core::Json;
use ksr_sync::BarrierKind;

use crate::fig2_latency::{measure, Target};
use crate::fig3_locks::run_workload;
use crate::fig4_barriers::{episode_time, BarrierMachine};
use crate::table2_is::{is_time, paper_config};

/// One microworkload: a name, what it stresses, and a runner returning
/// the *simulated* seconds of the workload (the wall clock is the
/// harness's job).
pub struct PerfCase {
    /// Stable case name (a JSON key in `bench.json`).
    pub name: &'static str,
    /// One-line description of what the case stresses.
    pub detail: &'static str,
    /// Run the workload once; returns simulated seconds.
    pub run: fn() -> f64,
}

/// Wall-clock result of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case name.
    pub name: &'static str,
    /// Minimum wall seconds over the repetitions (the comparison
    /// number).
    pub wall_seconds_min: f64,
    /// Mean wall seconds over the repetitions.
    pub wall_seconds_mean: f64,
    /// Simulated seconds the workload reported (identical every rep on
    /// a correct build — simulation results do not depend on the host).
    pub sim_seconds: f64,
}

/// The standard case set, in execution order.
#[must_use]
pub fn cases() -> Vec<PerfCase> {
    vec![
        PerfCase {
            name: "fig2_remote_read",
            detail: "4 procs stride-reading a ring neighbour's array (coordinator+directory)",
            run: || measure(Target::RemoteRead, 4, 128, 2048, 100),
        },
        PerfCase {
            name: "lock_churn",
            detail: "4 procs contending on the hardware get_sub_page lock (Figure 3 workload)",
            run: || run_workload(None, 4, 300),
        },
        PerfCase {
            name: "barrier_episode",
            detail: "one MCS barrier episode across 16 procs (plus standard warm-up)",
            run: || episode_time(BarrierMachine::Ksr1, BarrierKind::Mcs, 16, 1, 400),
        },
        PerfCase {
            name: "quick_is",
            detail: "quick-mode Integer Sort on 4 procs (Table 2 workload)",
            run: || is_time(paper_config(true), 4, 500).0,
        },
    ]
}

/// Run `cases` `reps` times each (at least once) and collect wall-clock
/// results.
#[must_use]
pub fn run_cases(cases: &[PerfCase], reps: usize) -> Vec<CaseResult> {
    let reps = reps.max(1);
    cases
        .iter()
        .map(|case| {
            let mut walls = Vec::with_capacity(reps);
            let mut sim = 0.0;
            for _ in 0..reps {
                let t0 = Instant::now();
                sim = (case.run)();
                walls.push(t0.elapsed().as_secs_f64());
            }
            let min = walls.iter().copied().fold(f64::INFINITY, f64::min);
            let mean = walls.iter().sum::<f64>() / walls.len() as f64;
            CaseResult {
                name: case.name,
                wall_seconds_min: min,
                wall_seconds_mean: mean,
                sim_seconds: sim,
            }
        })
        .collect()
}

/// JSON report for a set of case results: schema tag, host parallelism,
/// repetition count, per-case numbers, and the wall total.
#[must_use]
pub fn report(results: &[CaseResult], reps: usize) -> Json {
    let host = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let total: f64 = results.iter().map(|r| r.wall_seconds_min).sum();
    Json::obj([
        ("schema", Json::from("ksr-bench-perf-v1")),
        ("host_parallelism", Json::from(host)),
        ("reps", Json::from(reps)),
        (
            "cases",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::from(r.name)),
                            ("wall_seconds_min", Json::from(r.wall_seconds_min)),
                            ("wall_seconds_mean", Json::from(r.wall_seconds_mean)),
                            ("sim_seconds", Json::from(r.sim_seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_wall_seconds_min", Json::from(total)),
    ])
}

/// Write `bench.json` under `dir`, creating the directory if needed.
pub fn write_report(doc: &Json, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("bench.json");
    let mut body = doc.render_pretty();
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Entry point for the `perf` binary: `perf [--reps N] [--results DIR]`.
///
/// Prints the per-case numbers to stderr and the report path on
/// success; `bench.json` lands in the results directory (default from
/// `KSR_RESULTS`, like every other binary).
#[must_use]
pub fn perf_main() -> ExitCode {
    let mut reps = 3usize;
    let mut dir = crate::common::results_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --reps needs a positive integer");
                    return ExitCode::from(2);
                };
                reps = v;
            }
            "--results" => {
                let Some(v) = args.next() else {
                    eprintln!("error: --results needs a directory");
                    return ExitCode::from(2);
                };
                dir = v.into();
            }
            other => {
                eprintln!(
                    "error: unknown argument: {other}\nusage: perf [--reps N] [--results DIR]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let reps = reps.max(1);
    let set = cases();
    eprintln!("[perf: {} case(s), {} rep(s) each]", set.len(), reps);
    let results = run_cases(&set, reps);
    for r in &results {
        eprintln!(
            "[perf: {:<18} min {:>8.3}s  mean {:>8.3}s  (sim {:.6}s)]",
            r.name, r.wall_seconds_min, r.wall_seconds_mean, r.sim_seconds
        );
    }
    let doc = report(&results, reps);
    match write_report(&doc, &dir) {
        Ok(path) => {
            eprintln!("[bench: {}]", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: could not write bench.json: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cases() -> Vec<PerfCase> {
        vec![
            PerfCase {
                name: "tiny_a",
                detail: "test stub",
                run: || 1.25,
            },
            PerfCase {
                name: "tiny_b",
                detail: "test stub",
                run: || 2.5,
            },
        ]
    }

    #[test]
    fn case_names_are_unique_and_stable() {
        let set = cases();
        assert_eq!(set.len(), 4);
        let names: Vec<_> = set.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            [
                "fig2_remote_read",
                "lock_churn",
                "barrier_episode",
                "quick_is"
            ]
        );
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn run_cases_clamps_reps_and_keeps_sim_seconds() {
        let results = run_cases(&tiny_cases(), 0);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].sim_seconds, 1.25);
        assert_eq!(results[1].sim_seconds, 2.5);
        assert!(results[0].wall_seconds_min <= results[0].wall_seconds_mean);
    }

    #[test]
    fn bench_json_has_the_documented_shape() {
        let dir = std::env::temp_dir().join(format!("ksr_perf_test_{}", std::process::id()));
        let results = run_cases(&tiny_cases(), 2);
        let doc = report(&results, 2);
        let path = write_report(&doc, &dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "bench.json");
        let body = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"schema\": \"ksr-bench-perf-v1\"",
            "\"host_parallelism\"",
            "\"reps\": 2",
            "\"name\": \"tiny_a\"",
            "\"name\": \"tiny_b\"",
            "\"wall_seconds_min\"",
            "\"wall_seconds_mean\"",
            "\"sim_seconds\"",
            "\"total_wall_seconds_min\"",
        ] {
            assert!(body.contains(key), "bench.json missing {key}:\n{body}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    // The real smoke test: one full pass over the standard cases with a
    // single rep. This is the only place in the unit suite that times
    // host wall clock; it asserts structure, never speed.
    #[test]
    fn standard_cases_run_and_report() {
        let results = run_cases(&cases(), 1);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(
                r.sim_seconds > 0.0 && r.sim_seconds.is_finite(),
                "{}: bad sim_seconds {}",
                r.name,
                r.sim_seconds
            );
            assert!(
                r.wall_seconds_min > 0.0 && r.wall_seconds_min.is_finite(),
                "{}: bad wall time",
                r.name
            );
        }
    }
}

//! Pure jobs, canonical job descriptors, and the parallel experiment
//! executor.
//!
//! One experiment = an [`ExperimentPlan`]: a list of pure [`Job`]s
//! (config + seed + program factory → typed [`MetricRow`]s) plus an
//! ordered reduce that turns the per-job rows back into the experiment's
//! [`ExperimentOutput`]. Construction, execution, and reduction are
//! strictly separated — no experiment prints or writes mid-run.
//!
//! Every job carries a [`JobDesc`]: the canonical, hashable statement of
//! *what* the job computes (experiment id, schema version, label, mode
//! flags, seed, config parameters). Its fingerprint keys the
//! content-addressed results cache (`--cache DIR`), and the flattened
//! job index drives `--shard i/N` partitioning — both possible only
//! because jobs are pure functions of their descriptor.
//!
//! [`execute`] schedules every job of every plan over a pool of
//! `opts.jobs` scoped worker threads. Determinism is structural, not
//! accidental:
//!
//! * each job builds its own [`Machine`](ksr_machine::Machine)s from an
//!   explicit seed, and the simulator is deterministic per
//!   (config, seed) regardless of host scheduling;
//! * job results land in pre-assigned slots, so the reduce always sees
//!   them in job order no matter which worker finished first — or
//!   whether the rows came from the cache instead of a worker;
//! * reduces run on the caller's thread in plan order.
//!
//! Hence `results/*.json` and `summary.json` are byte-identical at any
//! `-j`, cold or warm. Wall-clock timings (the only nondeterministic
//! signal) are kept out of result files and reported separately via
//! [`ExperimentResult::seconds`] and [`CacheStats`].

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use ksr_core::{fingerprint, Fingerprint, Json, Progress};

use crate::cache::ResultsCache;
use crate::check::{CheckScope, ExpCheck};
use crate::common::{ExperimentOutput, MetricRow, RunOpts};

/// The canonical descriptor of one pure job — everything its closure's
/// result depends on, and nothing else (no wall-clock, no worker count,
/// no host details, which is why a cache entry written on one machine
/// hits on another).
///
/// Planners must route every input the closure captures through the
/// descriptor: the seed via [`JobDesc::seed`], each config knob (procs,
/// topology spec, sweep point, episode count, ...) via
/// [`JobDesc::param`]. The `quick`/`check` flags and the per-experiment
/// `schema_version` salt come from construction, so reduced sweeps,
/// checked runs, and code changes each key separately.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDesc {
    experiment: &'static str,
    schema: u32,
    label: String,
    quick: bool,
    check: bool,
    seed: u64,
    params: Vec<(String, Json)>,
}

impl JobDesc {
    /// Start a descriptor for one job of `experiment`.
    ///
    /// `schema` is the experiment's schema version: bump it whenever the
    /// meaning of the job's output changes (new workload shape, fixed
    /// model, different row layout) so stale cache entries miss instead
    /// of resurfacing.
    #[must_use]
    pub fn new(
        experiment: &'static str,
        schema: u32,
        label: impl Into<String>,
        opts: &RunOpts,
    ) -> Self {
        Self {
            experiment,
            schema,
            label: label.into(),
            quick: opts.quick,
            check: opts.check,
            seed: 0,
            params: Vec::new(),
        }
    }

    /// Set the machine seed the job builds from (after
    /// [`RunOpts::machine_seed`] perturbation).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Append one config parameter (insertion order is part of the
    /// canonical form, so keep call sites stable).
    #[must_use]
    pub fn param(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.params.push((key.to_string(), value.into()));
        self
    }

    /// The experiment this job belongs to.
    #[must_use]
    pub fn experiment(&self) -> &'static str {
        self.experiment
    }

    /// The experiment's schema version (bumped to re-key the cache).
    #[must_use]
    pub fn schema(&self) -> u32 {
        self.schema
    }

    /// Human-readable label (shown in progress lines).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The canonical serialized form: compact JSON with fields in fixed
    /// order. This exact string is hashed for the fingerprint and stored
    /// in cache entries for collision-proof validation, so any change to
    /// it invalidates existing caches (deliberately).
    #[must_use]
    pub fn canonical(&self) -> String {
        Json::obj([
            ("experiment", Json::from(self.experiment)),
            ("schema", Json::from(u64::from(self.schema))),
            ("label", Json::from(self.label.as_str())),
            ("quick", Json::from(self.quick)),
            ("check", Json::from(self.check)),
            ("seed", Json::from(self.seed)),
            ("params", Json::Obj(self.params.clone())),
        ])
        .render()
    }

    /// The cache key: the fingerprint of [`JobDesc::canonical`].
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint(self.canonical().as_bytes())
    }
}

/// One pure unit of work: a closure over config + seeds that builds its
/// own machines and returns typed rows, plus the [`JobDesc`] stating
/// exactly which (config, seed) point it is. No printing, no file I/O,
/// no shared state — which is what makes the grid schedulable in any
/// order on any number of workers, and cacheable by descriptor.
pub struct Job {
    desc: JobDesc,
    procs: usize,
    run: Box<dyn FnOnce() -> Vec<MetricRow> + Send>,
}

impl Job {
    /// A job returning arbitrarily many rows.
    pub fn new(
        desc: JobDesc,
        procs: usize,
        run: impl FnOnce() -> Vec<MetricRow> + Send + 'static,
    ) -> Self {
        Self {
            desc,
            procs,
            run: Box::new(run),
        }
    }

    /// The common single-measurement job: one `f64` becomes one row of
    /// `metric` (the reduce re-derives the fully parameterized rows).
    pub fn value(
        desc: JobDesc,
        procs: usize,
        metric: &str,
        unit: &str,
        f: impl FnOnce() -> f64 + Send + 'static,
    ) -> Self {
        let (metric, unit) = (metric.to_string(), unit.to_string());
        Self::new(desc, procs, move || {
            vec![MetricRow::new(&metric, &[], f(), &unit)]
        })
    }

    /// The job's canonical descriptor.
    #[must_use]
    pub fn desc(&self) -> &JobDesc {
        &self.desc
    }

    /// Human-readable label (shown in progress lines).
    #[must_use]
    pub fn label(&self) -> &str {
        self.desc.label()
    }

    /// Simulated processors the job's largest machine runs (informs
    /// scheduling heuristics and progress display).
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Run the job to completion on the current thread.
    #[must_use]
    pub fn execute(self) -> Vec<MetricRow> {
        (self.run)()
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("desc", &self.desc)
            .field("procs", &self.procs)
            .finish_non_exhaustive()
    }
}

/// Per-job row lists, in job order — what an [`ExperimentPlan`]'s
/// reduce receives.
#[derive(Debug)]
pub struct JobResults {
    rows: Vec<Vec<MetricRow>>,
}

impl JobResults {
    /// Results for `jobs.len()` jobs, in job order.
    #[must_use]
    pub fn new(rows: Vec<Vec<MetricRow>>) -> Self {
        Self { rows }
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the plan had no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows of job `i`.
    #[must_use]
    pub fn rows(&self, i: usize) -> &[MetricRow] {
        &self.rows[i]
    }

    /// The single value of job `i` (for [`Job::value`] jobs).
    #[must_use]
    pub fn value(&self, i: usize) -> f64 {
        self.rows[i][0].value
    }
}

/// The reduce: per-job rows (in job order) → the experiment's output.
pub type Reduce = Box<dyn FnOnce(JobResults) -> ExperimentOutput + Send>;

/// One experiment as pure data: its jobs and the ordered reduce.
pub struct ExperimentPlan {
    id: &'static str,
    title: &'static str,
    jobs: Vec<Job>,
    reduce: Reduce,
}

impl ExperimentPlan {
    /// Assemble a plan.
    pub fn new(
        id: &'static str,
        title: &'static str,
        jobs: Vec<Job>,
        reduce: impl FnOnce(JobResults) -> ExperimentOutput + Send + 'static,
    ) -> Self {
        Self {
            id,
            title,
            jobs,
            reduce: Box::new(reduce),
        }
    }

    /// Experiment id (DESIGN.md index key).
    #[must_use]
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// Human title.
    #[must_use]
    pub fn title(&self) -> &'static str {
        self.title
    }

    /// The jobs, for inspection.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Run every job on the current thread, in order, then reduce —
    /// byte-identical to what the executor produces at any `-j`.
    #[must_use]
    pub fn run_serial(self) -> ExperimentOutput {
        let rows = self.jobs.into_iter().map(Job::execute).collect();
        (self.reduce)(JobResults::new(rows))
    }
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("id", &self.id)
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

/// One executed experiment: its output plus execution metadata that
/// deliberately stays out of the byte-compared result files.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The reduced output (identical to `plan.run_serial()`).
    pub output: ExperimentOutput,
    /// Summed wall-clock seconds of the experiment's jobs (for
    /// `timings.json`; nondeterministic by nature). Cache hits count as
    /// zero.
    pub seconds: f64,
    /// Aggregated coherence-checking results, merged in job order —
    /// `Some` exactly when `opts.check` was set.
    pub check: Option<ExpCheck>,
}

/// Cache traffic counters for one run — reported in `timings.json` and
/// on stderr, never in the byte-compared result files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Jobs whose rows came from the cache without executing.
    pub hits: usize,
    /// Jobs that executed (and, where possible, stored their rows).
    pub misses: usize,
    /// Jobs belonging to other shards, neither executed nor loaded.
    pub skipped: usize,
}

/// What [`execute`] returns: the per-experiment results plus run-level
/// execution metadata.
#[derive(Debug)]
pub struct ExecReport {
    /// One entry per plan, in plan order.
    pub results: Vec<ExperimentResult>,
    /// Cache counters — `Some` exactly when a cache was in use (i.e.
    /// `opts.cache` set and not bypassed by `opts.check`).
    pub cache: Option<CacheStats>,
    /// Total jobs across every plan.
    pub total_jobs: usize,
}

/// What [`execute_shard`] returns: counters only — a shard run produces
/// cache entries, not artifacts.
#[derive(Debug)]
pub struct ShardReport {
    /// Cache counters: `hits` were already present, `misses` were
    /// executed and stored, `skipped` belong to other shards.
    pub cache: CacheStats,
    /// Summed wall-clock seconds of this shard's jobs, per experiment
    /// (in plan order; zero for experiments with no jobs in the shard).
    pub timings: Vec<(&'static str, f64)>,
    /// Total jobs across every plan (all shards together).
    pub total_jobs: usize,
}

struct QueueItem {
    plan: usize,
    job: usize,
    index: usize,
    item: Job,
}

struct JobSlot {
    rows: Vec<MetricRow>,
    check: Option<ExpCheck>,
    seconds: f64,
}

/// The cache to consult for a run: `--check` bypasses it entirely,
/// because checked runs exist to *observe* execution (their violations
/// are not rows and cannot be replayed from a cache).
fn active_cache(opts: &RunOpts) -> Option<ResultsCache> {
    if opts.check {
        return None;
    }
    opts.cache.as_deref().map(ResultsCache::new)
}

/// Run one job, wrapped in a check scope when requested, and store the
/// rows in the cache (when one is active). Returns the filled slot.
fn run_job(item: Job, check: bool, cache: Option<&ResultsCache>, progress: &Progress) -> JobSlot {
    let desc = item.desc().clone();
    let started = Instant::now();
    let (rows, job_check) = if check {
        let scope = CheckScope::install();
        let rows = item.execute();
        (rows, Some(scope.drain()))
    } else {
        (item.execute(), None)
    };
    let seconds = started.elapsed().as_secs_f64();
    if let Some(cache) = cache {
        if let Err(e) = cache.store(&desc, &rows) {
            progress.note(format!("[warning: could not cache {}: {e}]", desc.label()));
        }
    }
    JobSlot {
        rows,
        check: job_check,
        seconds,
    }
}

/// Execute `plans` over `opts.jobs` workers and reduce each in plan
/// order. With `opts.cache` set (and `--check` off), each job first
/// consults the cache — hits skip execution entirely and count in
/// [`ExecReport::cache`]. Progress (start/finish/cached per job) goes
/// through `progress`; nothing here touches stdout, and the only
/// filesystem traffic is the cache directory.
#[must_use]
pub fn execute(plans: Vec<ExperimentPlan>, opts: &RunOpts, progress: &Progress) -> ExecReport {
    let total: usize = plans.iter().map(|p| p.jobs.len()).sum();
    let workers = opts.jobs.max(1).min(total.max(1));
    let cache = active_cache(opts);

    // Split every plan into its queue items and its reduce.
    let mut reduces = Vec::with_capacity(plans.len());
    let mut queue = VecDeque::with_capacity(total);
    let mut slots: Vec<Vec<Option<JobSlot>>> = Vec::with_capacity(plans.len());
    let mut index = 0;
    for (pi, plan) in plans.into_iter().enumerate() {
        slots.push((0..plan.jobs.len()).map(|_| None).collect());
        for (ji, item) in plan.jobs.into_iter().enumerate() {
            index += 1;
            queue.push_back(QueueItem {
                plan: pi,
                job: ji,
                index,
                item,
            });
        }
        reduces.push((plan.id, plan.title, plan.reduce));
    }

    let queue = Mutex::new(queue);
    let slots = Mutex::new(slots);
    let stats = Mutex::new(CacheStats::default());
    let check = opts.check;
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let Some(next) = queue.lock().expect("job queue poisoned").pop_front() else {
                    break;
                };
                let label = next.item.label().to_string();
                let slot = if let Some(rows) = cache.as_ref().and_then(|c| c.load(next.item.desc()))
                {
                    progress.cached(&label, next.index, total);
                    stats.lock().expect("cache stats poisoned").hits += 1;
                    JobSlot {
                        rows,
                        check: None,
                        seconds: 0.0,
                    }
                } else {
                    progress.started(&label, next.index, total);
                    let slot = run_job(next.item, check, cache.as_ref(), progress);
                    progress.finished(&label, next.index, total, (slot.seconds * 1000.0) as u64);
                    if cache.is_some() {
                        stats.lock().expect("cache stats poisoned").misses += 1;
                    }
                    slot
                };
                slots.lock().expect("result slots poisoned")[next.plan][next.job] = Some(slot);
            });
        }
    });

    let slots = slots.into_inner().expect("result slots poisoned");
    let results = reduces
        .into_iter()
        .zip(slots)
        .map(|((_, _, reduce), plan_slots)| {
            let mut rows = Vec::with_capacity(plan_slots.len());
            let mut seconds = 0.0;
            let mut merged: Option<ExpCheck> = if check {
                Some(ExpCheck::default())
            } else {
                None
            };
            for slot in plan_slots {
                let slot = slot.expect("executor finished with an unfilled job slot");
                rows.push(slot.rows);
                seconds += slot.seconds;
                if let (Some(acc), Some(jc)) = (merged.as_mut(), slot.check) {
                    acc.merge(jc);
                }
            }
            ExperimentResult {
                output: reduce(JobResults::new(rows)),
                seconds,
                check: merged,
            }
        })
        .collect();
    ExecReport {
        results,
        cache: cache
            .is_some()
            .then(|| *stats.lock().expect("cache stats poisoned")),
        total_jobs: total,
    }
}

/// Execute only this process's share of the flattened job list and
/// populate the cache — no reduces, no artifacts. Shard `i/N` owns the
/// jobs whose 0-based global index `idx` satisfies `idx % N == i - 1`
/// (round-robin, so each shard gets an even slice of every experiment's
/// sweep rather than whole experiments). Jobs already present in the
/// cache are not re-executed.
///
/// Requires `opts.shard` and `opts.cache` to be set (the CLI enforces
/// this); after all N shards complete, a `--join` run over the same
/// cache executes nothing and reduces to artifacts byte-identical to an
/// unsharded run.
#[must_use]
pub fn execute_shard(
    plans: Vec<ExperimentPlan>,
    opts: &RunOpts,
    progress: &Progress,
) -> ShardReport {
    let shard = opts.shard.expect("execute_shard requires opts.shard");
    let cache = ResultsCache::new(
        opts.cache
            .as_deref()
            .expect("execute_shard requires opts.cache"),
    );
    let total: usize = plans.iter().map(|p| p.jobs.len()).sum();
    let workers = opts.jobs.max(1).min(total.max(1));

    let mut timings: Vec<(&'static str, f64)> = Vec::with_capacity(plans.len());
    let mut queue = VecDeque::new();
    let mut skipped = 0;
    let mut index = 0;
    for (pi, plan) in plans.into_iter().enumerate() {
        timings.push((plan.id, 0.0));
        for item in plan.jobs {
            if shard.owns(index) {
                queue.push_back(QueueItem {
                    plan: pi,
                    job: 0, // unused: shard runs fill no reduce slots
                    index: index + 1,
                    item,
                });
            } else {
                skipped += 1;
            }
            index += 1;
        }
    }

    let queue = Mutex::new(queue);
    let stats = Mutex::new(CacheStats {
        skipped,
        ..CacheStats::default()
    });
    let timings = Mutex::new(timings);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let Some(next) = queue.lock().expect("job queue poisoned").pop_front() else {
                    break;
                };
                let label = next.item.label().to_string();
                if cache.load(next.item.desc()).is_some() {
                    progress.cached(&label, next.index, total);
                    stats.lock().expect("cache stats poisoned").hits += 1;
                    continue;
                }
                progress.started(&label, next.index, total);
                let slot = run_job(next.item, false, Some(&cache), progress);
                progress.finished(&label, next.index, total, (slot.seconds * 1000.0) as u64);
                stats.lock().expect("cache stats poisoned").misses += 1;
                timings.lock().expect("shard timings poisoned")[next.plan].1 += slot.seconds;
            });
        }
    });

    ShardReport {
        cache: stats.into_inner().expect("cache stats poisoned"),
        timings: timings.into_inner().expect("shard timings poisoned"),
        total_jobs: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_desc(id: &'static str, label: String, v: f64) -> JobDesc {
        JobDesc::new(id, 1, label, &RunOpts::default())
            .seed(7)
            .param("v", v)
    }

    fn toy_plan(id: &'static str, values: &[f64]) -> ExperimentPlan {
        let jobs = values
            .iter()
            .map(|&v| {
                Job::value(
                    toy_desc(id, format!("{id} v={v}"), v),
                    1,
                    "m",
                    "s",
                    move || v,
                )
            })
            .collect();
        let n = values.len();
        ExperimentPlan::new(id, "toy", jobs, move |res| {
            let mut out = ExperimentOutput::new(id, "toy");
            assert_eq!(res.len(), n);
            for i in 0..res.len() {
                out.line(format_args!("v[{i}] = {}", res.value(i)));
            }
            out
        })
    }

    fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ksr_exec_cache_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn serial_and_parallel_agree_in_job_order() {
        let serial = toy_plan("T", &[3.0, 1.0, 2.0]).run_serial();
        for jobs in [1, 2, 8] {
            let opts = RunOpts {
                jobs,
                ..RunOpts::default()
            };
            let report = execute(
                vec![toy_plan("T", &[3.0, 1.0, 2.0])],
                &opts,
                &Progress::disabled(),
            );
            assert_eq!(report.results.len(), 1);
            assert_eq!(report.total_jobs, 3);
            assert_eq!(report.results[0].output.text, serial.text, "jobs={jobs}");
            assert!(report.results[0].check.is_none());
            assert!(report.cache.is_none(), "no cache configured");
        }
    }

    #[test]
    fn many_plans_reduce_in_plan_order() {
        let opts = RunOpts {
            jobs: 4,
            ..RunOpts::default()
        };
        let plans = vec![toy_plan("A", &[1.0]), toy_plan("B", &[2.0, 4.0])];
        let report = execute(plans, &opts, &Progress::disabled());
        assert_eq!(report.results[0].output.id, "A");
        assert_eq!(report.results[1].output.id, "B");
        assert!(report.results[1].output.text.contains("v[1] = 4"));
        assert!(report.results.iter().all(|r| r.seconds >= 0.0));
    }

    #[test]
    fn empty_plan_still_reduces() {
        let report = execute(
            vec![toy_plan("E", &[])],
            &RunOpts::default(),
            &Progress::disabled(),
        );
        assert_eq!(report.results[0].output.id, "E");
    }

    #[test]
    fn progress_reports_every_job() {
        let (progress, rx) = Progress::channel();
        let opts = RunOpts {
            jobs: 2,
            ..RunOpts::default()
        };
        let _ = execute(vec![toy_plan("P", &[1.0, 2.0, 3.0])], &opts, &progress);
        drop(progress);
        let events: Vec<_> = rx.into_iter().collect();
        // One Started and one Finished per job.
        assert_eq!(events.len(), 6);
    }

    #[test]
    fn descriptor_fingerprints_separate_every_axis() {
        let base = || toy_desc("T", "x".to_string(), 1.0);
        let fp = base().fingerprint();
        assert_eq!(fp, base().fingerprint(), "fingerprints are deterministic");
        assert_ne!(fp, base().seed(8).fingerprint(), "seed must key");
        assert_ne!(
            fp,
            base().param("extra", 1u64).fingerprint(),
            "params must key"
        );
        assert_ne!(
            fp,
            JobDesc::new("T", 2, "x", &RunOpts::default())
                .seed(7)
                .param("v", 1.0)
                .fingerprint(),
            "schema_version must key"
        );
        assert_ne!(
            fp,
            JobDesc::new("T", 1, "x", &RunOpts::quick())
                .seed(7)
                .param("v", 1.0)
                .fingerprint(),
            "quick must key"
        );
        assert_ne!(
            fp,
            toy_desc("U", "x".to_string(), 1.0).fingerprint(),
            "experiment id must key"
        );
        assert_ne!(
            fp,
            toy_desc("T", "y".to_string(), 1.0).fingerprint(),
            "label must key"
        );
    }

    #[test]
    fn canonical_form_is_stable() {
        // The canonical rendering is an on-disk contract (hashed into
        // every cache key); changes must be deliberate schema bumps.
        let desc = JobDesc::new("FIG4", 3, "fig4 p=8", &RunOpts::quick())
            .seed(1000)
            .param("procs", 8usize)
            .param("kind", "tree");
        assert_eq!(
            desc.canonical(),
            r#"{"experiment":"FIG4","schema":3,"label":"fig4 p=8","quick":true,"check":false,"seed":1000,"params":{"procs":8,"kind":"tree"}}"#
        );
    }

    #[test]
    fn warm_cache_skips_execution() {
        let dir = temp_cache_dir("warm");
        let opts = RunOpts {
            jobs: 2,
            cache: Some(dir.clone()),
            ..RunOpts::default()
        };
        let cold = execute(
            vec![toy_plan("C", &[1.0, 2.0, 3.0])],
            &opts,
            &Progress::disabled(),
        );
        assert_eq!(
            cold.cache,
            Some(CacheStats {
                hits: 0,
                misses: 3,
                skipped: 0
            })
        );
        let (progress, rx) = Progress::channel();
        let warm = execute(vec![toy_plan("C", &[1.0, 2.0, 3.0])], &opts, &progress);
        drop(progress);
        assert_eq!(
            warm.cache,
            Some(CacheStats {
                hits: 3,
                misses: 0,
                skipped: 0
            })
        );
        assert_eq!(
            warm.results[0].output.text, cold.results[0].output.text,
            "cached rows must reduce to the identical output"
        );
        // Every event is a Cached notification — nothing started.
        let events: Vec<_> = rx.into_iter().collect();
        assert_eq!(events.len(), 3);
        assert!(events
            .iter()
            .all(|e| matches!(e, ksr_core::ProgressEvent::Cached { .. })));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn check_mode_bypasses_the_cache() {
        let dir = temp_cache_dir("check_bypass");
        let opts = RunOpts {
            cache: Some(dir.clone()),
            check: true,
            ..RunOpts::default()
        };
        let report = execute(vec![toy_plan("K", &[1.0])], &opts, &Progress::disabled());
        assert!(
            report.cache.is_none(),
            "checked runs must not consult or populate the cache"
        );
        assert!(report.results[0].check.is_some());
        assert!(
            !dir.exists(),
            "checked runs must leave no cache entries behind"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn shards_partition_round_robin_and_join_hits_everything() {
        let dir = temp_cache_dir("shard");
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mk = || vec![toy_plan("S", &values)];
        for index in [1, 2] {
            let opts = RunOpts {
                jobs: 2,
                cache: Some(dir.clone()),
                shard: Some(crate::common::Shard { index, count: 2 }),
                ..RunOpts::default()
            };
            let report = execute_shard(mk(), &opts, &Progress::disabled());
            assert_eq!(report.total_jobs, 5);
            let own = if index == 1 { 3 } else { 2 }; // indices {0,2,4} vs {1,3}
            assert_eq!(report.cache.misses, own);
            assert_eq!(report.cache.skipped, 5 - own);
            assert_eq!(report.cache.hits, 0);
        }
        // Re-running a shard is all hits, no re-execution.
        let opts = RunOpts {
            cache: Some(dir.clone()),
            shard: Some(crate::common::Shard { index: 1, count: 2 }),
            ..RunOpts::default()
        };
        let rerun = execute_shard(mk(), &opts, &Progress::disabled());
        assert_eq!(rerun.cache.hits, 3);
        assert_eq!(rerun.cache.misses, 0);
        // The union of both shards serves a full run entirely from
        // cache, byte-identical to a serial one.
        let serial = mk().pop().unwrap().run_serial();
        let join_opts = RunOpts {
            cache: Some(dir.clone()),
            ..RunOpts::default()
        };
        let joined = execute(mk(), &join_opts, &Progress::disabled());
        assert_eq!(
            joined.cache,
            Some(CacheStats {
                hits: 5,
                misses: 0,
                skipped: 0
            })
        );
        assert_eq!(joined.results[0].output.text, serial.text);
        let _ = std::fs::remove_dir_all(dir);
    }
}

//! Pure jobs and the parallel experiment executor.
//!
//! One experiment = an [`ExperimentPlan`]: a list of pure [`Job`]s
//! (config + seed + program factory → typed [`MetricRow`]s) plus an
//! ordered reduce that turns the per-job rows back into the experiment's
//! [`ExperimentOutput`]. Construction, execution, and reduction are
//! strictly separated — no experiment prints or writes mid-run.
//!
//! [`execute`] schedules every job of every plan over a pool of
//! `opts.jobs` scoped worker threads. Determinism is structural, not
//! accidental:
//!
//! * each job builds its own [`Machine`](ksr_machine::Machine)s from an
//!   explicit seed, and the simulator is deterministic per
//!   (config, seed) regardless of host scheduling;
//! * job results land in pre-assigned slots, so the reduce always sees
//!   them in job order no matter which worker finished first;
//! * reduces run on the caller's thread in plan order.
//!
//! Hence `results/*.json` and `summary.json` are byte-identical at any
//! `-j`. Wall-clock timings (the only nondeterministic signal) are kept
//! out of result files and reported separately via
//! [`ExperimentResult::seconds`].

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use ksr_core::Progress;

use crate::check::{CheckScope, ExpCheck};
use crate::common::{ExperimentOutput, MetricRow, RunOpts};

/// One pure unit of work: a closure over config + seeds that builds its
/// own machines and returns typed rows. No printing, no file I/O, no
/// shared state — which is exactly what makes the grid schedulable in
/// any order on any number of workers.
pub struct Job {
    label: String,
    procs: usize,
    run: Box<dyn FnOnce() -> Vec<MetricRow> + Send>,
}

impl Job {
    /// A job returning arbitrarily many rows.
    pub fn new(
        label: impl Into<String>,
        procs: usize,
        run: impl FnOnce() -> Vec<MetricRow> + Send + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            procs,
            run: Box::new(run),
        }
    }

    /// The common single-measurement job: one `f64` becomes one row of
    /// `metric` (the reduce re-derives the fully parameterized rows).
    pub fn value(
        label: impl Into<String>,
        procs: usize,
        metric: &str,
        unit: &str,
        f: impl FnOnce() -> f64 + Send + 'static,
    ) -> Self {
        let (metric, unit) = (metric.to_string(), unit.to_string());
        Self::new(label, procs, move || {
            vec![MetricRow::new(&metric, &[], f(), &unit)]
        })
    }

    /// Human-readable label (shown in progress lines).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Simulated processors the job's largest machine runs (informs
    /// scheduling heuristics and progress display).
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Run the job to completion on the current thread.
    #[must_use]
    pub fn execute(self) -> Vec<MetricRow> {
        (self.run)()
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("label", &self.label)
            .field("procs", &self.procs)
            .finish_non_exhaustive()
    }
}

/// Per-job row lists, in job order — what an [`ExperimentPlan`]'s
/// reduce receives.
#[derive(Debug)]
pub struct JobResults {
    rows: Vec<Vec<MetricRow>>,
}

impl JobResults {
    /// Results for `jobs.len()` jobs, in job order.
    #[must_use]
    pub fn new(rows: Vec<Vec<MetricRow>>) -> Self {
        Self { rows }
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the plan had no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows of job `i`.
    #[must_use]
    pub fn rows(&self, i: usize) -> &[MetricRow] {
        &self.rows[i]
    }

    /// The single value of job `i` (for [`Job::value`] jobs).
    #[must_use]
    pub fn value(&self, i: usize) -> f64 {
        self.rows[i][0].value
    }
}

/// The reduce: per-job rows (in job order) → the experiment's output.
pub type Reduce = Box<dyn FnOnce(JobResults) -> ExperimentOutput + Send>;

/// One experiment as pure data: its jobs and the ordered reduce.
pub struct ExperimentPlan {
    id: &'static str,
    title: &'static str,
    jobs: Vec<Job>,
    reduce: Reduce,
}

impl ExperimentPlan {
    /// Assemble a plan.
    pub fn new(
        id: &'static str,
        title: &'static str,
        jobs: Vec<Job>,
        reduce: impl FnOnce(JobResults) -> ExperimentOutput + Send + 'static,
    ) -> Self {
        Self {
            id,
            title,
            jobs,
            reduce: Box::new(reduce),
        }
    }

    /// Experiment id (DESIGN.md index key).
    #[must_use]
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// Human title.
    #[must_use]
    pub fn title(&self) -> &'static str {
        self.title
    }

    /// The jobs, for inspection.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Run every job on the current thread, in order, then reduce —
    /// byte-identical to what the executor produces at any `-j`.
    #[must_use]
    pub fn run_serial(self) -> ExperimentOutput {
        let rows = self.jobs.into_iter().map(Job::execute).collect();
        (self.reduce)(JobResults::new(rows))
    }
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("id", &self.id)
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

/// One executed experiment: its output plus execution metadata that
/// deliberately stays out of the byte-compared result files.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The reduced output (identical to `plan.run_serial()`).
    pub output: ExperimentOutput,
    /// Summed wall-clock seconds of the experiment's jobs (for
    /// `timings.json`; nondeterministic by nature).
    pub seconds: f64,
    /// Aggregated coherence-checking results, merged in job order —
    /// `Some` exactly when `opts.check` was set.
    pub check: Option<ExpCheck>,
}

struct QueueItem {
    plan: usize,
    job: usize,
    index: usize,
    item: Job,
}

struct JobSlot {
    rows: Vec<MetricRow>,
    check: Option<ExpCheck>,
    seconds: f64,
}

/// Execute `plans` over `opts.jobs` workers and reduce each in plan
/// order. Progress (start/finish per job) goes through `progress`;
/// nothing here touches stdout or the filesystem.
#[must_use]
pub fn execute(
    plans: Vec<ExperimentPlan>,
    opts: &RunOpts,
    progress: &Progress,
) -> Vec<ExperimentResult> {
    let total: usize = plans.iter().map(|p| p.jobs.len()).sum();
    let workers = opts.jobs.max(1).min(total.max(1));

    // Split every plan into its queue items and its reduce.
    let mut reduces = Vec::with_capacity(plans.len());
    let mut queue = VecDeque::with_capacity(total);
    let mut slots: Vec<Vec<Option<JobSlot>>> = Vec::with_capacity(plans.len());
    let mut index = 0;
    for (pi, plan) in plans.into_iter().enumerate() {
        slots.push((0..plan.jobs.len()).map(|_| None).collect());
        for (ji, item) in plan.jobs.into_iter().enumerate() {
            index += 1;
            queue.push_back(QueueItem {
                plan: pi,
                job: ji,
                index,
                item,
            });
        }
        reduces.push((plan.id, plan.title, plan.reduce));
    }

    let queue = Mutex::new(queue);
    let slots = Mutex::new(slots);
    let check = opts.check;
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let Some(next) = queue.lock().expect("job queue poisoned").pop_front() else {
                    break;
                };
                progress.started(next.item.label(), next.index, total);
                let label = next.item.label().to_string();
                let started = Instant::now();
                let (rows, job_check) = if check {
                    let scope = CheckScope::install();
                    let rows = next.item.execute();
                    (rows, Some(scope.drain()))
                } else {
                    (next.item.execute(), None)
                };
                let seconds = started.elapsed().as_secs_f64();
                progress.finished(&label, next.index, total, (seconds * 1000.0) as u64);
                slots.lock().expect("result slots poisoned")[next.plan][next.job] = Some(JobSlot {
                    rows,
                    check: job_check,
                    seconds,
                });
            });
        }
    });

    let slots = slots.into_inner().expect("result slots poisoned");
    reduces
        .into_iter()
        .zip(slots)
        .map(|((_, _, reduce), plan_slots)| {
            let mut rows = Vec::with_capacity(plan_slots.len());
            let mut seconds = 0.0;
            let mut merged: Option<ExpCheck> = if check {
                Some(ExpCheck::default())
            } else {
                None
            };
            for slot in plan_slots {
                let slot = slot.expect("executor finished with an unfilled job slot");
                rows.push(slot.rows);
                seconds += slot.seconds;
                if let (Some(acc), Some(jc)) = (merged.as_mut(), slot.check) {
                    acc.merge(jc);
                }
            }
            ExperimentResult {
                output: reduce(JobResults::new(rows)),
                seconds,
                check: merged,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_plan(id: &'static str, values: &[f64]) -> ExperimentPlan {
        let jobs = values
            .iter()
            .map(|&v| Job::value(format!("{id} v={v}"), 1, "m", "s", move || v))
            .collect();
        let n = values.len();
        ExperimentPlan::new(id, "toy", jobs, move |res| {
            let mut out = ExperimentOutput::new(id, "toy");
            assert_eq!(res.len(), n);
            for i in 0..res.len() {
                out.line(format_args!("v[{i}] = {}", res.value(i)));
            }
            out
        })
    }

    #[test]
    fn serial_and_parallel_agree_in_job_order() {
        let serial = toy_plan("T", &[3.0, 1.0, 2.0]).run_serial();
        for jobs in [1, 2, 8] {
            let opts = RunOpts {
                jobs,
                ..RunOpts::default()
            };
            let results = execute(
                vec![toy_plan("T", &[3.0, 1.0, 2.0])],
                &opts,
                &Progress::disabled(),
            );
            assert_eq!(results.len(), 1);
            assert_eq!(results[0].output.text, serial.text, "jobs={jobs}");
            assert!(results[0].check.is_none());
        }
    }

    #[test]
    fn many_plans_reduce_in_plan_order() {
        let opts = RunOpts {
            jobs: 4,
            ..RunOpts::default()
        };
        let plans = vec![toy_plan("A", &[1.0]), toy_plan("B", &[2.0, 4.0])];
        let results = execute(plans, &opts, &Progress::disabled());
        assert_eq!(results[0].output.id, "A");
        assert_eq!(results[1].output.id, "B");
        assert!(results[1].output.text.contains("v[1] = 4"));
        assert!(results.iter().all(|r| r.seconds >= 0.0));
    }

    #[test]
    fn empty_plan_still_reduces() {
        let results = execute(
            vec![toy_plan("E", &[])],
            &RunOpts::default(),
            &Progress::disabled(),
        );
        assert_eq!(results[0].output.id, "E");
    }

    #[test]
    fn progress_reports_every_job() {
        let (progress, rx) = Progress::channel();
        let opts = RunOpts {
            jobs: 2,
            ..RunOpts::default()
        };
        let _ = execute(vec![toy_plan("P", &[1.0, 2.0, 3.0])], &opts, &progress);
        drop(progress);
        let events: Vec<_> = rx.into_iter().collect();
        // One Started and one Finished per job.
        assert_eq!(events.len(), 6);
    }
}

//! CMB — hot-spot fetch-and-add with in-network ARD combining.
//!
//! §4 of the paper wishes for "hardware support for synchronization".
//! The classic proposal is combining: when two requests for the same
//! hot sub-page from the same leaf ring meet at the ring interface
//! (ARD), the second rides the first's response instead of climbing
//! the hierarchy (NYU Ultracomputer fetch-and-add combining, adapted
//! to the KSR's ring ARDs). The Topology API exposes it as a per-ring
//! flag, so this ablation runs the same hot-spot fetch-add workload on
//! identical machines with combining off and on and reports the time
//! per operation and the fraction of packets the ARDs absorbed.

use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::{program, Machine, MachineConfig, Program};
use ksr_net::{RingHierarchyConfig, Topology};

use crate::common::{ExperimentOutput, MetricRow, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "CMB";
/// Registry title.
pub const TITLE: &str = "Hot-spot fetch-and-add with ARD combining (ablation)";
/// Cache schema version of the CMB jobs — bump when [`hot_spot`] or the
/// two-row job layout changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

/// One hot-spot run: every cell performs `ops` fetch-adds on one shared
/// counter. Returns `(seconds per op, fraction of packets combined)`.
#[must_use]
pub fn hot_spot(spec: &[usize], combining: bool, ops: usize, seed: u64) -> (f64, f64) {
    let mut cfg = MachineConfig::ksr_ring(seed, spec);
    if combining {
        let mut ring = RingHierarchyConfig::ring_levels(spec);
        ring.combining = true;
        cfg.topology = Topology::ring(ring);
    }
    let mut m = Machine::new(cfg).expect("machine");
    let procs = m.config().cells;
    let a = m.alloc_subpage(8).expect("alloc");
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|p| {
            program(move |mut cpu| async move {
                for i in 0..ops {
                    // Small skew so arrivals cluster but don't lock-step.
                    cpu.compute(((p * 13 + i * 7) % 50) as u64 + 5);
                    cpu.fetch_add(a, 1).await;
                }
            })
        })
        .collect();
    let r = m.run(programs).expect("run");
    assert_eq!(
        m.peek_u64(a).expect("counter"),
        (procs * ops) as u64,
        "combining must not drop increments"
    );
    let stats = m.fabric_stats();
    let carried = stats.packets + m.combined_packets();
    let frac = if carried == 0 {
        0.0
    } else {
        m.combined_packets() as f64 / carried as f64
    };
    let per_op = cycles_to_seconds(
        r.duration_cycles() / (procs * ops) as u64,
        m.config().clock_hz,
    );
    (per_op, frac)
}

/// Plan CMB: for each machine size, one job with combining off and one
/// with it on.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let sizes: Vec<(usize, &'static [usize])> = if quick {
        vec![(64, &[32, 2])]
    } else {
        vec![(256, &[32, 8]), (1024, &[32, 8, 4])]
    };
    let ops = if quick { 6 } else { 16 };
    let seed = opts.machine_seed(4300);
    let mut jobs = Vec::new();
    for &(cells, spec) in &sizes {
        for combining in [false, true] {
            let tag = if combining { "on" } else { "off" };
            let desc = JobDesc::new(ID, SCHEMA, format!("CMB p={cells} combining={tag}"), opts)
                .seed(seed + cells as u64)
                .param("cells", cells)
                .param("combining", combining)
                .param("ops", ops);
            jobs.push(Job::new(desc, cells, move || {
                let (per_op, frac) = hot_spot(spec, combining, ops, seed + cells as u64);
                vec![
                    MetricRow::new("hot_spot_op_seconds", &[], per_op, "s"),
                    MetricRow::new("combined_fraction", &[], frac, "ratio"),
                ]
            }));
        }
    }
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        out.line(format_args!(
            "hot-spot fetch-add, every cell incrementing one counter ({ops} ops each):"
        ));
        for (si, &(cells, _)) in sizes.iter().enumerate() {
            let off = res.rows(si * 2)[0].value;
            let on = res.rows(si * 2 + 1)[0].value;
            let frac = res.rows(si * 2 + 1)[1].value;
            out.line(format_args!(
                "  p={cells:<5} off {:8.2} us/op   on {:8.2} us/op   speedup {:4.2}x   \
                 {:4.1}% of packets combined",
                off * 1e6,
                on * 1e6,
                off / on,
                frac * 100.0
            ));
            for (combining, value, cf) in
                [(false, off, res.rows(si * 2)[1].value), (true, on, frac)]
            {
                let params = [
                    ("cells", Json::from(cells)),
                    ("combining", Json::from(combining)),
                ];
                out.row("hot_spot_op_seconds", &params, value, "s");
                out.row("combined_fraction", &params, cf, "ratio");
            }
        }
        out.push_text(
            "combining absorbs same-leaf requests at the ARD while the first response is \
             still in flight, so the benefit grows with cells per leaf and with machine \
             size; with it off every increment serializes through the hot sub-page's home \
             leaf — the \u{a7}4 wish-list case for hardware synchronization support.",
        );
        out
    })
}

/// CMB (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combining_helps_the_hot_spot_and_counts_merges() {
        let (off, off_frac) = hot_spot(&[8, 2], false, 4, 11);
        let (on, on_frac) = hot_spot(&[8, 2], true, 4, 11);
        assert_eq!(off_frac, 0.0, "combining off must not merge packets");
        assert!(on_frac > 0.0, "hot spot must trigger some combining");
        assert!(
            on <= off,
            "combining must not slow the hot spot: off {off:.2e} on {on:.2e}"
        );
    }
}

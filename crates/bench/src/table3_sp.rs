//! TAB3 + TAB4 — the SP application (§3.3.3, Tables 3 and 4).
//!
//! Table 3: per-iteration time and speedup of the optimised SP
//! (padding + prefetch) across processor counts, including the paper's
//! 31-processor best case. Table 4: the optimisation ladder at 30
//! processors — base version, + data padding/alignment, + prefetch — plus
//! the poststore experiment that *slowed SP down*.

use ksr_core::table::TextTable;
use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::Machine;
use ksr_nas::{SpConfig, SpLayout, SpSetup};

use crate::common::{ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id of the Table 3 scaling run.
pub const ID_TAB3: &str = "TAB3";
/// Registry title of the Table 3 scaling run.
pub const TITLE_TAB3: &str =
    "Scalar Pentadiagonal performance (Table 3), data-size 32x32x32 (scaled from 64^3)";
/// Registry id of the Table 4 optimisation ladder.
pub const ID_TAB4: &str = "TAB4";
/// Registry title of the Table 4 optimisation ladder.
pub const TITLE_TAB4: &str = "Scalar Pentadiagonal optimisation ladder (Table 4), 30 processors";
/// Cache schema version shared by the SP jobs — bump when
/// [`sp_time_per_iter`] or the row layout changes meaning, so stale
/// cache entries miss.
const SCHEMA: u32 = 1;

/// Every SP config knob as descriptor params, so the fingerprint
/// separates each rung of the optimisation ladder.
fn sp_desc(
    experiment: &'static str,
    label: String,
    cfg: SpConfig,
    procs: usize,
    seed: u64,
    opts: &RunOpts,
) -> JobDesc {
    JobDesc::new(experiment, SCHEMA, label, opts)
        .seed(seed)
        .param("n", cfg.n)
        .param("iterations", cfg.iterations)
        .param(
            "layout",
            match cfg.layout {
                SpLayout::Base => "base",
                SpLayout::Padded => "padded",
            },
        )
        .param("prefetch", cfg.prefetch)
        .param("poststore", cfg.poststore)
        .param("procs", procs)
}

/// Seconds **per iteration** for one SP run.
#[must_use]
pub fn sp_time_per_iter(cfg: SpConfig, procs: usize, seed: u64) -> f64 {
    let mut m = Machine::ksr1(seed).expect("machine");
    let setup = SpSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    cycles_to_seconds(r.duration_cycles(), m.config().clock_hz) / cfg.iterations as f64
}

/// The scaled SP configuration (grid 32³ against the paper's 64³ — large
/// enough that 31 processors still get whole planes, like the paper's
/// machine did).
#[must_use]
pub fn paper_config(quick: bool) -> SpConfig {
    SpConfig {
        n: if quick { 8 } else { 32 },
        iterations: 2,
        seed: 646_464,
        layout: SpLayout::Padded,
        prefetch: true,
        poststore: false,
    }
}

/// Plan Table 3 (scaling of the optimised version): one job per
/// processor count.
#[must_use]
pub fn plan_table3(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let cfg = paper_config(quick);
    let procs: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16, 31]
    };
    let seed = opts.machine_seed(700);
    let jobs: Vec<Job> = procs
        .iter()
        .map(|&p| {
            Job::value(
                sp_desc(ID_TAB3, format!("TAB3 sp p={p}"), cfg, p, seed, opts),
                p,
                "sp_seconds_per_iteration",
                "s",
                move || sp_time_per_iter(cfg, p, seed),
            )
        })
        .collect();
    ExperimentPlan::new(ID_TAB3, TITLE_TAB3, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID_TAB3, TITLE_TAB3);
        let t1 = res.value(0);
        let mut table = TextTable::new(&["Processors", "Time per iteration (s)", "Speedup"]);
        for (i, &p) in procs.iter().enumerate() {
            let t = res.value(i);
            table.row(&[p.to_string(), format!("{t:.5}"), format!("{:.1}", t1 / t)]);
            out.row(
                "sp_seconds_per_iteration",
                &[("procs", Json::from(p))],
                t,
                "s",
            );
            out.row("speedup", &[("procs", Json::from(p))], t1 / t, "x");
        }
        out.push_text(&table.render());
        out.push_text("paper speedups: 2.0 / 3.9 / 7.7 / 15.3 / 27.8 at 2/4/8/16/31 procs.");
        out
    })
}

/// Run Table 3 (serial convenience form of [`plan_table3`]).
#[must_use]
pub fn run_table3(opts: &RunOpts) -> ExperimentOutput {
    plan_table3(opts).run_serial()
}

/// Plan Table 4 (the optimisation ladder at 30 processors): one job per
/// rung.
#[must_use]
pub fn plan_table4(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let procs = if quick { 4 } else { 30 };
    let base_cfg = SpConfig {
        layout: SpLayout::Base,
        prefetch: false,
        poststore: false,
        ..paper_config(quick)
    };
    let padded_cfg = SpConfig {
        layout: SpLayout::Padded,
        ..base_cfg
    };
    let prefetch_cfg = SpConfig {
        prefetch: true,
        ..padded_cfg
    };
    let poststore_cfg = SpConfig {
        poststore: true,
        ..prefetch_cfg
    };
    let seed = opts.machine_seed(701);
    let rungs: [(&str, SpConfig); 4] = [
        ("Base version", base_cfg),
        ("Data padding and alignment", padded_cfg),
        ("Prefetching appropriate data", prefetch_cfg),
        ("(anti-opt) adding poststore", poststore_cfg),
    ];
    let jobs: Vec<Job> = rungs
        .iter()
        .map(|&(label, cfg)| {
            Job::value(
                sp_desc(ID_TAB4, format!("TAB4 sp {label}"), cfg, procs, seed, opts),
                procs,
                "sp_seconds_per_iteration",
                "s",
                move || sp_time_per_iter(cfg, procs, seed),
            )
        })
        .collect();
    ExperimentPlan::new(ID_TAB4, TITLE_TAB4, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID_TAB4, TITLE_TAB4);
        let base = res.value(0);
        let mut table = TextTable::new(&["Optimizations", "Time per iteration (s)", "vs base"]);
        for (i, &(label, _)) in rungs.iter().enumerate() {
            let t = res.value(i);
            table.row(&[
                label.to_string(),
                format!("{t:.5}"),
                format!("{:+.1}%", (t / base - 1.0) * 100.0),
            ]);
            out.row(
                "sp_seconds_per_iteration",
                &[("variant", Json::from(label)), ("procs", Json::from(procs))],
                t,
                "s",
            );
        }
        out.push_text(&table.render());
        out.push_text(
            "paper ladder: 2.54 -> 2.14 (-15%) -> 1.89 (-11%) s/iteration; poststore caused \
             slowdown because the next phase's writers pay the invalidation for shared copies.",
        );
        out
    })
}

/// Run Table 4 (serial convenience form of [`plan_table4`]).
#[must_use]
pub fn run_table4(opts: &RunOpts) -> ExperimentOutput {
    plan_table4(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_scales_through_4_procs() {
        let cfg = paper_config(true);
        let t1 = sp_time_per_iter(cfg, 1, 1);
        let t4 = sp_time_per_iter(cfg, 4, 1);
        let s = t1 / t4;
        // The 8^3 quick grid false-shares z-sweep rows across processors
        // (64 B rows, 128 B sub-pages), capping its scaling; the full
        // 32^3 bench grid reproduces the paper's near-linear curve.
        assert!(s > 2.0, "SP speedup at 4 procs = {s:.2}");
    }

    #[test]
    fn padding_helps_at_multiple_procs() {
        let quick = true;
        let base_cfg = SpConfig {
            layout: SpLayout::Base,
            prefetch: false,
            poststore: false,
            ..paper_config(quick)
        };
        let padded_cfg = SpConfig {
            layout: SpLayout::Padded,
            ..base_cfg
        };
        let base = sp_time_per_iter(base_cfg, 4, 2);
        let padded = sp_time_per_iter(padded_cfg, 4, 2);
        assert!(
            padded < base,
            "padding must help: base {base:.5} padded {padded:.5}"
        );
    }

    #[test]
    fn prefetch_helps_and_poststore_hurts() {
        let quick = true;
        let padded_cfg = SpConfig {
            layout: SpLayout::Padded,
            prefetch: false,
            poststore: false,
            ..paper_config(quick)
        };
        let prefetch_cfg = SpConfig {
            prefetch: true,
            ..padded_cfg
        };
        let poststore_cfg = SpConfig {
            poststore: true,
            ..prefetch_cfg
        };
        let padded = sp_time_per_iter(padded_cfg, 4, 3);
        let prefetch = sp_time_per_iter(prefetch_cfg, 4, 3);
        let poststore = sp_time_per_iter(poststore_cfg, 4, 3);
        assert!(
            prefetch < padded,
            "prefetch must help: {padded:.5} -> {prefetch:.5}"
        );
        assert!(
            poststore > prefetch,
            "poststore must hurt: {prefetch:.5} -> {poststore:.5}"
        );
    }
}

//! EXPLORE — small-scope schedule model check over the seeded mutants.
//!
//! The event core is deterministic: the only schedule nondeterminism is
//! how the coordinator breaks *equal-time ties* in its ready queue, and
//! every such tie funnels through `ksr_machine::ScheduleOracle`. This
//! experiment drives `ksr_verify::explore` over the seeded
//! concurrency-bug workloads of `ksr_sync::mutants` on a 4-cell ring:
//! each schedule (a vector of tie-break decisions) is replayed with a
//! [`ksr_machine::ReplayOracle`], the full trace is collected, and every
//! verification pass — coherence checker, vector-clock race detector,
//! Eraser-style lockset pass, lock-order graph — plus a per-scenario
//! end-state invariant runs over it.
//!
//! The point the table makes: the **default** schedule of each mutant is
//! clean (so a single checked run misses the bug — except for the
//! predictive lock-order pass, which flags the potential deadlock from
//! the clean trace alone), while exhaustive tie-break enumeration finds
//! a witness schedule for every seeded bug. The two `clean_*` control
//! scenarios stay violation-free across their entire schedule space.

use std::hash::Hasher;

use ksr_core::hash::FxHasher;
use ksr_core::trace::{TraceSink, Tracer};
use ksr_core::Json;
use ksr_machine::{Machine, MachineConfig, Program, ReplayOracle};
use ksr_mem::ProtocolFault;
use ksr_sync::mutants::{
    LockOrderMutant, MissedInvalidationProbe, RacyHandoff, HANDOFF_SENTINEL, HANDOFF_VALUE,
};
use ksr_verify::explore::explore;
use ksr_verify::{
    lockset_analysis, CheckerConfig, CheckingSink, CollectingSink, ExploreConfig, ExploreReport,
    LockOrderGraph, RaceDetector, RunOutcome,
};

use crate::common::{ExperimentOutput, MetricRow, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "EXPLORE";
/// Registry title.
pub const TITLE: &str = "Small-scope schedule exploration of seeded concurrency mutants";
/// Cache schema version of the EXPLORE jobs — bump when [`run_one`], any
/// verification pass, or the row layout changes meaning, so stale cache
/// entries miss.
const SCHEMA: u32 = 1;

/// The workloads the explorer sweeps: two clean controls and the three
/// seeded mutants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Correctly nested lock pair around a counter (control).
    CleanCounter,
    /// Data-before-flag handoff with a spinning consumer (control).
    CleanHandoff,
    /// Dormant `MissedInvalidation` protocol fault, exposed by a second
    /// writer under a flipped tie.
    MissedInvalidation,
    /// Opposite-order lock nesting behind a racing guard.
    LockOrder,
    /// Flag-before-data handoff with a one-shot polling consumer.
    RacyHandoff,
}

impl Scenario {
    /// Every scenario, in report order.
    pub const ALL: [Self; 5] = [
        Self::CleanCounter,
        Self::CleanHandoff,
        Self::MissedInvalidation,
        Self::LockOrder,
        Self::RacyHandoff,
    ];

    /// Stable label used in rows and result files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::CleanCounter => "clean_counter",
            Self::CleanHandoff => "clean_handoff",
            Self::MissedInvalidation => "mut_missed_inval",
            Self::LockOrder => "mut_lock_order",
            Self::RacyHandoff => "mut_racy_handoff",
        }
    }

    /// Processors the workload occupies.
    #[must_use]
    pub fn procs(self) -> usize {
        match self {
            Self::MissedInvalidation => 4,
            _ => 2,
        }
    }

    /// Whether the scenario seeds a bug (and exploration must find it).
    #[must_use]
    pub fn is_mutant(self) -> bool {
        !matches!(self, Self::CleanCounter | Self::CleanHandoff)
    }
}

/// End-state verdict: scenario-level violations plus the memory words
/// that distinguish terminal states for hashing.
type Verdict = Box<dyn FnOnce(&mut Machine) -> (Vec<(String, String)>, Vec<u64>)>;

/// Run `scenario` once under the tie-break decisions in `prefix` and
/// re-run every verification pass over the collected trace. Returns the
/// outcome `ksr_verify::explore` consumes: the schedule actually taken,
/// a deterministic terminal-state hash, and all violations as stable
/// `(kind, what)` descriptors.
#[must_use]
pub fn run_one(scenario: Scenario, seed: u64, prefix: &[usize]) -> RunOutcome {
    let mut cfg = MachineConfig::ksr_ring(seed, &[4]);
    if scenario == Scenario::MissedInvalidation {
        cfg.protocol.fault = Some(ProtocolFault::MissedInvalidation);
    }
    let mut m = Machine::new(cfg).expect("machine");
    let (oracle, trace) = ReplayOracle::with_trace(prefix.to_vec());
    m.set_schedule_oracle(Box::new(oracle));
    let (tracer, sink) = Tracer::attach(CollectingSink::new());
    m.set_tracer(tracer);

    let (programs, verdict): (Vec<Box<dyn Program>>, Verdict) = match scenario {
        Scenario::CleanCounter => {
            let w = LockOrderMutant::alloc(&mut m).expect("alloc");
            (
                w.clean_programs(),
                Box::new(move |m| {
                    let c = w.counter_value(m).expect("peek");
                    let mut v = Vec::new();
                    if c != 4 {
                        v.push(("invariant".to_string(), format!("lost update: counter {c}")));
                    }
                    (v, vec![c])
                }),
            )
        }
        Scenario::CleanHandoff => {
            let w = RacyHandoff::alloc(&mut m).expect("alloc");
            (
                w.clean_programs(),
                Box::new(move |m| {
                    let r = w.result_value(m).expect("peek");
                    let mut v = Vec::new();
                    if r != HANDOFF_VALUE {
                        v.push(("invariant".to_string(), format!("lost handoff: result {r}")));
                    }
                    (v, vec![r])
                }),
            )
        }
        Scenario::MissedInvalidation => {
            let w = MissedInvalidationProbe::alloc(&mut m).expect("alloc");
            (
                w.programs(),
                Box::new(move |m| {
                    // No program-level invariant: exposing the seeded
                    // protocol fault is the coherence checker's job.
                    let (x, y) = w.final_values(m).expect("peek");
                    (Vec::new(), vec![x, y])
                }),
            )
        }
        Scenario::LockOrder => {
            let w = LockOrderMutant::alloc(&mut m).expect("alloc");
            (
                w.programs(),
                Box::new(move |m| {
                    let (f0, f1) = w.fail_counts(m).expect("peek");
                    let mut v = Vec::new();
                    if f0 > 0 && f1 > 0 {
                        v.push((
                            "invariant".to_string(),
                            "mutual blocking: each cell stuck on the other's lock".to_string(),
                        ));
                    }
                    (v, vec![f0, f1])
                }),
            )
        }
        Scenario::RacyHandoff => {
            let w = RacyHandoff::alloc(&mut m).expect("alloc");
            (
                w.programs(),
                Box::new(move |m| {
                    let r = w.result_value(m).expect("peek");
                    let mut v = Vec::new();
                    if r != HANDOFF_SENTINEL && r != HANDOFF_VALUE {
                        v.push((
                            "invariant".to_string(),
                            format!("stale handoff: result {r}"),
                        ));
                    }
                    (v, vec![r])
                }),
            )
        }
    };

    let nprocs = programs.len();
    let report = m.run(programs).expect("run");
    let events = sink.lock().expect("trace sink").take();
    let (mut violations, words) = verdict(&mut m);

    let mut checker = CheckingSink::new(CheckerConfig::default());
    for ev in &events {
        checker.record(ev);
    }
    for v in checker.violations() {
        violations.push((
            "coherence".to_string(),
            format!("{} @ sub-page {}", v.rule.label(), v.subpage),
        ));
    }
    for r in RaceDetector::new(nprocs).analyze(&events) {
        violations.push(("race".to_string(), format!("data race @ addr {}", r.addr)));
    }
    let mut graph = LockOrderGraph::new();
    graph.ingest(&events);
    for f in lockset_analysis(&events)
        .into_iter()
        .chain(graph.findings())
    {
        violations.push((
            "predict".to_string(),
            format!("{} @ {}", f.rule.label(), f.addr),
        ));
    }
    violations.sort();
    violations.dedup();

    // Deterministic terminal-state fingerprint: completion times,
    // scenario memory words, and the violation set. FxHasher is stable
    // across processes and platforms, so -j1/-j8 and reruns agree.
    let mut h = FxHasher::default();
    for &c in &report.proc_end {
        h.write_u64(c);
    }
    for &w in &words {
        h.write_u64(w);
    }
    for (kind, what) in &violations {
        h.write(kind.as_bytes());
        h.write(what.as_bytes());
    }
    let t = trace.lock().expect("schedule trace");
    RunOutcome {
        fanouts: t.fanouts.clone(),
        decisions: t.decisions.clone(),
        state_hash: h.finish(),
        violations,
    }
}

/// Exhaustively enumerate `scenario`'s schedule space under `cfg`.
#[must_use]
pub fn explore_scenario(scenario: Scenario, seed: u64, cfg: ExploreConfig) -> ExploreReport {
    explore(cfg, |prefix| run_one(scenario, seed, prefix))
}

/// The exploration budget the registry entry uses.
#[must_use]
pub fn budget(quick: bool) -> ExploreConfig {
    ExploreConfig {
        max_runs: if quick { 64 } else { 512 },
        max_choice_points: if quick { 12 } else { 24 },
        prune_seen_states: false,
    }
}

/// Plan EXPLORE: one job per scenario, each running the full bounded
/// DFS over tie-break decisions.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let seed = opts.machine_seed(4600);
    let mut jobs = Vec::new();
    for s in Scenario::ALL {
        let b = budget(quick);
        let desc = JobDesc::new(ID, SCHEMA, format!("EXPLORE {}", s.label()), opts)
            .seed(seed)
            .param("scenario", s.label())
            .param("max_runs", b.max_runs)
            .param("max_choice_points", b.max_choice_points);
        jobs.push(Job::new(desc, s.procs(), move || {
            let rep = explore_scenario(s, seed, budget(quick));
            let base = [("scenario", Json::from(s.label()))];
            let mut rows = vec![
                MetricRow::new("schedules_explored", &base, rep.runs as f64, "runs"),
                MetricRow::new(
                    "distinct_states",
                    &base,
                    rep.distinct_states as f64,
                    "states",
                ),
                MetricRow::new(
                    "truncated",
                    &base,
                    f64::from(u8::from(rep.truncated)),
                    "flag",
                ),
                MetricRow::new("violations", &base, rep.violations.len() as f64, "findings"),
            ];
            for w in &rep.violations {
                rows.push(MetricRow::new(
                    "witness",
                    &[
                        ("scenario", Json::from(s.label())),
                        ("kind", Json::from(w.kind.as_str())),
                        ("what", Json::from(w.what.as_str())),
                        (
                            "schedule",
                            Json::arr(w.schedule.iter().map(|&d| Json::from(d))),
                        ),
                    ],
                    1.0,
                    "finding",
                ));
            }
            rows
        }));
    }
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        out.line(format_args!(
            "bounded DFS over coordinator tie-breaks, all verification passes per schedule \
             (budget {} schedules):",
            budget(quick).max_runs
        ));
        for (i, s) in Scenario::ALL.iter().enumerate() {
            let rows = res.rows(i);
            let truncated = rows[2].value > 0.0;
            out.line(format_args!(
                "  {:<17} {:>4} schedules  {:>3} distinct states  {:>2} violation(s){}",
                s.label(),
                rows[0].value,
                rows[1].value,
                rows[3].value,
                if truncated { "  [budget hit]" } else { "" }
            ));
            for w in &rows[4..] {
                let get = |key: &str| {
                    w.params
                        .iter()
                        .find(|(k, _)| k == key)
                        .map_or_else(String::new, |(_, v)| match v {
                            Json::Str(s) => s.clone(),
                            other => other.render(),
                        })
                };
                out.line(format_args!(
                    "      {} {} — witness schedule {}",
                    get("kind"),
                    get("what"),
                    get("schedule")
                ));
            }
            for w in rows {
                out.rows.push(w.clone());
            }
        }
        out
    })
}

/// Produce the EXPLORE artifact (serial convenience form).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExploreConfig {
        budget(true)
    }

    #[test]
    fn default_schedules_hide_the_scheduled_bugs() {
        // The armed protocol fault is dormant: x has one writer.
        let out = run_one(Scenario::MissedInvalidation, 7, &[]);
        assert!(
            out.violations.is_empty(),
            "mut_missed_inval: default schedule should be clean, got {:?}",
            out.violations
        );
        // The handoff's *flag* race is visible to the happens-before
        // detector on any schedule (that is the predictive pitch), but
        // the stale delivery itself never happens by default.
        let out = run_one(Scenario::RacyHandoff, 7, &[]);
        assert!(
            !out.violations.iter().any(|(k, _)| k == "invariant"),
            "mut_racy_handoff: the default poll must lose the race: {:?}",
            out.violations
        );
        assert!(
            out.violations.iter().any(|(k, _)| k == "race"),
            "the unsynchronized flag is racy on every schedule"
        );
    }

    #[test]
    fn lock_order_potential_deadlock_is_predicted_from_the_clean_run() {
        let out = run_one(Scenario::LockOrder, 7, &[]);
        assert!(
            out.violations
                .iter()
                .any(|(k, w)| k == "predict" && w.starts_with("potential_deadlock")),
            "the lock-order graph must flag the inversion from the default trace: {:?}",
            out.violations
        );
        assert!(
            !out.violations.iter().any(|(k, _)| k == "invariant"),
            "but nobody blocks under the default schedule"
        );
    }

    #[test]
    fn exploration_exposes_the_racy_handoff() {
        let rep = explore_scenario(Scenario::RacyHandoff, 7, quick_cfg());
        assert!(
            rep.violations
                .iter()
                .any(|v| v.kind == "race" || v.kind == "invariant"),
            "exploration must find the handoff bug: {:?}",
            rep.violations
        );
        let witness = rep
            .violations
            .iter()
            .find(|v| v.kind == "invariant")
            .expect("stale handoff witness");
        // The witness schedule must reproduce the violation on replay.
        let again = run_one(Scenario::RacyHandoff, 7, &witness.schedule);
        assert!(
            again
                .violations
                .iter()
                .any(|(k, w)| k == "invariant" && w == &witness.what),
            "witness replay lost the violation: {:?}",
            again.violations
        );
    }

    #[test]
    fn exploration_exposes_the_lock_order_blocking() {
        let rep = explore_scenario(Scenario::LockOrder, 7, quick_cfg());
        assert!(
            rep.violations
                .iter()
                .any(|v| v.kind == "invariant" && v.what.starts_with("mutual blocking")),
            "a flipped guard tie must overlap the critical sections: {:?}",
            rep.violations
        );
    }

    #[test]
    fn exploration_triggers_the_dormant_protocol_fault() {
        let rep = explore_scenario(Scenario::MissedInvalidation, 7, quick_cfg());
        assert!(
            rep.violations.iter().any(|v| v.kind == "coherence"),
            "a second writer must expose the missed invalidation: {:?}",
            rep.violations
        );
        assert!(
            !rep.truncated,
            "the probe's schedule space fits the quick budget"
        );
    }

    #[test]
    fn clean_counter_space_is_violation_free() {
        let rep = explore_scenario(Scenario::CleanCounter, 7, quick_cfg());
        assert!(rep.is_clean(), "control scenario: {:?}", rep.violations);
        assert!(rep.runs >= 2, "the guard tie must branch");
    }
}

//! The experiment registry.
//!
//! Every paper artifact the harness can regenerate is an
//! [`Experiment`]: an id (the DESIGN.md index key), a human title, and a
//! planner taking [`RunOpts`] and returning an [`ExperimentPlan`] — the
//! experiment's pure jobs plus its ordered reduce. The built-in
//! experiments are plain planner functions wrapped in [`FnExperiment`]
//! and listed in [`REGISTRY`] in DESIGN.md index order; binaries and
//! `run_all` resolve them through [`find`] rather than hard-coding call
//! sites, and the executor (`crate::exec`) schedules the plans' jobs
//! over its worker pool.

use crate::common::{ExperimentOutput, RunOpts};
use crate::exec::ExperimentPlan;

/// One runnable paper artifact (a table, figure, or text measurement).
pub trait Experiment {
    /// Stable id from the DESIGN.md index (e.g. `"FIG4"`).
    fn id(&self) -> &'static str;
    /// Human title.
    fn title(&self) -> &'static str;
    /// The experiment as pure data: jobs + ordered reduce.
    fn plan(&self, opts: &RunOpts) -> ExperimentPlan;
    /// Produce the artifact under the given options — the serial
    /// convenience form, byte-identical to executing the plan at any
    /// worker count.
    fn run(&self, opts: &RunOpts) -> ExperimentOutput {
        self.plan(opts).run_serial()
    }
}

/// An [`Experiment`] backed by a free planner function — the shape of
/// every built-in experiment.
#[derive(Clone, Copy)]
pub struct FnExperiment {
    id: &'static str,
    title: &'static str,
    planner: fn(&RunOpts) -> ExperimentPlan,
}

impl Experiment for FnExperiment {
    fn id(&self) -> &'static str {
        self.id
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn plan(&self, opts: &RunOpts) -> ExperimentPlan {
        (self.planner)(opts)
    }
}

impl std::fmt::Debug for FnExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnExperiment")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

macro_rules! entry {
    ($id:expr, $title:expr, $planner:path) => {
        FnExperiment {
            id: $id,
            title: $title,
            planner: $planner,
        }
    };
}

/// Every built-in experiment, in DESIGN.md index order.
pub const REGISTRY: &[FnExperiment] = &[
    entry!(
        crate::fig2_latency::ID_FIG2,
        crate::fig2_latency::TITLE_FIG2,
        crate::fig2_latency::plan
    ),
    entry!(
        crate::fig2_latency::ID_SEC31A,
        crate::fig2_latency::TITLE_SEC31A,
        crate::fig2_latency::plan_strides
    ),
    entry!(
        crate::fig3_locks::ID,
        crate::fig3_locks::TITLE,
        crate::fig3_locks::plan
    ),
    entry!(
        crate::fig4_barriers::ID_FIG4,
        crate::fig4_barriers::TITLE_FIG4,
        crate::fig4_barriers::plan_fig4
    ),
    entry!(
        crate::fig4_barriers::ID_FIG5,
        crate::fig4_barriers::TITLE_FIG5,
        crate::fig4_barriers::plan_fig5
    ),
    entry!(
        crate::fig4_barriers::ID_SEC323,
        crate::fig4_barriers::TITLE_SEC323,
        crate::fig4_barriers::plan_sec323
    ),
    entry!(
        crate::table1_cg::ID,
        crate::table1_cg::TITLE,
        crate::table1_cg::plan
    ),
    entry!(
        crate::table2_is::ID,
        crate::table2_is::TITLE,
        crate::table2_is::plan
    ),
    entry!(
        crate::fig8_speedup::ID,
        crate::fig8_speedup::TITLE,
        crate::fig8_speedup::plan
    ),
    entry!(
        crate::table3_sp::ID_TAB3,
        crate::table3_sp::TITLE_TAB3,
        crate::table3_sp::plan_table3
    ),
    entry!(
        crate::table3_sp::ID_TAB4,
        crate::table3_sp::TITLE_TAB4,
        crate::table3_sp::plan_table4
    ),
    entry!(
        crate::ep_scaling::ID,
        crate::ep_scaling::TITLE,
        crate::ep_scaling::plan
    ),
    entry!(
        crate::ablations::ID,
        crate::ablations::TITLE,
        crate::ablations::plan
    ),
    entry!(
        crate::ext_wishlist::ID,
        crate::ext_wishlist::TITLE,
        crate::ext_wishlist::plan
    ),
    entry!(
        crate::lad_latency::ID,
        crate::lad_latency::TITLE,
        crate::lad_latency::plan
    ),
    entry!(
        crate::scb_scaling::ID,
        crate::scb_scaling::TITLE,
        crate::scb_scaling::plan
    ),
    entry!(
        crate::cmb_combining::ID,
        crate::cmb_combining::TITLE,
        crate::cmb_combining::plan
    ),
    entry!(
        crate::lck_locks::ID,
        crate::lck_locks::TITLE,
        crate::lck_locks::plan
    ),
    entry!(
        crate::explore_exp::ID,
        crate::explore_exp::TITLE,
        crate::explore_exp::plan
    ),
];

/// Look an experiment up by id, case-insensitively.
#[must_use]
pub fn find(id: &str) -> Option<&'static FnExperiment> {
    REGISTRY.iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

/// All registered ids, in index order.
#[must_use]
pub fn ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_design_index() {
        let expect = [
            "FIG2", "SEC31A", "FIG3", "FIG4", "FIG5", "SEC323", "TAB1", "TAB2", "FIG8", "TAB3",
            "TAB4", "EP", "ABL", "EXT", "LAD", "SCB", "CMB", "LCK", "EXPLORE",
        ];
        assert_eq!(ids(), expect);
    }

    #[test]
    fn ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.id()), "duplicate id {}", e.id());
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert_eq!(find("fig4").map(Experiment::id), Some("FIG4"));
        assert_eq!(find("Tab1").map(Experiment::id), Some("TAB1"));
        assert!(find("NOPE").is_none());
    }

    /// Every job descriptor in the registry must name its own
    /// experiment, and no two jobs anywhere in a quick run may share a
    /// fingerprint — one collision would let the cache serve one job's
    /// rows for another.
    #[test]
    fn descriptors_are_well_formed_and_unique_registry_wide() {
        let opts = RunOpts::quick();
        let mut seen: std::collections::HashMap<String, String> = std::collections::HashMap::new();
        for e in REGISTRY {
            let plan = e.plan(&opts);
            assert!(!plan.jobs().is_empty(), "{}: plan must have jobs", e.id());
            for job in plan.jobs() {
                assert_eq!(
                    job.desc().experiment(),
                    e.id(),
                    "{}: descriptor names the wrong experiment",
                    job.label()
                );
                let fp = job.desc().fingerprint().hex();
                if let Some(other) = seen.insert(fp, job.label().to_string()) {
                    panic!(
                        "fingerprint collision between {other:?} and {:?}",
                        job.label()
                    );
                }
            }
        }
    }
}

//! TAB1 — Conjugate Gradient scalability (§3.3.1, Table 1).
//!
//! Runs the scaled CG problem (n = 1400, ~15 entries/row — the paper's
//! n = 14000 / 2.03M non-zeros divided by the cache scale factor) on the
//! cache-scaled KSR-1 for the paper's processor counts, reporting time,
//! speedup, efficiency, and the Karp–Flatt serial fraction, plus the
//! poststore comparison the paper uses to pin the 32-processor drop on
//! serial-section remote references.

use ksr_core::metrics::ScalingTable;
use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::Machine;
use ksr_nas::{CgConfig, CgSetup};

use crate::common::{ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "TAB1";
/// Registry title.
pub const TITLE: &str = "Conjugate Gradient (Table 1, Figure 8)";
/// Cache schema version of the TAB1 jobs — bump when [`cg_time`] or the
/// row layout changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

/// Cache scale factor used for the kernel experiments.
pub const SCALE: u64 = 64;

/// Seconds for one CG run at `procs` processors.
#[must_use]
pub fn cg_time(cfg: CgConfig, procs: usize, seed: u64) -> f64 {
    let mut m = Machine::ksr1_scaled(seed, SCALE).expect("machine");
    let setup = CgSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    cycles_to_seconds(r.duration_cycles(), m.config().clock_hz)
}

/// The scaled Table-1 configuration. The off-diagonal density matches the
/// paper's matrix (2.03M non-zeros over n = 14000 rows ≈ 145 per row):
/// that ratio is what keeps the serial vector operations at a percent of
/// the mat-vec and the Karp–Flatt serial fraction near the paper's
/// 0.013–0.14 band.
#[must_use]
pub fn paper_config(quick: bool) -> CgConfig {
    CgConfig {
        n: if quick { 280 } else { 1400 },
        offdiag_per_row: if quick { 36 } else { 144 },
        iterations: if quick { 2 } else { 5 },
        seed: 14_000,
        poststore: false,
        uncache_matrix: false,
    }
}

/// Plan Table 1 (and the poststore note): one job per processor count,
/// plus the poststore points in full mode.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let cfg = paper_config(quick);
    let procs: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };
    let seed = opts.machine_seed(500);
    let desc = |label: String, p: usize, poststore: bool| {
        JobDesc::new(ID, SCHEMA, label, opts)
            .seed(seed)
            .param("n", cfg.n)
            .param("offdiag_per_row", cfg.offdiag_per_row)
            .param("iterations", cfg.iterations)
            .param("procs", p)
            .param("poststore", poststore)
    };
    let mut jobs: Vec<Job> = procs
        .iter()
        .map(|&p| {
            Job::value(
                desc(format!("TAB1 cg p={p}"), p, false),
                p,
                "cg_run_seconds",
                "s",
                move || cg_time(cfg, p, seed),
            )
        })
        .collect();
    // Poststore comparison (paper: ~+3% at 16 procs, less at 32 where the
    // ring nears saturation).
    let ps_procs: Vec<usize> = if quick { vec![] } else { vec![8, 16, 32] };
    for &p in &ps_procs {
        jobs.push(Job::value(
            desc(format!("TAB1 cg poststore p={p}"), p, true),
            p,
            "cg_run_seconds",
            "s",
            move || {
                cg_time(
                    CgConfig {
                        poststore: true,
                        ..cfg
                    },
                    p,
                    seed,
                )
            },
        ));
    }
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let times: Vec<(usize, f64)> = procs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, res.value(i)))
            .collect();
        let table = ScalingTable::from_times(&times);
        out.push_text(&table.render(&format!(
            "Conjugate Gradient, datasize n = {}, nonzeros ~ {} (scaled 1/{SCALE})",
            cfg.n,
            cfg.n * (cfg.offdiag_per_row + 1)
        )));
        let t1 = times[0].1;
        for &(p, t) in &times {
            out.row("cg_run_seconds", &[("procs", Json::from(p))], t, "s");
            out.row("speedup", &[("procs", Json::from(p))], t1 / t, "x");
        }
        for (j, &p) in ps_procs.iter().enumerate() {
            let plain = times.iter().find(|&&(q, _)| q == p).unwrap().1;
            let ps = res.value(procs.len() + j);
            out.line(format_args!(
                "poststore at {p:>2} procs: {:+.1}% (paper: +3% at 16, less at 32)",
                (plain / ps - 1.0) * 100.0
            ));
            out.row(
                "cg_run_seconds",
                &[("procs", Json::from(p)), ("poststore", Json::from(true))],
                ps,
                "s",
            );
        }
        out
    })
}

/// Run Table 1 (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_scales_through_8_procs() {
        let cfg = paper_config(true);
        let t1 = cg_time(cfg, 1, 1);
        let t8 = cg_time(cfg, 8, 1);
        let s = t1 / t8;
        assert!(s > 3.0, "CG speedup at 8 procs = {s:.2}");
    }

    #[test]
    fn quick_table_is_well_formed() {
        let out = run(&RunOpts::quick());
        assert!(out.text.contains("Speedup"));
        assert!(out.text.lines().count() >= 5);
        assert!(out.rows.iter().any(|r| r.metric == "cg_run_seconds"));
    }
}

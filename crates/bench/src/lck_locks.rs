//! LCK — lock-contention crossover from 1 to 1024 cells.
//!
//! Figure 3 compares the hardware `get_sub_page` lock with the flat
//! FCFS ticket lock on the 32-cell machine the authors had. On the
//! deeper ring trees (ROADMAP item 2's 256/512/1024-cell systems) a
//! flat lock's handoff hops leaf rings on nearly every grant, so each
//! critical section drags the lock word and the protected data through
//! one or more ARDs. The cohort lock (`ksr_sync::cohort`) keeps up to
//! `budget` consecutive handoffs inside one leaf ring; this experiment
//! measures where that locality wins as the machine grows.
//!
//! Each job runs every cell of the smallest ring tree that holds its
//! processor count (the SCB machine table) through an
//! acquire/increment/release loop and reports two metrics per point:
//!
//! * **time_per_acquire_us** — wall time per completed critical
//!   section (the throughput axis of the crossover table);
//! * **rmr_per_acquire** — `PerfMon::remote_references` per
//!   acquisition: Golab's remote-memory-reference complexity in the
//!   DSM/NUMA cost model, counted by the coherence protocol as ring
//!   transactions whose LCA lies above the leaf ring.
//!
//! Contention is swept by varying the delay between lock requests at a
//! fixed hold time, like Figure 3's 3000-in-10000 duty cycle.

use ksr_core::table::Series;
use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::{program, Machine, MachineConfig, Program};
use ksr_sync::{CohortLock, HwLock, LockMode, SwRwLock};

use crate::common::{ExperimentOutput, MetricRow, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "LCK";
/// Registry title.
pub const TITLE: &str = "Lock-contention crossover on ring trees, 1 to 1024 cells";
/// Cache schema version of the LCK jobs — bump when the workload or
/// row layout changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

/// Cycles the lock is held per critical section.
const HOLD: u64 = 1_000;
/// Cohort local-handoff budget used by every cohort job.
const BUDGET: u64 = 8;

/// The contenders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    /// `get_sub_page` spinning (Figure 3's exclusive lock).
    Hw,
    /// The paper's FCFS ticket lock, writers only (flat queue).
    Ticket,
    /// The topology-aware cohort MCS lock.
    Cohort,
}

impl LockKind {
    const ALL: [LockKind; 3] = [LockKind::Hw, LockKind::Ticket, LockKind::Cohort];

    fn label(self) -> &'static str {
        match self {
            LockKind::Hw => "hw_lock",
            LockKind::Ticket => "ticket_lock",
            LockKind::Cohort => "cohort_mcs",
        }
    }
}

/// `(cells, ring spec)` sweep: the SCB machine table plus the
/// single-processor baseline on the paper's machine.
const POINTS: &[(usize, &[usize])] = &[
    (1, &[32]),
    (32, &[32]),
    (64, &[32, 2]),
    (128, &[32, 4]),
    (256, &[32, 8]),
    (512, &[32, 8, 2]),
    (1024, &[32, 8, 4]),
];

/// Quick mode stays ≤ 64 processors (debug-build friendly, and within
/// the ticket lock's 64-slot table even with the debug assertion on)
/// while still contrasting one- and two-level trees.
const QUICK_POINTS: &[(usize, &[usize])] = &[(32, &[32]), (64, &[32, 2])];

/// Inter-request delays (contention levels) at the fixed hold time.
const LEVELS: &[(&str, u64)] = &[("high", 500), ("mid", 4_000), ("low", 16_000)];
const QUICK_LEVELS: &[(&str, u64)] = &[("high", 500)];

/// Acquisitions per processor: scaled down as the machine grows so the
/// serialized total stays tractable, never below 2.
fn ops_per_proc(procs: usize, quick: bool) -> usize {
    if quick {
        4
    } else if procs <= 32 {
        64
    } else {
        (2_048 / procs).max(2)
    }
}

/// One sweep point: every processor of the `spec` machine loops
/// acquire → increment shared word → release → delay. Returns
/// `(time_per_acquire_us, rmr_per_acquire)`.
#[must_use]
pub fn run_workload(
    lock_label: &str,
    spec: &[usize],
    procs: usize,
    delay: u64,
    ops: usize,
    seed: u64,
) -> (f64, f64) {
    let kind = LockKind::ALL
        .into_iter()
        .find(|k| k.label() == lock_label)
        .expect("known lock kind");
    let mut m = Machine::new(MachineConfig::ksr_ring(seed, spec)).expect("machine");
    let shared = m.alloc_subpage(8).unwrap();
    enum AnyLock {
        Hw(HwLock),
        Ticket(SwRwLock),
        Cohort(CohortLock),
    }
    let lock = match kind {
        LockKind::Hw => AnyLock::Hw(HwLock::alloc(&mut m).expect("alloc")),
        LockKind::Ticket => AnyLock::Ticket(SwRwLock::alloc(&mut m).expect("alloc")),
        LockKind::Cohort => {
            AnyLock::Cohort(CohortLock::with_budget(&mut m, BUDGET).expect("alloc"))
        }
    };
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|_| match &lock {
            AnyLock::Hw(l) => {
                let l = *l;
                program(move |mut cpu| async move {
                    for _ in 0..ops {
                        l.acquire(&mut cpu).await;
                        let v = cpu.read_u64(shared).await;
                        cpu.compute(HOLD);
                        cpu.write_u64(shared, v + 1).await;
                        l.release(&mut cpu).await;
                        cpu.compute(delay);
                    }
                })
            }
            AnyLock::Ticket(l) => {
                let l = *l;
                program(move |mut cpu| async move {
                    for _ in 0..ops {
                        let t = l.acquire(&mut cpu, LockMode::Write).await;
                        let v = cpu.read_u64(shared).await;
                        cpu.compute(HOLD);
                        cpu.write_u64(shared, v + 1).await;
                        l.release(&mut cpu, t).await;
                        cpu.compute(delay);
                    }
                })
            }
            AnyLock::Cohort(l) => {
                let l = *l;
                program(move |mut cpu| async move {
                    for _ in 0..ops {
                        l.acquire(&mut cpu).await;
                        let v = cpu.read_u64(shared).await;
                        cpu.compute(HOLD);
                        cpu.write_u64(shared, v + 1).await;
                        l.release(&mut cpu).await;
                        cpu.compute(delay);
                    }
                })
            }
        })
        .collect();
    let r = m.run(programs).expect("run");
    let total_ops = (procs * ops) as u64;
    assert_eq!(
        m.peek_u64(shared).unwrap(),
        total_ops,
        "mutual exclusion lost an increment"
    );
    let secs = cycles_to_seconds(r.duration_cycles(), m.config().clock_hz);
    let rmr = m.perfmon_total().remote_references as f64 / total_ops as f64;
    (secs * 1e6 / total_ops as f64, rmr)
}

/// Plan LCK: one two-row job per (contention level, lock, machine).
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let points: &[(usize, &'static [usize])] = if quick { QUICK_POINTS } else { POINTS };
    let levels: &[(&str, u64)] = if quick { QUICK_LEVELS } else { LEVELS };
    let seed = opts.machine_seed(5600);
    let mut jobs = Vec::new();
    for &(level, delay) in levels {
        for kind in LockKind::ALL {
            for &(cells, spec) in points {
                let procs = cells;
                let ops = ops_per_proc(procs, quick);
                let point_seed = seed + cells as u64;
                let mut desc = JobDesc::new(
                    ID,
                    SCHEMA,
                    format!("LCK {} {level} p={cells}", kind.label()),
                    opts,
                )
                .seed(point_seed)
                .param("lock", kind.label())
                .param("cells", cells)
                .param(
                    "spec",
                    spec.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("x"),
                )
                .param("hold", HOLD)
                .param("delay", delay)
                .param("ops", ops);
                if kind == LockKind::Cohort {
                    desc = desc.param("budget", BUDGET);
                }
                let label = kind.label();
                jobs.push(Job::new(desc, procs, move || {
                    let (us, rmr) = run_workload(label, spec, procs, delay, ops, point_seed);
                    vec![
                        MetricRow::new("time_per_acquire_us", &[], us, "us"),
                        MetricRow::new("rmr_per_acquire", &[], rmr, "refs"),
                    ]
                }));
            }
        }
    }
    let levels: Vec<(&'static str, u64)> = levels.to_vec();
    let points: Vec<(usize, &'static [usize])> = points.to_vec();
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let idx = |li: usize, ki: usize, pi: usize| (li * 3 + ki) * points.len() + pi;
        let time = |li: usize, ki: usize, pi: usize| res.rows(idx(li, ki, pi))[0].value;
        let rmr = |li: usize, ki: usize, pi: usize| res.rows(idx(li, ki, pi))[1].value;
        // Crossover table: per contention level, the smallest machine
        // where the cohort lock beats the flat ticket lock.
        out.push_text(
            "time per acquisition (us) and the cohort-vs-ticket crossover; \
             RMR = remote references (cross-leaf ring transactions) per acquisition.",
        );
        for (li, &(level, delay)) in levels.iter().enumerate() {
            out.line(format_args!(
                "contention {level} (hold {HOLD}, delay {delay}):"
            ));
            out.line(format_args!(
                "  {:>5}  {:>10} {:>10} {:>10}  {:>8} {:>8} {:>8}",
                "cells", "hw us", "ticket us", "cohort us", "hw RMR", "tkt RMR", "coh RMR"
            ));
            for (pi, &(cells, _)) in points.iter().enumerate() {
                out.line(format_args!(
                    "  {:>5}  {:>10.2} {:>10.2} {:>10.2}  {:>8.2} {:>8.2} {:>8.2}",
                    cells,
                    time(li, 0, pi),
                    time(li, 1, pi),
                    time(li, 2, pi),
                    rmr(li, 0, pi),
                    rmr(li, 1, pi),
                    rmr(li, 2, pi),
                ));
            }
            let crossover = points
                .iter()
                .enumerate()
                .find(|&(pi, _)| time(li, 2, pi) < time(li, 1, pi))
                .map(|(_, &(cells, _))| cells);
            match crossover {
                Some(cells) => out.line(format_args!(
                    "  cohort beats the flat ticket lock from {cells} cells on"
                )),
                None => out.line(format_args!(
                    "  no crossover: the flat ticket lock wins at every size"
                )),
            }
        }
        out.push_text(
            "expected shape: on one leaf ring the cohort lock pays its two-level protocol \
             for nothing; as leaf rings multiply, the flat locks' handoffs and spins go \
             cross-ring (RMR per acquire grows with the cell count) while the cohort lock \
             amortizes one global handoff over its local budget — topology-awareness wins \
             from the first multi-leaf machines and the margin widens with ring depth.",
        );
        let mut series = Vec::new();
        for (li, &(level, _)) in levels.iter().enumerate() {
            for (ki, kind) in LockKind::ALL.into_iter().enumerate() {
                let mut s = Series::new(format!("{} {level}", kind.label()));
                for (pi, &(cells, _)) in points.iter().enumerate() {
                    s.push(cells as f64, time(li, ki, pi));
                }
                series.push(s);
            }
        }
        out.series = series;
        out.rows_from_series("time_per_acquire_us", "cells", "us");
        for (li, &(level, _)) in levels.iter().enumerate() {
            for (ki, kind) in LockKind::ALL.into_iter().enumerate() {
                for (pi, &(cells, _)) in points.iter().enumerate() {
                    out.row(
                        "rmr_per_acquire",
                        &[
                            ("lock", Json::from(kind.label())),
                            ("level", Json::from(level)),
                            ("cells", Json::from(cells)),
                        ],
                        rmr(li, ki, pi),
                        "refs",
                    );
                }
            }
        }
        out
    })
}

/// Run LCK (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_wins_past_one_leaf_under_high_contention() {
        // 64 cells, two leaf rings, everyone hammering the lock: the
        // cohort lock must already beat the flat ticket queue, and its
        // RMR per acquire must be far lower.
        let ops = 4;
        let (ticket_us, ticket_rmr) = run_workload("ticket_lock", &[32, 2], 64, 500, ops, 7);
        let (cohort_us, cohort_rmr) = run_workload("cohort_mcs", &[32, 2], 64, 500, ops, 7);
        assert!(
            cohort_us < ticket_us,
            "cohort {cohort_us:.2}us must beat ticket {ticket_us:.2}us at 64 cells"
        );
        assert!(
            cohort_rmr < ticket_rmr / 2.0,
            "cohort RMR {cohort_rmr:.2} vs ticket {ticket_rmr:.2}"
        );
    }

    #[test]
    fn single_leaf_has_no_remote_references() {
        let (_, rmr) = run_workload("hw_lock", &[32], 8, 500, 4, 11);
        assert_eq!(rmr, 0.0, "one leaf ring cannot cross a level boundary");
    }

    #[test]
    fn quick_plan_point_table_is_debug_safe() {
        for &(cells, spec) in QUICK_POINTS {
            assert!(cells <= 64, "quick mode must fit the ticket slot table");
            assert_eq!(cells, spec.iter().product::<usize>());
        }
        for &(cells, spec) in POINTS {
            assert_eq!(
                cells.max(32),
                spec.iter().product::<usize>().max(32),
                "machine must hold the processor count"
            );
            assert!(cells <= spec.iter().product::<usize>());
        }
    }
}

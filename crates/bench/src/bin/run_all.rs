//! Regenerates every table and figure of the paper into `results/`.
//! Pass KSR_QUICK=1 for reduced sweeps.
fn main() {
    let quick = ksr_bench::common::quick_mode();
    for out in ksr_bench::run_all(quick) {
        ksr_bench::emit(&out);
    }
}

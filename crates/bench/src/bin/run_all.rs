//! Regenerates paper tables and figures into the results directory and
//! indexes them in `summary.json`. Flags: `--list`, `--only ID,ID...`,
//! `--quick`/`--full`, `--seed N`, `--results DIR` (env defaults:
//! KSR_QUICK, KSR_SEED, KSR_RESULTS).
use std::process::ExitCode;

fn main() -> ExitCode {
    ksr_bench::cli::run_all_main()
}

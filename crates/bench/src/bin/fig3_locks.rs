//! Regenerates one artifact of the paper; see DESIGN.md. Pass
//! KSR_QUICK=1 for a reduced sweep.
fn main() {
    let quick = ksr_bench::common::quick_mode();
    ksr_bench::emit(&ksr_bench::fig3_locks::run(quick));
}

//! Regenerates one artifact of the scaling study (EXPLORE); see DESIGN.md.
//! Flags: `--quick`/`--full`, `--seed N`, `--results DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ksr_bench::cli::run_single_main("EXPLORE")
}

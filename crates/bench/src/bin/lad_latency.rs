//! Regenerates one artifact of the scaling study (LAD); see DESIGN.md.
//! Flags: `--quick`/`--full`, `--seed N`, `--results DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ksr_bench::cli::run_single_main("LAD")
}

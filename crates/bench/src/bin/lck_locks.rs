//! Regenerates one artifact of the scaling study (LCK); see DESIGN.md.
//! Flags: `--quick`/`--full`, `--seed N`, `--results DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ksr_bench::cli::run_single_main("LCK")
}

//! Regenerates the §4 wish-list experiments; see DESIGN.md. Pass
//! KSR_QUICK=1 for a reduced sweep.
fn main() {
    let quick = ksr_bench::common::quick_mode();
    ksr_bench::emit(&ksr_bench::ext_wishlist::run(quick));
}

//! Times simulator microworkloads (host wall clock, not simulated
//! time) and writes `bench.json` into the results directory. Flags:
//! `--reps N` (default 3), `--results DIR` (env default: KSR_RESULTS).
//! See `ksr_bench::perf` and the perf section of `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ksr_bench::perf::perf_main()
}

//! Regenerates one artifact of the paper (SEC31A); see DESIGN.md. Flags:
//! `--quick`/`--full`, `--seed N`, `--results DIR`.
use std::process::ExitCode;

fn main() -> ExitCode {
    ksr_bench::cli::run_single_main("SEC31A")
}

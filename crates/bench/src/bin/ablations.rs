//! Regenerates the ablation studies; see DESIGN.md. Pass KSR_QUICK=1 for
//! a reduced sweep.
fn main() {
    let quick = ksr_bench::common::quick_mode();
    ksr_bench::emit(&ksr_bench::ablations::run(quick));
}

//! LAD — remote-latency ladder and ring saturation on deep hierarchies.
//!
//! The paper measures a two-level machine; this scaling study asks what
//! the same methodology predicts for the full three-level, 1088-cell
//! KSR-1 design. Two measurements:
//!
//! * **Ladder** — uncontended remote-read latency from cell 0 to an
//!   owner at increasing topological distance: the same cell, the same
//!   leaf ring, a 1-level LCA crossing (leaf → Ring:1 → leaf), and a
//!   2-level LCA crossing through the top ring. Each extra level adds
//!   two ring traversals and two ARD hops to the round trip.
//! * **Saturation** — mean remote-read latency with an increasing
//!   number of processors hammering antipodal cells on a fixed deep
//!   topology, plus the per-packet slot wait the fabric reports. The
//!   knee of the curve is where the shared upper rings saturate.

use ksr_core::Json;
use ksr_machine::{program, Machine, MachineConfig, Program, SharedU64};

use crate::common::{ExperimentOutput, MetricRow, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "LAD";
/// Registry title.
pub const TITLE: &str = "Remote-latency ladder and ring saturation on multi-level rings";
/// Cache schema version of the LAD jobs — bump when [`probe_latency`],
/// [`saturation_point`], or the job layout changes meaning, so stale
/// cache entries miss.
const SCHEMA: u32 = 1;

/// The ring spec as a stable "32x8x4" tag for job descriptors.
fn spec_tag(spec: &[usize]) -> String {
    spec.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("x")
}

/// Mean read latency (cycles) from cell 0 to data homed on `owner`,
/// on an otherwise idle machine built from `spec`.
#[must_use]
pub fn probe_latency(spec: &[usize], owner: usize, seed: u64) -> f64 {
    let mut m = Machine::new(MachineConfig::ksr_ring(seed, spec)).expect("machine");
    let len = 64 * 1024u64;
    let a = m.alloc(len, 16384).expect("alloc");
    m.warm(owner, a, len);
    let out = SharedU64::alloc(&mut m, 1).expect("alloc");
    let samples = 256u64;
    m.run(vec![program(move |mut cpu| async move {
        let t0 = cpu.now();
        for i in 0..samples {
            // Each sample touches a fresh sub-page, so every read is a
            // miss served by the owner.
            let _ = cpu.read_u64(a + (i * 128) % len).await;
        }
        let mean = (cpu.now() - t0) / samples;
        out.set(&mut cpu, 0, mean).await;
    })])
    .expect("run");
    out.peek(&mut m, 0) as f64
}

/// One saturation point: `procs` processors each stream reads from an
/// array homed half the machine away. Returns the mean per-read latency
/// (cycles) and the fabric's mean slot wait per packet (cycles).
#[must_use]
pub fn saturation_point(spec: &[usize], procs: usize, seed: u64) -> (f64, f64) {
    let mut m = Machine::new(MachineConfig::ksr_ring(seed, spec)).expect("machine");
    let cells = m.config().cells;
    assert!(
        procs <= cells,
        "saturation point oversubscribes the machine"
    );
    let len = 16 * 1024u64;
    let arrays: Vec<u64> = (0..procs)
        .map(|_| m.alloc(len, 16384).expect("alloc"))
        .collect();
    for (p, &a) in arrays.iter().enumerate() {
        // Antipodal placement: every stream crosses the full hierarchy.
        m.warm((p + cells / 2) % cells, a, len);
    }
    let out = SharedU64::alloc(&mut m, procs).expect("alloc");
    let samples = 96u64;
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|p| {
            let a = arrays[p];
            program(move |mut cpu| async move {
                let t0 = cpu.now();
                for i in 0..samples {
                    let _ = cpu.read_u64(a + (i * 128) % len).await;
                }
                let mean = (cpu.now() - t0) / samples;
                out.set(&mut cpu, p, mean).await;
            })
        })
        .collect();
    m.run(programs).expect("run");
    let lat = (0..procs).map(|p| out.peek(&mut m, p) as f64).sum::<f64>() / procs as f64;
    let s = m.fabric_stats();
    let wait = if s.packets == 0 {
        0.0
    } else {
        s.wait_cycles as f64 / s.packets as f64
    };
    (lat, wait)
}

/// The ladder rungs for a topology spec: `(label, owner cell, rings on
/// the round-trip path)`.
fn ladder_rungs(spec: &[usize]) -> Vec<(&'static str, usize, usize)> {
    let leaf = spec[0];
    let group1 = leaf * spec.get(1).copied().unwrap_or(1);
    vec![
        ("same cell", 0, 0),
        ("same leaf", 1, 1),
        ("1-level crossing", leaf, 3),
        ("2-level crossing", group1, 5),
    ]
}

/// Plan LAD: one job per ladder rung, one per saturation point.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let spec: &'static [usize] = if quick { &[8, 2, 2] } else { &[32, 8, 4] };
    let rungs = ladder_rungs(spec);
    let sat_procs: Vec<usize> = if quick {
        vec![8, 16, 32]
    } else {
        vec![32, 64, 128, 256, 512, 1024]
    };
    let seed = opts.machine_seed(4100);
    let mut jobs: Vec<Job> = rungs
        .iter()
        .map(|&(label, owner, _)| {
            let desc = JobDesc::new(ID, SCHEMA, format!("LAD ladder {label}"), opts)
                .seed(seed)
                .param("probe", "ladder")
                .param("spec", spec_tag(spec))
                .param("owner", owner);
            Job::value(desc, 1, "remote_read_cycles", "cycles", move || {
                probe_latency(spec, owner, seed)
            })
        })
        .collect();
    for &p in &sat_procs {
        let desc = JobDesc::new(ID, SCHEMA, format!("LAD saturation p={p}"), opts)
            .seed(seed)
            .param("probe", "saturation")
            .param("spec", spec_tag(spec))
            .param("procs", p);
        jobs.push(Job::new(desc, p, move || {
            let (lat, wait) = saturation_point(spec, p, seed);
            vec![
                MetricRow::new("saturated_read_cycles", &[], lat, "cycles"),
                MetricRow::new("slot_wait_per_packet", &[], wait, "cycles"),
            ]
        }));
    }
    let cells: usize = spec.iter().product();
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        out.line(format_args!(
            "latency ladder on a {cells}-cell ring[{}] machine (idle, cycles/read):",
            spec.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("x")
        ));
        for (i, &(label, _, rings)) in rungs.iter().enumerate() {
            out.line(format_args!(
                "  {label:<18} {:8.0}  ({rings} ring{} booked)",
                res.value(i),
                if rings == 1 { "" } else { "s" }
            ));
            out.row(
                "remote_read_cycles",
                &[
                    ("distance", Json::from(label)),
                    ("rings", Json::from(rings)),
                ],
                res.value(i),
                "cycles",
            );
        }
        let l1 = res.value(2);
        let l2 = res.value(3);
        if l1 > 0.0 {
            out.line(format_args!(
                "each extra level multiplies remote latency by {:.2}x (2 more rings + 2 ARDs)",
                l2 / l1
            ));
        }
        out.line(format_args!(
            "saturation sweep, antipodal streams on the same {cells}-cell machine:"
        ));
        let base = rungs.len();
        let mut curve = ksr_core::table::Series::new("saturated read latency");
        for (i, &p) in sat_procs.iter().enumerate() {
            let lat = res.rows(base + i)[0].value;
            let wait = res.rows(base + i)[1].value;
            curve.push(p as f64, lat);
            out.line(format_args!(
                "  p={p:<5} read {lat:8.0} cy   slot wait/packet {wait:6.1} cy"
            ));
            out.row(
                "saturated_read_cycles",
                &[("procs", Json::from(p))],
                lat,
                "cycles",
            );
            out.row(
                "slot_wait_per_packet",
                &[("procs", Json::from(p))],
                wait,
                "cycles",
            );
        }
        out.series.push(curve);
        out.push_text(
            "the ladder prices each level of the hierarchy; the sweep shows mean latency \
             rising as offered load fills the upper rings' slots — the paper's \u{a7}3.1 \
             hammering experiment extrapolated to the full three-level design.",
        );
        out
    })
}

/// LAD (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_distance() {
        let spec = &[8, 2, 2];
        let local = probe_latency(spec, 0, 1);
        let leaf = probe_latency(spec, 1, 1);
        let one = probe_latency(spec, 8, 1);
        let two = probe_latency(spec, 16, 1);
        assert!(
            local < leaf && leaf < one && one < two,
            "ladder must climb: {local} {leaf} {one} {two}"
        );
    }

    #[test]
    fn contention_raises_latency() {
        let spec = &[8, 2, 2];
        let (idle, _) = saturation_point(spec, 2, 3);
        let (loaded, wait) = saturation_point(spec, 32, 3);
        assert!(
            loaded > idle,
            "32 antipodal streams must contend: {idle} vs {loaded}"
        );
        assert!(wait > 0.0, "saturated fabric must report slot wait");
    }
}

//! FIG3 — §3.2.1 lock performance.
//!
//! "We have experimented with a synthetic workload of read and write lock
//! requests... Each processor repeatedly accesses data in read or write
//! mode, with a delay of 10000 local operations between successive lock
//! requests. The lock is held for 3000 local operations." Figure 3 plots
//! the time for 500 operations against the number of processors for the
//! hardware exclusive lock and for the software read/write lock at
//! 0/20/40/60/80/100% read share.
//!
//! The timer-interrupt model is enabled, reproducing the OS effect the
//! authors cite (unsynchronized per-processor timer interrupts) when
//! explaining why the software queue can match or beat the hardware lock
//! even with writers only.

use ksr_core::table::Series;
use ksr_core::time::cycles_to_seconds;
use ksr_core::XorShift64;
use ksr_machine::{program, InterruptConfig, Machine, MachineConfig, Program};
use ksr_sync::{HwLock, LockMode, SwRwLock};

use crate::common::{proc_sweep_32, ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "FIG3";
/// Registry title.
pub const TITLE: &str = "Read/Write and Exclusive locks on the KSR (Figure 3)";
/// Cache schema version of the FIG3 jobs — bump when the workload or
/// row layout changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

const HOLD: u64 = 3_000;
const DELAY: u64 = 10_000;
/// Lock operations *per processor* ("for 500 operations"): with the
/// serialized critical-section work growing with the processor count,
/// the exclusive-lock curve rises linearly exactly as the paper reports.
const OPS_PER_PROC: usize = 500;

/// The figure's lock/read-mix series, in legend order. `None` means the
/// hardware exclusive lock.
const MIXES: [(Option<u32>, &str); 7] = [
    (None, "exclusive lock"),
    (Some(0), "read shared lock with writers only"),
    (Some(20), "read shared lock with 20% sharing"),
    (Some(40), "read shared lock with 40% sharing"),
    (Some(60), "read shared lock with 60% sharing"),
    (Some(80), "read shared lock with 80% sharing"),
    (Some(100), "read shared lock with readers only"),
];

/// Which lock and read-mix a run uses. `read_pct == None` means the
/// hardware exclusive lock.
pub(crate) fn run_workload(read_pct: Option<u32>, procs: usize, seed: u64) -> f64 {
    let cfg = MachineConfig::ksr1(seed).with_interrupts(InterruptConfig::ksr_os());
    let mut m = Machine::new(cfg).expect("machine");
    let hw = HwLock::alloc(&mut m).expect("alloc");
    let sw = SwRwLock::alloc(&mut m).expect("alloc");
    let ops_per_proc = OPS_PER_PROC;
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|p| {
            program(move |mut cpu| async move {
                let mut rng = XorShift64::new(seed ^ (p as u64) << 32 | 0xF1);
                for _ in 0..ops_per_proc {
                    match read_pct {
                        None => {
                            hw.acquire(&mut cpu).await;
                            cpu.compute(HOLD);
                            hw.release(&mut cpu).await;
                        }
                        Some(pct) => {
                            let mode = if rng.next_below(100) < u64::from(pct) {
                                LockMode::Read
                            } else {
                                LockMode::Write
                            };
                            let t = sw.acquire(&mut cpu, mode).await;
                            cpu.compute(HOLD);
                            sw.release(&mut cpu, t).await;
                        }
                    }
                    cpu.compute(DELAY);
                }
            })
        })
        .collect();
    let r = m.run(programs).expect("run");
    cycles_to_seconds(r.duration_cycles(), m.config().clock_hz)
}

/// Plan the Figure 3 sweep: one pure job per (mix, procs) point that
/// quick mode keeps.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let sweep = {
        let mut s = vec![1usize];
        s.extend(proc_sweep_32(quick));
        if !quick {
            s.retain(|&p| p <= 30); // the paper's x-axis stops at 30
        }
        s
    };
    let mut jobs = Vec::new();
    let mut points: Vec<(usize, usize)> = Vec::new(); // (series index, procs)
    for &p in &sweep {
        for (si, &(mix, label)) in MIXES.iter().enumerate() {
            if quick && !(matches!(mix, None | Some(0) | Some(100))) {
                continue;
            }
            let seed = opts.machine_seed(300 + si as u64);
            points.push((si, p));
            let desc = JobDesc::new(ID, SCHEMA, format!("FIG3 {label} p={p}"), opts)
                .seed(seed)
                .param(
                    "read_pct",
                    mix.map_or(ksr_core::Json::Null, |pct| {
                        ksr_core::Json::from(u64::from(pct))
                    }),
                )
                .param("procs", p);
            jobs.push(Job::value(desc, p, "run_seconds", "s", move || {
                run_workload(mix, p, seed)
            }));
        }
    }
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let mut series: Vec<Series> = MIXES.iter().map(|&(_, l)| Series::new(l)).collect();
        for (i, &(si, p)) in points.iter().enumerate() {
            series[si].push(p as f64, res.value(i));
        }
        // Analysis rows the paper draws from this figure.
        let excl = &series[0];
        if excl.points.len() >= 3 {
            let xs: Vec<f64> = excl.points.iter().map(|&(x, _)| x).collect();
            let ys: Vec<f64> = excl.points.iter().map(|&(_, y)| y).collect();
            let (slope, _, r2) = ksr_core::stats::linear_fit(&xs, &ys);
            out.line(format_args!(
                "exclusive-lock time vs procs: slope {slope:.4} s/proc, r^2 = {r2:.3} \
                 (paper: 'increases linearly')"
            ));
        }
        let last = |s: &Series| s.points.last().map_or(f64::NAN, |&(_, y)| y);
        out.line(format_args!(
            "at max procs: exclusive {:.2} s, writers-only SW {:.2} s, readers-only SW {:.2} s",
            last(&series[0]),
            last(&series[1]),
            last(&series[6]),
        ));
        out.push_text(
            "expected ordering (paper): readers-only fastest; more read sharing => faster; \
             SW writers-only <= HW exclusive (unsynchronized timer interrupts).",
        );
        out.series = series;
        out.rows_from_series("run_seconds", "procs", "s");
        out
    })
}

/// Run the Figure 3 sweep (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_share_and_writers_serialize() {
        // The 10000-cycle inter-request delay bounds how far readers can
        // pull ahead at 8 processors (they are near their delay-limited
        // floor); the decisive separation is visible but not unbounded.
        let writers = run_workload(Some(0), 8, 1);
        let readers = run_workload(Some(100), 8, 1);
        assert!(
            readers < writers * 0.75,
            "readers-only {readers:.3}s must beat writers-only {writers:.3}s"
        );
        // At the delay-limited floor, readers-only time barely grows with
        // the processor count while writers-only keeps climbing.
        let writers16 = run_workload(Some(0), 16, 1);
        let readers16 = run_workload(Some(100), 16, 1);
        assert!(
            readers16 < writers16 * 0.65,
            "{readers16:.3} vs {writers16:.3}"
        );
    }

    #[test]
    fn exclusive_lock_time_grows_with_procs() {
        let t4 = run_workload(None, 4, 2);
        let t16 = run_workload(None, 16, 2);
        assert!(t16 > t4, "contention must cost: {t4:.3} vs {t16:.3}");
    }

    #[test]
    fn more_sharing_is_never_much_slower() {
        let p40 = run_workload(Some(40), 8, 3);
        let p80 = run_workload(Some(80), 8, 3);
        assert!(p80 < p40 * 1.15, "80% sharing {p80:.3}s vs 40% {p40:.3}s");
    }
}

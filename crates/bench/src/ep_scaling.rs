//! EP — Embarrassingly Parallel scaling (§3.3 text).
//!
//! The paper reports linear speedup for EP and ~11 MFLOPS sustained per
//! processor (against the 40 MFLOPS peak). This experiment regenerates
//! both numbers.

use ksr_core::metrics::ScalingTable;
use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::Machine;
use ksr_nas::{EpConfig, EpSetup};

use crate::common::{ExperimentOutput, MetricRow, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "EP";
/// Registry title.
pub const TITLE: &str = "Embarrassingly Parallel kernel (§3.3)";
/// Cache schema version of the EP jobs — bump when [`ep_time`] or the
/// two-row job layout changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

/// `(seconds, aggregate MFLOPS)` for one EP run.
#[must_use]
pub fn ep_time(cfg: EpConfig, procs: usize, seed: u64) -> (f64, f64) {
    let mut m = Machine::ksr1(seed).expect("machine");
    let setup = EpSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    (
        cycles_to_seconds(r.duration_cycles(), m.config().clock_hz),
        r.mflops(),
    )
}

/// Plan the EP scaling experiment: one job per processor count; each
/// job reports both the run time and the aggregate MFLOPS.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let cfg = EpConfig {
        pairs: if quick { 1 << 14 } else { 1 << 18 },
        ..EpConfig::default()
    };
    let procs: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };
    let seed = opts.machine_seed(800);
    let jobs: Vec<Job> = procs
        .iter()
        .map(|&p| {
            let desc = JobDesc::new(ID, SCHEMA, format!("EP p={p}"), opts)
                .seed(seed)
                .param("pairs", cfg.pairs)
                .param("procs", p);
            Job::new(desc, p, move || {
                let (t, mf) = ep_time(cfg, p, seed);
                vec![
                    MetricRow::new("ep_run_seconds", &[], t, "s"),
                    MetricRow::new("mflops", &[], mf, "MFLOPS"),
                ]
            })
        })
        .collect();
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let times: Vec<(usize, f64)> = procs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, res.rows(i)[0].value))
            .collect();
        let mflops_rows: Vec<(usize, f64)> = procs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, res.rows(i)[1].value))
            .collect();
        let table = ScalingTable::from_times(&times);
        out.push_text(&table.render(&format!(
            "EP, 2^{} random pairs",
            cfg.pairs.trailing_zeros()
        )));
        let t1 = times[0].1;
        for &(p, t) in &times {
            out.row("ep_run_seconds", &[("procs", Json::from(p))], t, "s");
            out.row("speedup", &[("procs", Json::from(p))], t1 / t, "x");
        }
        for (p, mf) in mflops_rows {
            out.line(format_args!(
                "  {p:>2} procs: {:6.1} MFLOPS/proc (paper: ~11 sustained, 40 peak)",
                mf / p as f64
            ));
            out.row(
                "mflops_per_proc",
                &[("procs", Json::from(p))],
                mf / p as f64,
                "MFLOPS",
            );
        }
        out
    })
}

/// Run the EP scaling experiment (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_is_nearly_linear() {
        let cfg = EpConfig {
            pairs: 1 << 13,
            ..EpConfig::default()
        };
        let (t1, _) = ep_time(cfg, 1, 1);
        let (t4, _) = ep_time(cfg, 4, 1);
        assert!(t1 / t4 > 3.5, "EP speedup at 4 = {:.2}", t1 / t4);
    }
}

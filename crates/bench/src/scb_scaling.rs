//! SCB — barrier-episode scaling from 32 to 1024 cells.
//!
//! Figures 4 and 5 stop at the machines the authors could rent time on
//! (32 and 64 cells). The Topology API lets the same episode
//! methodology run on every configuration the KSR-1 design allows, up
//! to a three-level 1024-cell system. Each sweep point uses the
//! smallest ring tree that holds its processor count, so the curve
//! reflects the machine a buyer would actually configure:
//!
//! | cells | topology      | levels |
//! |-------|---------------|--------|
//! | 32    | ring[32]      | 1      |
//! | 64    | ring[32x2]    | 2      |
//! | 128   | ring[32x4]    | 2      |
//! | 256   | ring[32x8]    | 2      |
//! | 512   | ring[32x8x2]  | 3      |
//! | 1024  | ring[32x8x4]  | 3      |
//!
//! Log-depth barriers (tournament, tree, MCS) pay O(log p) rounds, but
//! on a ring hierarchy the later rounds span wider LCA crossings — the
//! same effect recent multi-level-interconnect studies report for
//! fractal/tree topologies (Bertuletti et al., 2023).

use ksr_core::table::Series;
use ksr_core::time::cycles_to_seconds;
use ksr_machine::{program, Machine, MachineConfig, Program};
use ksr_sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode};

use crate::common::{ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "SCB";
/// Registry title.
pub const TITLE: &str = "Barrier-episode scaling from 32 to 1024 cells on ring trees";
/// Cache schema version of the SCB jobs — bump when [`episode_time`] or
/// the job layout changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

/// The full sweep: `(cells, ring spec)` per point.
pub const POINTS: &[(usize, &[usize])] = &[
    (32, &[32]),
    (64, &[32, 2]),
    (128, &[32, 4]),
    (256, &[32, 8]),
    (512, &[32, 8, 2]),
    (1024, &[32, 8, 4]),
];

/// Mean seconds per barrier episode with every cell of the `spec`
/// machine participating.
#[must_use]
pub fn episode_time(spec: &[usize], kind: BarrierKind, episodes: usize, seed: u64) -> f64 {
    let mut m = Machine::new(MachineConfig::ksr_ring(seed, spec)).expect("machine");
    let procs = m.config().cells;
    let b = AnyBarrier::alloc(kind, &mut m, procs).expect("barrier alloc");
    let warmup = 2;
    let run_eps = episodes + warmup;
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|p| {
            program(move |mut cpu| async move {
                let mut ep = Episode::default();
                for e in 0..run_eps {
                    cpu.compute(((p * 89 + e * 37) % 200) as u64 + 20);
                    b.wait(&mut cpu, &mut ep).await;
                }
            })
        })
        .collect();
    let r = m.run(programs).expect("run");
    cycles_to_seconds(r.duration_cycles() / run_eps as u64, m.config().clock_hz)
}

/// Plan SCB: one job per (barrier kind, machine size), kind-major.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let points: Vec<(usize, &'static [usize])> = if quick {
        vec![(32, &[32]), (128, &[32, 4]), (256, &[32, 8])]
    } else {
        POINTS.to_vec()
    };
    let kinds: Vec<BarrierKind> = if quick {
        vec![BarrierKind::Mcs, BarrierKind::Tournament]
    } else {
        vec![BarrierKind::Mcs, BarrierKind::Tournament, BarrierKind::Tree]
    };
    let episodes = if quick { 4 } else { 10 };
    let seed = opts.machine_seed(4200);
    let mut jobs = Vec::new();
    for &kind in &kinds {
        for &(cells, spec) in &points {
            let point_seed = seed + cells as u64;
            let desc = JobDesc::new(ID, SCHEMA, format!("SCB {} p={cells}", kind.label()), opts)
                .seed(point_seed)
                .param("barrier", kind.label())
                .param("cells", cells)
                .param(
                    "spec",
                    spec.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("x"),
                )
                .param("episodes", episodes);
            jobs.push(Job::value(
                desc,
                cells,
                "barrier_episode_seconds",
                "s",
                move || episode_time(spec, kind, episodes, point_seed),
            ));
        }
    }
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let series: Vec<Series> = kinds
            .iter()
            .enumerate()
            .map(|(ki, &kind)| {
                let mut s = Series::new(kind.label());
                for (pi, &(cells, _)) in points.iter().enumerate() {
                    s.push(cells as f64, res.value(ki * points.len() + pi));
                }
                s
            })
            .collect();
        let (p0, pmax) = (points[0].0, points[points.len() - 1].0);
        out.line(format_args!(
            "episode time growth {p0}→{pmax} cells (machine grows with the processor set):"
        ));
        for s in &series {
            if let (Some(&(_, first)), Some(&(_, last))) = (s.points.first(), s.points.last()) {
                let doublings = ((pmax / p0) as f64).log2();
                out.line(format_args!(
                    "  {:<12} {:6.1}x total, {:4.2}x per doubling of p",
                    s.label,
                    last / first,
                    (last / first).powf(1.0 / doublings)
                ));
            }
        }
        out.push_text(
            "log-depth barriers grow by a near-constant factor per doubling, but the factor \
             exceeds the ideal log2 slope because each added ring level widens the LCA \
             crossing of the final rounds — the multi-level-interconnect effect reported for \
             hierarchical clusters (cf. Bertuletti et al. 2023); a counter barrier would grow \
             linearly and is omitted as it already loses at 32 cells (Figure 4).",
        );
        out.series = series;
        out.rows_from_series("barrier_episode_seconds", "cells", "s");
        out
    })
}

/// SCB (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episodes_slow_down_as_the_tree_deepens() {
        let small = episode_time(&[32], BarrierKind::Mcs, 4, 9);
        let mid = episode_time(&[32, 4], BarrierKind::Mcs, 4, 9);
        assert!(
            mid > small,
            "two-level 128-cell episodes must cost more: {small:.2e} vs {mid:.2e}"
        );
    }

    #[test]
    fn full_point_table_spans_one_to_three_levels() {
        let levels: Vec<usize> = POINTS.iter().map(|&(_, s)| s.len()).collect();
        assert_eq!(levels, [1, 2, 2, 2, 3, 3]);
        for &(cells, spec) in POINTS {
            assert_eq!(cells, spec.iter().product::<usize>());
        }
    }
}

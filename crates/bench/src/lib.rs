//! # ksr-bench
//!
//! The experiment harness: one module per table/figure of *"Scalability
//! Study of the KSR-1"*, each regenerating the same rows or curves the
//! paper reports (see the per-experiment index in `DESIGN.md`).
//!
//! Every module exposes a `run(quick) -> ExperimentOutput`; the matching
//! binaries in `src/bin/` print the output and write it under `results/`.
//! Set `KSR_QUICK=1` for fast reduced sweeps. `run_all` regenerates
//! everything.

#![warn(missing_docs)]

pub mod ablations;
pub mod common;
pub mod ep_scaling;
pub mod ext_wishlist;
pub mod fig2_latency;
pub mod fig3_locks;
pub mod fig4_barriers;
pub mod fig8_speedup;
pub mod table1_cg;
pub mod table2_is;
pub mod table3_sp;

use common::ExperimentOutput;

/// Run every experiment, in the DESIGN.md index order.
#[must_use]
pub fn run_all(quick: bool) -> Vec<ExperimentOutput> {
    vec![
        fig2_latency::run(quick),
        fig2_latency::run_strides(quick),
        fig3_locks::run(quick),
        fig4_barriers::run_fig4(quick),
        fig4_barriers::run_fig5(quick),
        fig4_barriers::run_sec323(quick),
        table1_cg::run(quick),
        table2_is::run(quick),
        fig8_speedup::run(quick),
        table3_sp::run_table3(quick),
        table3_sp::run_table4(quick),
        ep_scaling::run(quick),
        ablations::run(quick),
        ext_wishlist::run(quick),
    ]
}

/// Print an experiment and persist it under the results directory.
pub fn emit(out: &ExperimentOutput) {
    println!("{}", out.render());
    match out.write_to(&common::results_dir()) {
        Ok(path) => eprintln!("[written: {}]", path.display()),
        Err(e) => eprintln!("[warning: could not write results file: {e}]"),
    }
}

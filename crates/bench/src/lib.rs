//! # ksr-bench
//!
//! The experiment harness: one module per table/figure of *"Scalability
//! Study of the KSR-1"*, each regenerating the same rows or curves the
//! paper reports (see the per-experiment index in `DESIGN.md`).
//!
//! Experiments are [`registry::Experiment`]s: look them up in
//! [`registry::REGISTRY`]. Each experiment describes itself as an
//! [`exec::ExperimentPlan`] — a list of pure [`exec::Job`]s (config +
//! seed + program factory → typed [`MetricRow`]s) plus an ordered
//! reduce — and [`exec::execute`] schedules the jobs of many plans over
//! a pool of worker threads (`--jobs N` / `KSR_JOBS`). Because every
//! job is pure and the reduce runs in job order, `results/*.json` and
//! `summary.json` are byte-identical at any worker count.
//!
//! Purity also powers the sweep-at-scale machinery: every job carries a
//! canonical [`exec::JobDesc`] whose fingerprint keys the
//! content-addressed results cache ([`cache::ResultsCache`],
//! `--cache DIR` / `KSR_CACHE` — warm re-runs execute nothing), and
//! `--shard i/N` / `--join` split one sweep across processes while the
//! ordered reduce keeps the final artifacts byte-identical to an
//! unsharded run.
//!
//! Each reduce returns an [`ExperimentOutput`] carrying rendered text,
//! figure series, and typed [`MetricRow`]s; `write_to` persists
//! `<id>.txt` / `<id>.csv` / `<id>.json`, and [`common::write_summary`]
//! indexes a whole run in `summary.json`. The `run_all` binary is the
//! CLI front end (`--list`, `--only FIG4,TAB1`, `--quick`, `--jobs`);
//! the per-figure binaries route through the same registry.
//! `KSR_QUICK=1`, `KSR_SEED`, `KSR_RESULTS`, and `KSR_JOBS` provide the
//! [`RunOpts`] defaults.

#![warn(missing_docs)]

pub mod ablations;
pub mod cache;
pub mod check;
pub mod cli;
pub mod cmb_combining;
pub mod common;
pub mod ep_scaling;
pub mod exec;
pub mod explore_exp;
pub mod ext_wishlist;
pub mod fig2_latency;
pub mod fig3_locks;
pub mod fig4_barriers;
pub mod fig8_speedup;
pub mod lad_latency;
pub mod lck_locks;
pub mod perf;
pub mod registry;
pub mod scb_scaling;
pub mod table1_cg;
pub mod table2_is;
pub mod table3_sp;

pub use cache::ResultsCache;
pub use common::{ExperimentOutput, MetricRow, RunOpts, Shard};
pub use exec::{
    execute, execute_shard, CacheStats, ExecReport, ExperimentPlan, ExperimentResult, Job, JobDesc,
    JobResults, ShardReport,
};
pub use registry::{Experiment, FnExperiment, REGISTRY};

/// Run every registered experiment, in the DESIGN.md index order.
#[must_use]
pub fn run_all(opts: &RunOpts) -> Vec<ExperimentOutput> {
    REGISTRY.iter().map(|e| e.run(opts)).collect()
}

/// Deprecated shim for the pre-registry API.
#[deprecated(note = "use run_all(&RunOpts) or the registry directly")]
#[must_use]
pub fn run_all_quick(quick: bool) -> Vec<ExperimentOutput> {
    run_all(&RunOpts {
        quick,
        ..RunOpts::default()
    })
}

/// Print an experiment and persist it under the results directory.
pub fn emit(out: &ExperimentOutput, opts: &RunOpts) {
    println!("{}", out.render());
    match out.write_to(&opts.results_dir) {
        Ok(path) => eprintln!("[written: {}]", path.display()),
        Err(e) => eprintln!("[warning: could not write results file: {e}]"),
    }
}

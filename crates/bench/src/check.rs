//! `--check` / `KSR_CHECK=1` verification mode for the experiment
//! harness.
//!
//! Four passes from `ksr-verify`, all consuming the trace stream and
//! never feeding back into virtual time (a checked run's result files
//! are bit-identical to an unchecked run's):
//!
//! 1. **Coherence invariants** — each executor job runs inside a
//!    [`CheckScope`]: a scoped, thread-local
//!    [`ksr_machine::ObserverScope`] that attaches a fresh
//!    [`PredictiveSink`] (a [`ksr_verify::CheckingSink`] plus a
//!    lock-order graph) to *every* machine the job builds, shadowing
//!    each sub-page's global state and flagging protocol violations with
//!    the offending cycle, processor, and a short event-window replay.
//!    Jobs on different workers check independently; their [`ExpCheck`]
//!    results merge in job order, so `violations.json` is byte-identical
//!    at any `-j`.
//! 2. **Happens-before races** — the IS kernel runs under a
//!    [`CollectingSink`] and its access stream goes through the
//!    vector-clock [`RaceDetector`]; the properly locked kernel must be
//!    race-free, and the detector must catch the deliberately racy
//!    phase-6 variant (a checker self-test: failing to find the seeded
//!    race is itself a violation).
//! 3. **Predictive passes** — the locked IS trace goes through the
//!    Eraser-style [`lockset_analysis`] (must be clean thanks to its
//!    barrier-era discipline), and the seeded lock-order-inversion
//!    mutant from `ksr_sync::mutants` must be flagged as a potential
//!    deadlock *from its clean default-schedule trace* while the
//!    correctly nested counterpart stays silent (both self-tests).
//! 4. **Schedule lints** — the declarative schedule of the IS kernel is
//!    linted ([`lint_schedules`]), and a deliberately broken schedule
//!    must produce findings (another self-test).
//!
//! Everything lands in `<results>/violations.json`; any violation makes
//! the run exit non-zero, which is how `scripts/check.sh` gates CI.
//!
//! Checked runs bypass the results cache entirely (`--cache` is
//! ignored, with a notice): a cache hit would skip the job and with it
//! every verification pass, and a checked run's purpose is to observe
//! the execution, not to reuse old rows. `--shard` with `--check` is
//! rejected at argument parsing for the same reason.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use ksr_core::trace::{TraceEvent, Tracer};
use ksr_core::Json;
use ksr_machine::{Machine, MachineObserver, ObserverScope};
use ksr_nas::{IsConfig, IsSetup};
use ksr_sync::mutants::LockOrderMutant;
use ksr_verify::report::{lint_to_json, predict_to_json, race_to_json, violation_to_json};
use ksr_verify::{
    lint_schedules, lockset_analysis, CollectingSink, LintFinding, LockOrderGraph, PredictFinding,
    PredictRule, PredictiveSink, ProcSchedule, RaceDetector, RaceReport, SchedOp, Violation,
};

use crate::common::RunOpts;

/// Aggregated coherence-checking results for one job (and, after
/// merging in job order, one experiment).
#[derive(Debug, Default)]
pub struct ExpCheck {
    /// Machines observed.
    pub machines: usize,
    /// Coherence events the sinks saw.
    pub events: u64,
    /// Violations dropped past each sink's retention cap.
    pub truncated: u64,
    /// Retained violations, in machine-construction order.
    pub violations: Vec<Violation>,
    /// Predictive lock-order findings, in machine-construction order.
    pub predict: Vec<PredictFinding>,
}

impl ExpCheck {
    /// Violation count including those past the retention cap and the
    /// predictive findings.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.truncated + self.predict.len() as u64
    }

    /// Fold `next` (the following job's results) into `self`.
    pub fn merge(&mut self, next: Self) {
        self.machines += next.machines;
        self.events += next.events;
        self.truncated += next.truncated;
        self.violations.extend(next.violations);
        self.predict.extend(next.predict);
    }

    /// JSON entry for the `coherence.experiments` array.
    #[must_use]
    pub fn to_json(&self, id: &str) -> Json {
        Json::obj([
            ("id", Json::from(id)),
            ("machines", Json::from(self.machines)),
            ("events", Json::from(self.events)),
            ("truncated", Json::from(self.truncated)),
            (
                "violations",
                Json::arr(self.violations.iter().map(violation_to_json)),
            ),
            (
                "predict",
                Json::arr(self.predict.iter().map(predict_to_json)),
            ),
        ])
    }
}

/// A scope during which every [`Machine`] built **on this thread** gets
/// a fresh [`PredictiveSink`] attached as its tracer. One per executor
/// job; concurrent jobs on other workers have their own scopes and
/// never see each other's machines. Dropping (or draining) the scope
/// uninstalls the observer.
pub struct CheckScope {
    sinks: Arc<Mutex<Vec<Arc<Mutex<PredictiveSink>>>>>,
    _scope: ObserverScope,
}

impl std::fmt::Debug for CheckScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckScope")
            .field("machines", &self.machines_seen())
            .finish_non_exhaustive()
    }
}

impl CheckScope {
    /// Install the checking observer for the current thread.
    #[must_use]
    pub fn install() -> Self {
        let sinks: Arc<Mutex<Vec<Arc<Mutex<PredictiveSink>>>>> = Arc::default();
        let registry = Arc::clone(&sinks);
        let observer: Arc<MachineObserver> = Arc::new(move |m: &mut Machine| {
            let (tracer, sink) = Tracer::attach(PredictiveSink::default());
            m.set_tracer(tracer);
            registry
                .lock()
                .expect("checker registry poisoned")
                .push(sink);
        });
        Self {
            sinks,
            _scope: ObserverScope::install(observer),
        }
    }

    /// Number of machines observed so far.
    #[must_use]
    pub fn machines_seen(&self) -> usize {
        self.sinks.lock().expect("checker registry poisoned").len()
    }

    /// Uninstall the observer and collect every sink's results.
    #[must_use]
    pub fn drain(self) -> ExpCheck {
        let sinks = self.sinks.lock().expect("checker registry poisoned");
        let mut check = ExpCheck {
            machines: sinks.len(),
            ..ExpCheck::default()
        };
        for sink in sinks.iter() {
            let s = sink.lock().expect("checking sink poisoned");
            check.events += s.checker().events_seen();
            check.truncated += s.checker().truncated();
            check.violations.extend(s.violations().iter().cloned());
            check.predict.extend(s.predict_findings());
        }
        check
    }
}

/// Run the race/lint suites, assemble the `violations.json` document
/// from the per-experiment coherence results (already merged in job
/// order), and write it. Returns the file path and whether the whole
/// run was clean. Suite progress goes to stderr.
pub fn finalize(
    entries: &[(&'static str, ExpCheck)],
    opts: &RunOpts,
) -> std::io::Result<(PathBuf, bool)> {
    let coherence_violations: u64 = entries.iter().map(|(_, c)| c.total_violations()).sum();
    let (clean_is_events, procs) = is_trace(opts, false);
    let (racy_is_events, _) = is_trace(opts, true);
    let (race_json, races_clean) = race_suite(&clean_is_events, &racy_is_events, procs);
    let (predict_json, predicts_clean) = predict_suite(opts, &clean_is_events);
    let (lint_json, lints_clean) = lint_suite();

    let clean = coherence_violations == 0 && races_clean && predicts_clean && lints_clean;
    let doc = Json::obj([
        ("quick", Json::from(opts.quick)),
        ("seed", Json::from(opts.seed)),
        ("clean", Json::from(clean)),
        (
            "coherence",
            Json::obj([
                ("total_violations", Json::from(coherence_violations)),
                (
                    "experiments",
                    Json::Arr(entries.iter().map(|(id, c)| c.to_json(id)).collect()),
                ),
            ]),
        ),
        ("races", race_json),
        ("predict", predict_json),
        ("lints", lint_json),
    ]);
    let path = opts.results_dir.join("violations.json");
    std::fs::create_dir_all(&opts.results_dir)?;
    std::fs::write(&path, doc.render_pretty())?;
    eprintln!("[violations: {}]", path.display());
    if clean {
        eprintln!(
            "[check: PASS — no coherence violations, no races, no predictive findings, no \
             lint findings]"
        );
    } else {
        eprintln!(
            "[check: FAIL — {coherence_violations} coherence violation(s), races clean: \
             {races_clean}, predictive clean: {predicts_clean}, lints clean: {lints_clean}]"
        );
    }
    Ok((path, clean))
}

/// IS configuration for the verification suites: small enough to run on
/// every `--check` invocation, large enough that phase 6 overlaps across
/// processors.
fn suite_is_config() -> (IsConfig, usize) {
    (
        IsConfig {
            keys: 1 << 12,
            max_key: 256,
            seed: 19_930_401,
            chunk: 64,
        },
        4,
    )
}

/// Run IS under a collecting tracer and hand back its full trace (the
/// race and predictive suites both analyze it).
fn is_trace(opts: &RunOpts, racy: bool) -> (Vec<TraceEvent>, usize) {
    let (cfg, procs) = suite_is_config();
    let mut m = Machine::ksr1_scaled(opts.machine_seed(50), 64).expect("machine");
    let (tracer, sink) = Tracer::attach(CollectingSink::new());
    m.set_tracer(tracer);
    let setup = IsSetup::new(&mut m, cfg, procs).expect("IS setup");
    m.run(if racy {
        setup.programs_racy_phase6()
    } else {
        setup.programs()
    })
    .expect("run");
    let events = sink.lock().expect("collector poisoned").take();
    (events, procs)
}

/// The race pass: the locked IS kernel must be race-free, and the
/// deliberately racy phase-6 variant must be caught (with at least one
/// cross-processor pair involving a write).
fn race_suite(
    clean_is_events: &[TraceEvent],
    racy_is_events: &[TraceEvent],
    procs: usize,
) -> (Json, bool) {
    let clean_reports: Vec<RaceReport> = RaceDetector::new(procs).analyze(clean_is_events);
    let racy_reports: Vec<RaceReport> = RaceDetector::new(procs).analyze(racy_is_events);
    let clean_is_clean = clean_reports.is_empty();
    let seeded_race_caught = racy_reports
        .iter()
        .any(|r| r.first.cell != r.second.cell && (r.first.write || r.second.write));
    eprintln!(
        "[check: races: locked IS {} ({} report(s)); racy IS self-test {} ({} report(s))]",
        if clean_is_clean { "clean" } else { "RACY" },
        clean_reports.len(),
        if seeded_race_caught {
            "caught"
        } else {
            "MISSED"
        },
        racy_reports.len(),
    );
    let json = Json::obj([
        (
            "clean_is_reports",
            Json::arr(clean_reports.iter().map(race_to_json)),
        ),
        (
            "racy_is_selfcheck",
            Json::obj([
                ("seeded_race_caught", Json::from(seeded_race_caught)),
                ("reports", Json::arr(racy_reports.iter().map(race_to_json))),
            ]),
        ),
    ]);
    (json, clean_is_clean && seeded_race_caught)
}

/// Trace the lock-order mutant (or its correctly nested counterpart)
/// under the default deterministic schedule and run the lock-order
/// graph over the result.
fn lock_order_findings(opts: &RunOpts, clean: bool) -> Vec<PredictFinding> {
    let mut m = Machine::ksr1_scaled(opts.machine_seed(51), 64).expect("machine");
    let (tracer, sink) = Tracer::attach(CollectingSink::new());
    m.set_tracer(tracer);
    let w = LockOrderMutant::alloc(&mut m).expect("alloc");
    m.run(if clean {
        w.clean_programs()
    } else {
        w.programs()
    })
    .expect("run");
    let events = sink.lock().expect("collector poisoned").take();
    let mut graph = LockOrderGraph::new();
    graph.ingest(&events);
    graph.findings()
}

/// The predictive pass: the locked IS trace must survive the
/// Eraser-style lockset analysis, the seeded lock-order inversion must
/// be predicted as a potential deadlock from its *clean* default
/// schedule (self-test), and the correctly nested counterpart must stay
/// silent (counter-self-test).
fn predict_suite(opts: &RunOpts, locked_is_events: &[TraceEvent]) -> (Json, bool) {
    let lockset = lockset_analysis(locked_is_events);
    let mutant = lock_order_findings(opts, false);
    let nested = lock_order_findings(opts, true);
    let is_lockset_clean = lockset.is_empty();
    let deadlock_predicted = mutant
        .iter()
        .any(|f| f.rule == PredictRule::PotentialDeadlock);
    let nested_silent = nested.is_empty();
    eprintln!(
        "[check: predict: locked IS lockset {} ({} finding(s)); lock-order mutant {}; clean \
         nesting {}]",
        if is_lockset_clean { "clean" } else { "DIRTY" },
        lockset.len(),
        if deadlock_predicted {
            "predicted"
        } else {
            "MISSED"
        },
        if nested_silent { "silent" } else { "NOISY" },
    );
    let to_arr = |fs: &[PredictFinding]| Json::arr(fs.iter().map(predict_to_json));
    let json = Json::obj([
        ("locked_is_lockset_findings", to_arr(&lockset)),
        (
            "lock_order_selfcheck",
            Json::obj([
                ("deadlock_predicted", Json::from(deadlock_predicted)),
                ("findings", to_arr(&mutant)),
            ]),
        ),
        ("clean_nesting_findings", to_arr(&nested)),
    ]);
    (
        json,
        is_lockset_clean && deadlock_predicted && nested_silent,
    )
}

/// The declarative schedule of the IS kernel (Figure 9): six barrier
/// waits separating the phases, and phase 6's per-chunk lock/
/// update/unlock loop. This is what the schedule linter sees.
fn is_schedules(procs: usize, n_chunks: usize) -> Vec<ProcSchedule> {
    (0..procs)
        .map(|p| {
            let mut ops = Vec::new();
            let barrier = SchedOp::Barrier {
                id: 0,
                arity: procs,
            };
            // Phases 1–5 end in barrier waits (the data accesses are
            // untyped at this level; the linter checks sync shape).
            for _ in 0..5 {
                ops.push(barrier);
            }
            // Phase 6: rotate over every chunk under its lock.
            for s in 0..n_chunks {
                let c = ((p * n_chunks / procs) + s) % n_chunks;
                ops.push(SchedOp::Acquire { lock: c as u64 });
                ops.push(SchedOp::Write { subpage: c as u64 });
                ops.push(SchedOp::Release { lock: c as u64 });
            }
            ops.push(barrier);
            ProcSchedule::new(p, ops)
        })
        .collect()
}

/// A deliberately broken schedule set for the lint self-test: mismatched
/// barrier arity, an unreleased lock, and a useless prefetch.
fn broken_schedules() -> Vec<ProcSchedule> {
    vec![
        ProcSchedule::new(
            0,
            vec![
                SchedOp::Prefetch { subpage: 40 },
                SchedOp::Acquire { lock: 1 },
                SchedOp::Barrier { id: 9, arity: 2 },
            ],
        ),
        ProcSchedule::new(1, vec![SchedOp::Barrier { id: 9, arity: 3 }]),
    ]
}

/// The lint pass: the real IS schedule must lint clean, and the broken
/// fixture must produce findings.
fn lint_suite() -> (Json, bool) {
    let (cfg, procs) = suite_is_config();
    let findings = lint_schedules(&is_schedules(procs, cfg.max_key / cfg.chunk));
    let self_test = lint_schedules(&broken_schedules());
    let schedules_clean = findings.is_empty();
    let self_test_fires = !self_test.is_empty();
    eprintln!(
        "[check: lints: IS schedule {} ({} finding(s)); broken-schedule self-test {}]",
        if schedules_clean { "clean" } else { "DIRTY" },
        findings.len(),
        if self_test_fires { "caught" } else { "MISSED" },
    );
    let to_arr = |fs: &[LintFinding]| Json::arr(fs.iter().map(lint_to_json));
    let json = Json::obj([
        ("is_schedule_findings", to_arr(&findings)),
        (
            "broken_schedule_selfcheck",
            Json::obj([
                ("findings_expected", Json::from(true)),
                ("findings", to_arr(&self_test)),
            ]),
        ),
    ]);
    (json, schedules_clean && self_test_fires)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_schedule_lints_clean_and_broken_fixture_fires() {
        assert!(lint_schedules(&is_schedules(4, 4)).is_empty());
        let findings = lint_schedules(&broken_schedules());
        assert!(findings.len() >= 3, "{findings:?}");
    }

    #[test]
    fn check_scope_attaches_a_sink_per_machine() {
        let scope = CheckScope::install();
        let _m = Machine::ksr1_scaled(1, 64).expect("machine");
        let _m2 = Machine::ksr1_scaled(2, 64).expect("machine");
        assert_eq!(scope.machines_seen(), 2);
        let check = scope.drain();
        assert_eq!(check.machines, 2);
        assert!(check.violations.is_empty() && check.truncated == 0);
    }

    #[test]
    fn exp_checks_merge_in_order() {
        let mut a = ExpCheck {
            machines: 1,
            events: 10,
            ..ExpCheck::default()
        };
        a.merge(ExpCheck {
            machines: 2,
            events: 5,
            truncated: 3,
            ..ExpCheck::default()
        });
        assert_eq!(a.machines, 3);
        assert_eq!(a.events, 15);
        assert_eq!(a.total_violations(), 3);
    }
}

//! `--check` / `KSR_CHECK=1` verification mode for the experiment
//! harness.
//!
//! Three passes from `ksr-verify`, all consuming the trace stream and
//! never feeding back into virtual time (a checked run's result files
//! are bit-identical to an unchecked run's):
//!
//! 1. **Coherence invariants** — a [`CheckingSink`] is attached (via the
//!    [`ksr_machine::set_machine_observer`] hook) to *every* machine an
//!    experiment builds, shadowing each sub-page's global state and
//!    flagging protocol violations with the offending cycle, processor,
//!    and a short event-window replay.
//! 2. **Happens-before races** — the IS kernel runs under a
//!    [`CollectingSink`] and its access stream goes through the
//!    vector-clock [`RaceDetector`]; the properly locked kernel must be
//!    race-free, and the detector must catch the deliberately racy
//!    phase-6 variant (a checker self-test: failing to find the seeded
//!    race is itself a violation).
//! 3. **Schedule lints** — the declarative schedule of the IS kernel is
//!    linted ([`lint_schedules`]), and a deliberately broken schedule
//!    must produce findings (another self-test).
//!
//! Everything lands in `<results>/violations.json`; any violation makes
//! the run exit non-zero, which is how `scripts/check.sh` gates CI.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use ksr_core::trace::Tracer;
use ksr_core::Json;
use ksr_machine::{set_machine_observer, Machine, MachineObserver};
use ksr_nas::{IsConfig, IsSetup};
use ksr_verify::report::{lint_to_json, race_to_json, violation_to_json};
use ksr_verify::{
    lint_schedules, CheckingSink, CollectingSink, LintFinding, ProcSchedule, RaceDetector,
    RaceReport, SchedOp, Violation,
};

use crate::cli::emit;
use crate::common::{write_summary, RunOpts};
use crate::registry::{Experiment, FnExperiment};

/// A scope during which every [`Machine::new`] gets a fresh
/// [`CheckingSink`] attached as its tracer. Dropping the session
/// uninstalls the observer.
struct CheckSession {
    sinks: Arc<Mutex<Vec<Arc<Mutex<CheckingSink>>>>>,
}

impl CheckSession {
    fn install() -> Self {
        let sinks: Arc<Mutex<Vec<Arc<Mutex<CheckingSink>>>>> = Arc::default();
        let registry = Arc::clone(&sinks);
        let observer: Arc<MachineObserver> = Arc::new(move |m: &mut Machine| {
            let (tracer, sink) = Tracer::attach(CheckingSink::default());
            m.set_tracer(tracer);
            registry
                .lock()
                .expect("checker registry poisoned")
                .push(sink);
        });
        let _previous = set_machine_observer(Some(observer));
        Self { sinks }
    }

    /// Number of machines observed so far (a drain high-water mark).
    fn machines_seen(&self) -> usize {
        self.sinks.lock().expect("checker registry poisoned").len()
    }

    /// Collect results from every sink attached since `start`:
    /// (machines, events, violations, violations past the retention cap).
    fn drain_from(&self, start: usize) -> (usize, u64, Vec<Violation>, u64) {
        let sinks = self.sinks.lock().expect("checker registry poisoned");
        let mut events = 0;
        let mut truncated = 0;
        let mut violations = Vec::new();
        for sink in &sinks[start..] {
            let s = sink.lock().expect("checking sink poisoned");
            events += s.events_seen();
            truncated += s.truncated();
            violations.extend(s.violations().iter().cloned());
        }
        (sinks.len() - start, events, violations, truncated)
    }
}

impl Drop for CheckSession {
    fn drop(&mut self) {
        let _ = set_machine_observer(None);
    }
}

/// Run `selected` with checking enabled, then the race and lint suites;
/// write `violations.json`; exit non-zero on any violation.
pub fn run_checked(selected: &[&FnExperiment], opts: &RunOpts) -> ExitCode {
    let session = CheckSession::install();
    let mut outputs = Vec::new();
    let mut coherence_entries = Vec::new();
    let mut coherence_violations: u64 = 0;
    for exp in selected {
        let mark = session.machines_seen();
        outputs.push(emit(exp, opts));
        let (machines, events, violations, truncated) = session.drain_from(mark);
        coherence_violations += violations.len() as u64 + truncated;
        eprintln!(
            "[check: {}: {machines} machine(s), {events} coherence event(s), {} violation(s)]",
            exp.id(),
            violations.len() as u64 + truncated,
        );
        coherence_entries.push(Json::obj([
            ("id", Json::from(exp.id())),
            ("machines", Json::from(machines)),
            ("events", Json::from(events)),
            ("truncated", Json::from(truncated)),
            (
                "violations",
                Json::arr(violations.iter().map(violation_to_json)),
            ),
        ]));
    }
    // The race/lint suites attach their own sinks; stop shadowing first.
    drop(session);

    match write_summary(&outputs, opts) {
        Ok(path) => eprintln!("[summary: {}]", path.display()),
        Err(e) => {
            eprintln!("error: could not write summary: {e}");
            return ExitCode::FAILURE;
        }
    }

    let (race_json, races_clean) = race_suite(opts);
    let (lint_json, lints_clean) = lint_suite();

    let clean = coherence_violations == 0 && races_clean && lints_clean;
    let doc = Json::obj([
        ("quick", Json::from(opts.quick)),
        ("seed", Json::from(opts.seed)),
        ("clean", Json::from(clean)),
        (
            "coherence",
            Json::obj([
                ("total_violations", Json::from(coherence_violations)),
                ("experiments", Json::Arr(coherence_entries)),
            ]),
        ),
        ("races", race_json),
        ("lints", lint_json),
    ]);
    let path = opts.results_dir.join("violations.json");
    if let Err(e) = std::fs::create_dir_all(&opts.results_dir)
        .and_then(|()| std::fs::write(&path, doc.render_pretty()))
    {
        eprintln!("error: could not write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[violations: {}]", path.display());
    if clean {
        eprintln!("[check: PASS — no coherence violations, no races, no lint findings]");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "[check: FAIL — {coherence_violations} coherence violation(s), races clean: \
             {races_clean}, lints clean: {lints_clean}]"
        );
        ExitCode::FAILURE
    }
}

/// IS configuration for the verification suites: small enough to run on
/// every `--check` invocation, large enough that phase 6 overlaps across
/// processors.
fn suite_is_config() -> (IsConfig, usize) {
    (
        IsConfig {
            keys: 1 << 12,
            max_key: 256,
            seed: 19_930_401,
            chunk: 64,
        },
        4,
    )
}

/// Run IS under a collecting tracer and analyze its access stream.
fn is_races(opts: &RunOpts, racy: bool) -> Vec<RaceReport> {
    let (cfg, procs) = suite_is_config();
    let mut m = Machine::ksr1_scaled(opts.machine_seed(50), 64).expect("machine");
    let (tracer, sink) = Tracer::attach(CollectingSink::new());
    m.set_tracer(tracer);
    let setup = IsSetup::new(&mut m, cfg, procs).expect("IS setup");
    m.run(if racy {
        setup.programs_racy_phase6()
    } else {
        setup.programs()
    });
    let events = sink.lock().expect("collector poisoned").take();
    RaceDetector::new(procs).analyze(&events)
}

/// The race pass: the locked IS kernel must be race-free, and the
/// deliberately racy phase-6 variant must be caught (with at least one
/// cross-processor pair involving a write).
fn race_suite(opts: &RunOpts) -> (Json, bool) {
    let clean_reports = is_races(opts, false);
    let racy_reports = is_races(opts, true);
    let clean_is_clean = clean_reports.is_empty();
    let seeded_race_caught = racy_reports
        .iter()
        .any(|r| r.first.cell != r.second.cell && (r.first.write || r.second.write));
    eprintln!(
        "[check: races: locked IS {} ({} report(s)); racy IS self-test {} ({} report(s))]",
        if clean_is_clean { "clean" } else { "RACY" },
        clean_reports.len(),
        if seeded_race_caught {
            "caught"
        } else {
            "MISSED"
        },
        racy_reports.len(),
    );
    let json = Json::obj([
        (
            "clean_is_reports",
            Json::arr(clean_reports.iter().map(race_to_json)),
        ),
        (
            "racy_is_selfcheck",
            Json::obj([
                ("seeded_race_caught", Json::from(seeded_race_caught)),
                ("reports", Json::arr(racy_reports.iter().map(race_to_json))),
            ]),
        ),
    ]);
    (json, clean_is_clean && seeded_race_caught)
}

/// The declarative schedule of the IS kernel (Figure 9): six barrier
/// waits separating the phases, and phase 6's per-chunk lock/
/// update/unlock loop. This is what the schedule linter sees.
fn is_schedules(procs: usize, n_chunks: usize) -> Vec<ProcSchedule> {
    (0..procs)
        .map(|p| {
            let mut ops = Vec::new();
            let barrier = SchedOp::Barrier {
                id: 0,
                arity: procs,
            };
            // Phases 1–5 end in barrier waits (the data accesses are
            // untyped at this level; the linter checks sync shape).
            for _ in 0..5 {
                ops.push(barrier);
            }
            // Phase 6: rotate over every chunk under its lock.
            for s in 0..n_chunks {
                let c = ((p * n_chunks / procs) + s) % n_chunks;
                ops.push(SchedOp::Acquire { lock: c as u64 });
                ops.push(SchedOp::Write { subpage: c as u64 });
                ops.push(SchedOp::Release { lock: c as u64 });
            }
            ops.push(barrier);
            ProcSchedule::new(p, ops)
        })
        .collect()
}

/// A deliberately broken schedule set for the lint self-test: mismatched
/// barrier arity, an unreleased lock, and a useless prefetch.
fn broken_schedules() -> Vec<ProcSchedule> {
    vec![
        ProcSchedule::new(
            0,
            vec![
                SchedOp::Prefetch { subpage: 40 },
                SchedOp::Acquire { lock: 1 },
                SchedOp::Barrier { id: 9, arity: 2 },
            ],
        ),
        ProcSchedule::new(1, vec![SchedOp::Barrier { id: 9, arity: 3 }]),
    ]
}

/// The lint pass: the real IS schedule must lint clean, and the broken
/// fixture must produce findings.
fn lint_suite() -> (Json, bool) {
    let (cfg, procs) = suite_is_config();
    let findings = lint_schedules(&is_schedules(procs, cfg.max_key / cfg.chunk));
    let self_test = lint_schedules(&broken_schedules());
    let schedules_clean = findings.is_empty();
    let self_test_fires = !self_test.is_empty();
    eprintln!(
        "[check: lints: IS schedule {} ({} finding(s)); broken-schedule self-test {}]",
        if schedules_clean { "clean" } else { "DIRTY" },
        findings.len(),
        if self_test_fires { "caught" } else { "MISSED" },
    );
    let to_arr = |fs: &[LintFinding]| Json::arr(fs.iter().map(lint_to_json));
    let json = Json::obj([
        ("is_schedule_findings", to_arr(&findings)),
        (
            "broken_schedule_selfcheck",
            Json::obj([
                ("findings_expected", Json::from(true)),
                ("findings", to_arr(&self_test)),
            ]),
        ),
    ]);
    (json, schedules_clean && self_test_fires)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_schedule_lints_clean_and_broken_fixture_fires() {
        assert!(lint_schedules(&is_schedules(4, 4)).is_empty());
        let findings = lint_schedules(&broken_schedules());
        assert!(findings.len() >= 3, "{findings:?}");
    }

    #[test]
    fn check_session_attaches_a_sink_per_machine() {
        let session = CheckSession::install();
        let before = session.machines_seen();
        let _m = Machine::ksr1_scaled(1, 64).expect("machine");
        let _m2 = Machine::ksr1_scaled(2, 64).expect("machine");
        assert_eq!(session.machines_seen(), before + 2);
        let (machines, _, violations, truncated) = session.drain_from(before);
        assert_eq!(machines, 2);
        assert!(violations.is_empty() && truncated == 0);
    }
}

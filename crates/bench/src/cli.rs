//! Command-line plumbing shared by `run_all` and the per-figure
//! binaries.
//!
//! Every binary accepts the same flags, layered over the environment
//! defaults (`KSR_QUICK`, `KSR_SEED`, `KSR_RESULTS`, `KSR_JOBS`,
//! `KSR_CACHE`):
//!
//! * `--quick` / `--full` — force reduced or full sweeps;
//! * `--seed N` — perturb every machine seed;
//! * `--results DIR` — where result files go;
//! * `--jobs N` / `-j N` — worker threads the executor schedules jobs
//!   over (results are byte-identical at any value);
//! * `--check` — verification mode (`KSR_CHECK=1`): every machine gets a
//!   `ksr-verify` coherence-checking sink, the race-detector and
//!   schedule-lint suites run afterwards, and `violations.json` lands
//!   next to the results (non-zero exit on any violation);
//! * `--cache DIR` — content-addressed results cache: jobs whose
//!   fingerprint is present load instead of executing, everything else
//!   executes and populates the cache (bypassed under `--check`, whose
//!   point is observing execution);
//! * `--shard i/N` — run only shard `i` of `N` of the flattened job
//!   list into the cache (requires `--cache`; writes no artifacts);
//! * `--join` — assemble artifacts from a cache the shards populated:
//!   a warm run that should execute nothing (requires `--cache`; warns
//!   about any job it still had to run).
//!
//! `run_all` additionally understands `--list` (print the registry and
//! exit), `--only ID[,ID...]` (run a subset), and `--prune` (delete
//! cache entries from dead generations — stale schemas, removed
//! experiments, corrupt files — then exit; requires `--cache`).
//!
//! Output discipline: rendered experiment results go to **stdout** (so
//! runs pipe cleanly into files and diffs); everything else — per-job
//! progress, `[written:]` / `[summary:]` / `[check:]` / `[cache:]`
//! status lines, errors — goes to **stderr**.

use std::process::ExitCode;
use std::time::Instant;

use ksr_core::{Json, Progress};

use crate::common::{write_summary, ExperimentOutput, RunOpts, Shard};
use crate::exec::{self, CacheStats};
use crate::registry::{find, Experiment, FnExperiment, REGISTRY};

/// Parsed command line: run options plus `run_all`'s selection flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Effective run options (environment defaults + flags).
    pub opts: RunOpts,
    /// `--list`: print the registry instead of running.
    pub list: bool,
    /// `--only`: ids to run (empty means all).
    pub only: Vec<String>,
    /// `--join`: expect a fully-populated cache and only reduce.
    pub join: bool,
    /// `--prune`: drop dead cache generations instead of running.
    pub prune: bool,
}

/// Parse `args` (not including the program name) over environment
/// defaults. Returns an error message for unknown or malformed flags and
/// for inconsistent combinations (sharding without a cache, `--shard`
/// with `--join` or `--check`).
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: RunOpts::from_env(),
        list: false,
        only: Vec::new(),
        join: false,
        prune: false,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cli.opts.quick = true,
            "--full" => cli.opts.quick = false,
            "--check" => cli.opts.check = true,
            "--list" => cli.list = true,
            "--join" => cli.join = true,
            "--prune" => cli.prune = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cli.opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--results" => {
                cli.opts.results_dir = args.next().ok_or("--results needs a directory")?.into();
            }
            "--cache" => {
                cli.opts.cache = Some(args.next().ok_or("--cache needs a directory")?.into());
            }
            "--shard" => {
                let v = args.next().ok_or("--shard needs i/N")?;
                cli.opts.shard = Some(Shard::parse(&v)?);
            }
            "--jobs" | "-j" => {
                let v = args.next().ok_or("--jobs needs a worker count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value: {v}"))?;
                cli.opts.jobs = n.max(1);
            }
            "--only" => {
                let v = args
                    .next()
                    .ok_or("--only needs a comma-separated id list")?;
                cli.only.extend(
                    v.split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_uppercase),
                );
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if cli.opts.shard.is_some() {
        if cli.opts.cache.is_none() {
            return Err("--shard requires --cache DIR (or KSR_CACHE): shards \
                 communicate through the cache"
                .into());
        }
        if cli.join {
            return Err("--shard and --join are different phases: shard first, then join".into());
        }
        if cli.opts.check {
            return Err(
                "--shard conflicts with --check: checked runs bypass the cache, \
                 so a checked shard would produce nothing"
                    .into(),
            );
        }
    }
    if cli.join && cli.opts.cache.is_none() {
        return Err("--join requires --cache DIR (or KSR_CACHE): it reduces from the cache".into());
    }
    if cli.prune && cli.opts.cache.is_none() {
        return Err(
            "--prune requires --cache DIR (or KSR_CACHE): it needs a cache to clean".into(),
        );
    }
    Ok(cli)
}

fn usage(program: &str) -> String {
    format!(
        "usage: {program} [--quick|--full] [--check] [--seed N] [--results DIR] [--jobs N] \
         [--cache DIR] [--shard i/N] [--join] [--list] [--only ID,ID...] [--prune]\n\
         ids: {}",
        crate::registry::ids().join(", ")
    )
}

/// Print the full registry (id + title per line) to stderr — shown when
/// a selection names an unknown experiment.
fn print_registry_to_stderr() {
    eprintln!("registered experiments:");
    for e in REGISTRY {
        eprintln!("  {:<8} {}", e.id(), e.title());
    }
}

/// Run one experiment and persist its artifacts; prints the rendering.
pub fn emit(exp: &FnExperiment, opts: &RunOpts) -> ExperimentOutput {
    let out = exp.run(opts);
    println!("{}", out.render());
    match out.write_to(&opts.results_dir) {
        Ok(path) => eprintln!("[written: {}]", path.display()),
        Err(e) => eprintln!("[warning: could not write results file: {e}]"),
    }
    out
}

/// The unified run path: plan every selected experiment, execute all
/// jobs over the worker pool, then print/persist the outputs in
/// selection order. With `summary` set, `summary.json` and
/// `timings.json` are written too (the `run_all` mode); single-figure
/// binaries skip both. Under `--check`, the per-experiment coherence
/// results are merged in job order and [`crate::check::finalize`] runs
/// the race/lint suites and writes `violations.json`.
///
/// With `opts.shard` set this is a shard run instead: execute this
/// process's slice of the job list into the cache and stop — no
/// rendering, no artifacts except `timings.json` (which carries the
/// hit/miss/skip counters).
fn run_selection(
    selected: &[&FnExperiment],
    opts: &RunOpts,
    summary: bool,
    join: bool,
) -> ExitCode {
    let plans: Vec<crate::exec::ExperimentPlan> = selected.iter().map(|e| e.plan(opts)).collect();
    let wall_start = Instant::now();
    let (progress, drainer) = Progress::stderr();

    if let Some(shard) = opts.shard {
        let report = exec::execute_shard(plans, opts, &progress);
        drop(progress);
        drainer.join();
        let wall_seconds = wall_start.elapsed().as_secs_f64();
        let cache_dir = opts.cache.as_deref().expect("--shard requires --cache");
        eprintln!(
            "[shard {shard}: {} executed, {} already cached, {} left to other shards → {}]",
            report.cache.misses,
            report.cache.hits,
            report.cache.skipped,
            cache_dir.display(),
        );
        if summary {
            if let Err(e) = write_timings(
                &report.timings,
                wall_seconds,
                opts,
                Some((report.cache, report.total_jobs)),
            ) {
                eprintln!("[warning: could not write timings: {e}]");
            }
        }
        return ExitCode::SUCCESS;
    }

    let report = exec::execute(plans, opts, &progress);
    drop(progress);
    drainer.join();
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    if let Some(stats) = report.cache {
        let cache_dir = opts.cache.as_deref().expect("stats imply a cache");
        eprintln!(
            "[cache: {} hit(s), {} miss(es) of {} job(s) → {}]",
            stats.hits,
            stats.misses,
            report.total_jobs,
            cache_dir.display(),
        );
        if join && stats.misses > 0 {
            eprintln!(
                "[warning: --join executed {} job(s) missing from the cache — \
                 did every shard finish?]",
                stats.misses
            );
        }
    } else if opts.cache.is_some() && opts.check {
        eprintln!("[cache: bypassed under --check (violations are observed, not cached)]");
    }

    let mut outputs: Vec<ExperimentOutput> = Vec::with_capacity(report.results.len());
    let mut checks = Vec::new();
    let mut timings = Vec::new();
    for (exp, result) in selected.iter().zip(report.results) {
        println!("{}", result.output.render());
        match result.output.write_to(&opts.results_dir) {
            Ok(path) => eprintln!("[written: {}]", path.display()),
            Err(e) => eprintln!("[warning: could not write results file: {e}]"),
        }
        if let Some(check) = result.check {
            eprintln!(
                "[check: {}: {} machine(s), {} coherence event(s), {} violation(s)]",
                exp.id(),
                check.machines,
                check.events,
                check.total_violations()
            );
            checks.push((exp.id(), check));
        }
        timings.push((exp.id(), result.seconds));
        outputs.push(result.output);
    }

    if summary {
        match write_summary(&outputs, opts) {
            Ok(path) => eprintln!("[summary: {}]", path.display()),
            Err(e) => {
                eprintln!("error: could not write summary: {e}");
                return ExitCode::FAILURE;
            }
        }
        let cache = report.cache.map(|stats| (stats, report.total_jobs));
        if let Err(e) = write_timings(&timings, wall_seconds, opts, cache) {
            eprintln!("[warning: could not write timings: {e}]");
        }
    }

    if opts.check {
        match crate::check::finalize(&checks, opts) {
            Ok((_, true)) => ExitCode::SUCCESS,
            Ok((_, false)) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: could not write violations report: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        ExitCode::SUCCESS
    }
}

/// Write `timings.json`: per-experiment wall-clock seconds plus the
/// run's worker count, total wall time, and (when a cache was active)
/// the hit/miss/skip counters. Timings are the one nondeterministic
/// output, so they live in their own file that the determinism gates
/// exclude from byte comparison — which is also why the cache counters
/// belong here and not in `summary.json`.
fn write_timings(
    timings: &[(&'static str, f64)],
    wall_seconds: f64,
    opts: &RunOpts,
    cache: Option<(CacheStats, usize)>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(&opts.results_dir)?;
    let mut doc = Json::obj([
        ("jobs", Json::from(opts.jobs)),
        ("wall_seconds", Json::from(wall_seconds)),
    ]);
    if let Some((stats, total_jobs)) = cache {
        doc.push_field(
            "cache",
            Json::obj([
                ("hits", Json::from(stats.hits)),
                ("misses", Json::from(stats.misses)),
                ("skipped", Json::from(stats.skipped)),
                ("total_jobs", Json::from(total_jobs)),
            ]),
        );
    }
    doc.push_field(
        "experiments",
        Json::Arr(
            timings
                .iter()
                .map(|&(id, seconds)| {
                    Json::obj([("id", Json::from(id)), ("seconds", Json::from(seconds))])
                })
                .collect(),
        ),
    );
    let path = opts.results_dir.join("timings.json");
    let mut body = doc.render_pretty();
    body.push('\n');
    std::fs::write(&path, body)?;
    eprintln!("[timings: {}]", path.display());
    Ok(())
}

/// Entry point for the `run_all` binary.
#[must_use]
pub fn run_all_main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage("run_all"));
            return ExitCode::from(2);
        }
    };
    if cli.list {
        // Job counts come from plan() under the effective options, so
        // `--quick --list` shows the quick grid — exactly what a user
        // sizing --shard N is about to run.
        for e in REGISTRY {
            let jobs = e.plan(&cli.opts).jobs().len();
            println!("{:<8} {:>4} job(s)  {}", e.id(), jobs, e.title());
        }
        return ExitCode::SUCCESS;
    }
    if cli.prune {
        return prune_cache(&cli.opts);
    }
    let selected: Vec<&FnExperiment> = if cli.only.is_empty() {
        REGISTRY.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &cli.only {
            match find(id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("error: unknown experiment id {id}");
                    print_registry_to_stderr();
                    return ExitCode::from(2);
                }
            }
        }
        sel
    };
    run_selection(&selected, &cli.opts, true, cli.join)
}

/// Delete cache entries no current experiment generation can ever hit:
/// every registered experiment's (id, schema) pairs are live, anything
/// else — stale schemas, removed experiments, corrupt files — goes.
/// The live set spans the whole registry regardless of `--only`, so a
/// prune never deletes entries a differently-scoped run still wants.
fn prune_cache(opts: &RunOpts) -> ExitCode {
    let dir = opts.cache.clone().expect("parse_args enforces --cache");
    let mut live: Vec<(&'static str, u32)> = Vec::new();
    for e in REGISTRY {
        for job in e.plan(opts).jobs() {
            let pair = (job.desc().experiment(), job.desc().schema());
            if !live.contains(&pair) {
                live.push(pair);
            }
        }
    }
    match crate::cache::ResultsCache::new(&dir).prune(&live) {
        Ok(stats) => {
            eprintln!(
                "[prune: {} entries removed, {} kept → {}]",
                stats.pruned,
                stats.kept,
                dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: could not prune {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}

/// Entry point for a single-experiment binary: run `id` with the shared
/// flags (selection flags are rejected).
#[must_use]
pub fn run_single_main(id: &str) -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) if cli.list || cli.prune || !cli.only.is_empty() => {
            eprintln!(
                "error: --list/--only/--prune are run_all flags\n{}",
                usage(&id.to_lowercase())
            );
            return ExitCode::from(2);
        }
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage(&id.to_lowercase()));
            return ExitCode::from(2);
        }
    };
    let Some(exp) = find(id) else {
        // A build/registry mismatch, not a user error: say which binary
        // is mis-wired and what actually exists, then fail cleanly.
        eprintln!("error: this binary is wired to unregistered experiment id {id}");
        print_registry_to_stderr();
        return ExitCode::FAILURE;
    };
    run_selection(&[exp], &cli.opts, false, cli.join)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_layer_over_defaults() {
        let cli = parse_args(
            [
                "--quick",
                "--seed",
                "9",
                "--results",
                "out",
                "--jobs",
                "4",
                "--only",
                "fig4,tab1",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(cli.opts.quick);
        assert_eq!(cli.opts.seed, 9);
        assert_eq!(cli.opts.results_dir, std::path::PathBuf::from("out"));
        assert_eq!(cli.opts.jobs, 4);
        assert_eq!(cli.only, ["FIG4", "TAB1"]);
        assert!(!cli.join);
    }

    #[test]
    fn short_jobs_flag_and_floor() {
        let cli = parse_args(["-j", "8"].map(String::from)).unwrap();
        assert_eq!(cli.opts.jobs, 8);
        let cli = parse_args(["--jobs", "0"].map(String::from)).unwrap();
        assert_eq!(cli.opts.jobs, 1, "a zero worker count clamps to serial");
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse_args(["--bogus".to_string()]).is_err());
        assert!(parse_args(["--seed".to_string(), "x".to_string()]).is_err());
        assert!(parse_args(["--jobs".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn cache_and_shard_flags_parse() {
        let cli = parse_args(["--cache", "cdir", "--shard", "2/4"].map(String::from)).unwrap();
        assert_eq!(cli.opts.cache, Some(std::path::PathBuf::from("cdir")));
        assert_eq!(cli.opts.shard, Some(Shard { index: 2, count: 4 }));
        let cli = parse_args(["--cache", "cdir", "--join"].map(String::from)).unwrap();
        assert!(cli.join);
        assert!(cli.opts.shard.is_none());
    }

    #[test]
    fn prune_flag_parses_and_requires_a_cache() {
        let cli = parse_args(["--cache", "cdir", "--prune"].map(String::from)).unwrap();
        assert!(cli.prune);
        assert!(
            parse_args(["--prune".to_string()]).is_err(),
            "--prune without --cache"
        );
    }

    #[test]
    fn inconsistent_shard_combinations_are_errors() {
        assert!(
            parse_args(["--shard", "1/2"].map(String::from)).is_err(),
            "--shard without --cache"
        );
        assert!(
            parse_args(["--join"].map(String::from)).is_err(),
            "--join without --cache"
        );
        assert!(
            parse_args(["--cache", "c", "--shard", "1/2", "--join"].map(String::from)).is_err(),
            "--shard with --join"
        );
        assert!(
            parse_args(["--cache", "c", "--shard", "1/2", "--check"].map(String::from)).is_err(),
            "--shard with --check"
        );
        assert!(parse_args(["--shard".to_string()]).is_err());
        assert!(parse_args(["--shard", "0/2"].map(String::from)).is_err());
        assert!(parse_args(["--shard", "3/2"].map(String::from)).is_err());
        assert!(parse_args(["--cache".to_string()]).is_err());
    }
}

//! FIG2 + SEC31A — §3.1 latency measurements.
//!
//! Reproduces Figure 2 (read/write latency of the local cache and of
//! remote/network access as the number of simultaneously active
//! processors grows) and the stride experiments quoted in the text
//! (+50% at 2 KB-block-allocating strides, +60% at 16 KB-page-allocating
//! remote strides).
//!
//! Methodology mirrors the paper:
//!
//! * each processor owns two private 1 MB arrays `A` and `B`; it first
//!   fills the sub-cache by repeatedly reading `B` (random replacement
//!   means one pass is not enough), then times accesses to `A`, which are
//!   then guaranteed local-cache accesses;
//! * for the network series, each processor times accesses to the array
//!   owned by its ring neighbour (unidirectional ring: any remote
//!   distance costs the same);
//! * accesses stride one 64 B sub-block (local) or one 128 B sub-page
//!   (remote), so every sample is a genuine miss at the level being
//!   measured.

use ksr_core::table::Series;
use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::{program, Machine, Program, SharedU64};

use crate::common::{proc_sweep_32, ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id of the Figure 2 sweep.
pub const ID_FIG2: &str = "FIG2";
/// Registry title of the Figure 2 sweep.
pub const TITLE_FIG2: &str = "Read/Write Latencies on the KSR (Figure 2)";
/// Cache schema version of the FIG2 jobs — bump when [`measure`] or the
/// job layout changes meaning, so stale cache entries miss.
const SCHEMA_FIG2: u32 = 1;
/// Registry id of the §3.1 stride experiments.
pub const ID_SEC31A: &str = "SEC31A";
/// Registry title of the §3.1 stride experiments.
pub const TITLE_SEC31A: &str = "Block/page allocation overheads at allocating strides (§3.1 text)";
/// Cache schema version of the SEC31A jobs.
const SCHEMA_SEC31A: u32 = 1;

const MB: u64 = 1024 * 1024;

/// Instruction overhead of the measurement loop itself (index update,
/// stride arithmetic, loop branch on the 20 MHz dual-issue cell). The
/// paper reports pure access latencies, so [`measure`] charges this per
/// iteration and subtracts it from the reported figure; its real effect
/// is on *duty cycle* — it is why the fully-populated ring sits just at
/// the saturation knee (+~8%) rather than deep inside it.
const LOOP_OVERHEAD: u64 = 60;

/// What one latency run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    LocalRead,
    LocalWrite,
    RemoteRead,
    RemoteWrite,
}

/// Average per-access seconds across `procs` simultaneously active
/// processors, with a configurable stride.
pub(crate) fn measure(target: Target, procs: usize, stride: u64, samples: u64, seed: u64) -> f64 {
    let mut m = Machine::ksr1(seed).expect("machine");
    // One private 1 MB array per processor; for remote targets the
    // "owner" is the next cell around the ring (warmed there even if that
    // cell runs no program, exactly like data placed by an earlier phase).
    let arrays: Vec<u64> = (0..procs)
        .map(|_| m.alloc(MB, 16384).expect("alloc"))
        .collect();
    let fill: Vec<u64> = (0..procs)
        .map(|_| m.alloc(MB, 16384).expect("alloc"))
        .collect();
    let results = SharedU64::alloc(&mut m, procs).expect("alloc");
    let remote = matches!(target, Target::RemoteRead | Target::RemoteWrite);
    for (p, &a) in arrays.iter().enumerate() {
        let owner = if remote { (p + 1) % 32 } else { p };
        m.warm(owner, a, MB);
        m.warm(p, fill[p], MB);
    }
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|p| {
            let a = arrays[p];
            let b = fill[p];
            program(move |mut cpu| async move {
                // Fill the sub-cache with B ("we read B repeatedly to
                // improve the chance of the sub-cache being filled").
                for pass in 0..2 {
                    let _ = pass;
                    let mut off = 0;
                    while off < MB {
                        let _ = cpu.read_u64(b + off).await;
                        off += 64;
                    }
                }
                let t0 = cpu.now();
                let mut off = 0;
                for _ in 0..samples {
                    match target {
                        Target::LocalRead | Target::RemoteRead => {
                            let _ = cpu.read_u64(a + off).await;
                        }
                        Target::LocalWrite | Target::RemoteWrite => {
                            cpu.write_u64(a + off, off).await;
                        }
                    }
                    cpu.compute(LOOP_OVERHEAD);
                    off = (off + stride) % MB;
                }
                let per = (cpu.now() - t0) / samples - LOOP_OVERHEAD;
                results.set(&mut cpu, p, per).await;
            })
        })
        .collect();
    m.run(programs).expect("run");
    let total: u64 = (0..procs).map(|p| results.peek(&mut m, p)).sum();
    cycles_to_seconds(total / procs as u64, m.config().clock_hz)
}

/// Plan the Figure 2 sweep: one pure job per (target, procs) point.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let samples = if quick { 256 } else { 1024 };
    let sweep = {
        let mut s = vec![1usize];
        s.extend(proc_sweep_32(quick));
        s
    };
    let grid: [(&str, Target, u64, u64); 4] = [
        ("network read", Target::RemoteRead, 128, 100),
        ("network write", Target::RemoteWrite, 128, 101),
        ("local read", Target::LocalRead, 64, 102),
        ("local write", Target::LocalWrite, 64, 103),
    ];
    let mut jobs = Vec::new();
    for &p in &sweep {
        for &(name, target, stride, base) in &grid {
            let seed = opts.machine_seed(base);
            let desc = JobDesc::new(ID_FIG2, SCHEMA_FIG2, format!("FIG2 {name} p={p}"), opts)
                .seed(seed)
                .param("target", name)
                .param("procs", p)
                .param("stride", stride)
                .param("samples", samples);
            jobs.push(Job::value(desc, p, "mean_access_seconds", "s", move || {
                measure(target, p, stride, samples, seed)
            }));
        }
    }
    ExperimentPlan::new(ID_FIG2, TITLE_FIG2, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID_FIG2, TITLE_FIG2);
        let mut series = vec![
            Series::new("Network Read"),
            Series::new("Network Write"),
            Series::new("Local Cache Read"),
            Series::new("Local Cache Write"),
        ];
        for (pi, &p) in sweep.iter().enumerate() {
            for (ti, s) in series.iter_mut().enumerate() {
                s.push(p as f64, res.value(pi * 4 + ti));
            }
        }
        // Headline checks the paper makes on this figure.
        let lr1 = series[2].points[0].1;
        let nr1 = series[0].points[0].1;
        let nr_last = series[0].points.last().unwrap().1;
        out.line(format_args!(
            "local-cache read @1 proc: {:.3} us  ({:.1} cycles; published 18)",
            lr1 * 1e6,
            lr1 * 20e6
        ));
        out.line(format_args!(
            "network read    @1 proc: {:.3} us  ({:.1} cycles; published 175)",
            nr1 * 1e6,
            nr1 * 20e6
        ));
        out.line(format_args!(
            "network read rise at {} procs: {:+.1}% (paper: about +8% at 32)",
            sweep.last().unwrap(),
            (nr_last / nr1 - 1.0) * 100.0
        ));
        out.line(format_args!(
            "writes dearer than reads: local {:+.1}%, network {:+.1}%",
            (series[3].points[0].1 / lr1 - 1.0) * 100.0,
            (series[1].points[0].1 / nr1 - 1.0) * 100.0
        ));
        out.series = series;
        out.rows_from_series("mean_access_seconds", "procs", "s");
        out
    })
}

/// Run the Figure 2 sweep (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

/// Plan the §3.1 stride experiments (SEC31A): one job per stride point.
#[must_use]
pub fn plan_strides(opts: &RunOpts) -> ExperimentPlan {
    let samples = if opts.quick { 128 } else { 512 };
    let grid: [(&str, Target, u64, u64, u64); 4] = [
        (
            "local",
            Target::LocalRead,
            64,
            samples,
            opts.machine_seed(110),
        ),
        (
            "local",
            Target::LocalRead,
            2048,
            samples,
            opts.machine_seed(111),
        ),
        (
            "remote",
            Target::RemoteRead,
            128,
            samples,
            opts.machine_seed(112),
        ),
        (
            "remote",
            Target::RemoteRead,
            16384,
            samples.min(60),
            opts.machine_seed(113),
        ),
    ];
    let jobs = grid
        .iter()
        .map(|&(name, target, stride, n, seed)| {
            let desc = JobDesc::new(
                ID_SEC31A,
                SCHEMA_SEC31A,
                format!("SEC31A {name} stride={stride}"),
                opts,
            )
            .seed(seed)
            .param("target", name)
            .param("stride", stride)
            .param("samples", n);
            Job::value(desc, 1, "mean_access_seconds", "s", move || {
                measure(target, 1, stride, n, seed)
            })
        })
        .collect();
    ExperimentPlan::new(ID_SEC31A, TITLE_SEC31A, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID_SEC31A, TITLE_SEC31A);
        let local_subblock = res.value(0);
        let local_block = res.value(1);
        let remote_subpage = res.value(2);
        let remote_page = res.value(3);
        for (target, stride, v) in [
            ("local", 64u64, local_subblock),
            ("local", 2048, local_block),
            ("remote", 128, remote_subpage),
            ("remote", 16384, remote_page),
        ] {
            out.row(
                "mean_access_seconds",
                &[
                    ("target", Json::from(target)),
                    ("stride_bytes", Json::from(stride)),
                ],
                v,
                "s",
            );
        }
        out.line(format_args!(
            "local-cache read, 64 B stride:   {:.3} us",
            local_subblock * 1e6
        ));
        out.line(format_args!(
            "local-cache read, 2 KB stride:   {:.3} us  ({:+.0}%; paper: +50%)",
            local_block * 1e6,
            (local_block / local_subblock - 1.0) * 100.0
        ));
        out.line(format_args!(
            "remote read, 128 B stride:       {:.3} us",
            remote_subpage * 1e6
        ));
        out.line(format_args!(
            "remote read, 16 KB stride:       {:.3} us  ({:+.0}%; paper: +60%)",
            remote_page * 1e6,
            (remote_page / remote_subpage - 1.0) * 100.0
        ));
        out
    })
}

/// Run the §3.1 stride experiments (serial form of [`plan_strides`]).
#[must_use]
pub fn run_strides(opts: &RunOpts) -> ExperimentOutput {
    plan_strides(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_read_is_about_18_cycles() {
        let s = measure(Target::LocalRead, 1, 64, 256, 1);
        let cycles = s * 20e6;
        assert!(
            (17.0..22.0).contains(&cycles),
            "local read {cycles:.1} cycles"
        );
    }

    #[test]
    fn remote_read_is_about_175_cycles() {
        let s = measure(Target::RemoteRead, 1, 128, 256, 2);
        let cycles = s * 20e6;
        assert!(
            (170.0..190.0).contains(&cycles),
            "remote read {cycles:.1} cycles"
        );
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let r = measure(Target::LocalRead, 1, 64, 256, 3);
        let w = measure(Target::LocalWrite, 1, 64, 256, 3);
        assert!(w > r, "write {w} vs read {r}");
    }

    #[test]
    fn block_allocating_stride_adds_about_half() {
        let fine = measure(Target::LocalRead, 1, 64, 256, 4);
        let coarse = measure(Target::LocalRead, 1, 2048, 256, 4);
        let ratio = coarse / fine;
        assert!(
            (1.3..1.7).contains(&ratio),
            "block-alloc ratio {ratio:.2} (paper 1.5)"
        );
    }

    #[test]
    fn page_allocating_remote_stride_adds_about_sixty_percent() {
        let fine = measure(Target::RemoteRead, 1, 128, 256, 5);
        let coarse = measure(Target::RemoteRead, 1, 16384, 60, 5);
        let ratio = coarse / fine;
        assert!(
            (1.4..1.9).contains(&ratio),
            "page-alloc ratio {ratio:.2} (paper 1.6)"
        );
    }

    #[test]
    fn contention_rise_is_modest_but_positive_at_32() {
        let one = measure(Target::RemoteRead, 1, 128, 256, 6);
        let thirty_two = measure(Target::RemoteRead, 32, 128, 256, 6);
        let rise = thirty_two / one - 1.0;
        assert!(
            (0.0..0.35).contains(&rise),
            "remote latency should rise mildly at 32 procs, got {:+.1}%",
            rise * 100.0
        );
    }
}

//! EXT — the §4 "wish list" experiments the paper could not run.
//!
//! The concluding remarks ask KSR for two features and leave two open
//! hypotheses:
//!
//! 1. *"The ability to selectively turn off sub-caching would help in a
//!    better use of the sub-cache depending on the access pattern of an
//!    application"* — and §3.3.1 adds, for CG specifically, that "there
//!    is no language level support for this mechanism which prevented us
//!    from exploring this hypothesis." The simulator has the mechanism
//!    (`Machine::set_uncached`), so the hypothesis gets its experiment:
//!    CG with sub-caching disabled for the streamed matrix arrays.
//! 2. *"It would be beneficial to have some prefetching mechanism from
//!    the local-cache to the sub-cache, given that there is roughly an
//!    order of magnitude difference in the access times of the two"* —
//!    `Cpu::prefetch_subcache` implements it; the experiment measures a
//!    local-cache-resident sweep with and without it.

use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::{program, Machine};
use ksr_nas::{CgConfig, CgSetup};

use crate::common::{ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};
use crate::table1_cg::SCALE;

/// Registry id.
pub const ID: &str = "EXT";
/// Registry title.
pub const TITLE: &str = "The §4 wish-list features, implemented and measured";
/// Cache schema version of the wish-list jobs — bump when [`cg_seconds`]
/// or [`sweep_cycles`] changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

/// CG run time with/without matrix sub-cache bypass.
fn cg_seconds(uncache_matrix: bool, procs: usize, quick: bool, machine_seed: u64) -> f64 {
    let cfg = CgConfig {
        n: if quick { 280 } else { 1400 },
        offdiag_per_row: if quick { 36 } else { 144 },
        iterations: if quick { 2 } else { 4 },
        seed: 4_040,
        poststore: false,
        uncache_matrix,
    };
    let mut m = Machine::ksr1_scaled(machine_seed, SCALE).expect("machine");
    let setup = CgSetup::new(&mut m, cfg, procs).expect("setup");
    let r = m.run(setup.programs()).expect("run");
    cycles_to_seconds(r.duration_cycles(), m.config().clock_hz)
}

/// Sweep a local-cache-resident array, optionally sub-cache-prefetching
/// one sub-page ahead. Returns mean cycles per access.
fn sweep_cycles(prefetch: bool, machine_seed: u64) -> f64 {
    let mut m = Machine::ksr1(machine_seed).expect("machine");
    let len: u64 = 512 * 1024; // fits the local cache, dwarfs the sub-cache
    let a = m.alloc(len, 16384).expect("alloc");
    m.warm(0, a, len);
    let samples = 4_096u64;
    let r = m
        .run(vec![program(move |mut cpu| async move {
            for i in 0..samples {
                let off = (i * 64) % len;
                if prefetch {
                    // Software-pipelined: pull the next sub-page up while
                    // consuming this one.
                    if off.is_multiple_of(128) {
                        cpu.prefetch_subcache(a + (off + 128) % len).await;
                    }
                }
                let _ = cpu.read_u64(a + off).await;
                cpu.compute(20); // consumer work that the prefetch hides behind
            }
        })])
        .expect("run");
    r.duration_cycles() as f64 / samples as f64
}

/// Plan both wish-list experiments: one job per measured point.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let procs = if quick { 2 } else { 4 };
    let cg_seed = opts.machine_seed(900);
    let sweep_seed = opts.machine_seed(901);
    let mut jobs = Vec::new();
    for uncache in [false, true] {
        let desc = JobDesc::new(ID, SCHEMA, format!("EXT cg uncached={uncache}"), opts)
            .seed(cg_seed)
            .param("feature", "cg_uncache")
            .param("uncache_matrix", uncache)
            .param("procs", procs);
        jobs.push(Job::value(desc, procs, "cg_run_seconds", "s", move || {
            cg_seconds(uncache, procs, quick, cg_seed)
        }));
    }
    for prefetch in [false, true] {
        let desc = JobDesc::new(ID, SCHEMA, format!("EXT sweep prefetch={prefetch}"), opts)
            .seed(sweep_seed)
            .param("feature", "subcache_prefetch")
            .param("prefetch", prefetch);
        jobs.push(Job::value(
            desc,
            1,
            "sweep_cycles_per_access",
            "cycles",
            move || sweep_cycles(prefetch, sweep_seed),
        ));
    }
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let base = res.value(0);
        let bypass = res.value(1);
        out.line(format_args!(
            "CG @{procs}p, matrix streams sub-cached:   {base:.4} s"
        ));
        out.line(format_args!(
            "CG @{procs}p, matrix streams UNcached:     {bypass:.4} s  ({:+.1}%)",
            (bypass / base - 1.0) * 100.0
        ));
        out.push_text(
            "(§3.3.1: 'it is conceivable that this mechanism may have been useful to reduce \
             the overall data access latency' — the experiment the authors could not run.)",
        );
        for (uncached, v) in [(false, base), (true, bypass)] {
            out.row(
                "cg_run_seconds",
                &[
                    ("matrix_uncached", Json::from(uncached)),
                    ("procs", Json::from(procs)),
                ],
                v,
                "s",
            );
        }
        let plain = res.value(2);
        let pf = res.value(3);
        out.line(format_args!(
            "local-cache sweep, no sub-cache prefetch: {plain:.1} cycles/access"
        ));
        out.line(format_args!(
            "local-cache sweep, with prefetch_subcache: {pf:.1} cycles/access ({:+.1}%)",
            (pf / plain - 1.0) * 100.0
        ));
        out.push_text(
            "(§4: 'it would be beneficial to have some prefetching mechanism from the \
             local-cache to the sub-cache'.)",
        );
        for (prefetch, v) in [(false, plain), (true, pf)] {
            out.row(
                "sweep_cycles_per_access",
                &[("subcache_prefetch", Json::from(prefetch))],
                v,
                "cycles",
            );
        }
        out
    })
}

/// Run both wish-list experiments (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcache_prefetch_speeds_up_resident_sweeps() {
        let plain = sweep_cycles(false, 901);
        let pf = sweep_cycles(true, 901);
        assert!(
            pf < plain,
            "the wished-for prefetch must help: {plain:.1} vs {pf:.1} cycles/access"
        );
    }

    #[test]
    fn cg_bypass_experiment_runs() {
        let base = cg_seconds(false, 2, true, 900);
        let bypass = cg_seconds(true, 2, true, 900);
        assert!(base > 0.0 && bypass > 0.0);
        // Either direction is a legitimate finding; it must stay within a
        // plausible band rather than explode.
        let ratio = bypass / base;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio:.2}");
    }
}

//! The content-addressed results cache behind `--cache DIR`.
//!
//! Every [`Job`](crate::exec::Job) carries a canonical
//! [`JobDesc`](crate::exec::JobDesc); its 128-bit
//! [`Fingerprint`](ksr_core::Fingerprint) names one JSON file under the
//! cache directory holding the job's serialized [`MetricRow`]s. Because
//! jobs are pure functions of their descriptor, a hit can substitute
//! for execution without touching determinism: the reduce sees the
//! exact rows the job would have produced, so `results/*` stay
//! byte-identical whether a run was cold, warm, or assembled from
//! shards.
//!
//! Robustness rules, in order of importance:
//!
//! * **Never a wrong result.** A load validates the entry version, that
//!   the stored descriptor matches the requested one (guarding against
//!   fingerprint collisions and hand-edited files), and that every row
//!   parses. Anything unexpected — truncation, corruption, a stale
//!   format — is a miss, and the job simply runs.
//! * **Atomic writes.** Entries are written to a unique temp file and
//!   `rename`d into place, so concurrent shards (or a reader racing a
//!   writer) see either a complete entry or none.
//! * **Failures never fail the run.** A cache store error degrades to a
//!   progress note; the computed rows are still in hand.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ksr_core::Json;

use crate::common::MetricRow;
use crate::exec::JobDesc;

/// Entry format version; bump when the file layout changes so old
/// directories read as misses instead of parse errors.
const ENTRY_VERSION: u64 = 1;

/// Distinguishes concurrent writers' temp files within one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory of fingerprint-named result files.
#[derive(Debug, Clone)]
pub struct ResultsCache {
    dir: PathBuf,
}

impl ResultsCache {
    /// A cache rooted at `dir` (created lazily on first store).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a descriptor's entry lives at: `<dir>/<fingerprint>.json`.
    #[must_use]
    pub fn entry_path(&self, desc: &JobDesc) -> PathBuf {
        self.dir.join(format!("{}.json", desc.fingerprint().hex()))
    }

    /// Load the cached rows for `desc`, or `None` on any miss —
    /// absent, truncated, corrupted, wrong version, or a descriptor
    /// mismatch all read the same way: run the job.
    #[must_use]
    pub fn load(&self, desc: &JobDesc) -> Option<Vec<MetricRow>> {
        let text = fs::read_to_string(self.entry_path(desc)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("version")?.as_u64()? != ENTRY_VERSION {
            return None;
        }
        // The stored descriptor must render to exactly the requested
        // canonical form; trusting the file name alone would make a
        // fingerprint collision (or a renamed file) silently poison the
        // results.
        if doc.get("desc")?.render() != desc.canonical() {
            return None;
        }
        let rows = doc.get("rows")?.as_arr()?;
        rows.iter().map(MetricRow::from_json).collect()
    }

    /// Remove entries that can never hit again: files that no longer
    /// parse, entries for experiments absent from `live`, and entries
    /// whose stored schema differs from the experiment's current one
    /// (a schema bump re-keys every job, so the old generation is dead
    /// weight). `live` pairs each experiment id with its current schema
    /// version. In-flight temp files (`.tmp-*`) and files without the
    /// `.json` suffix are left alone; a missing directory is an empty
    /// cache, not an error.
    pub fn prune(&self, live: &[(&str, u32)]) -> io::Result<PruneStats> {
        let mut stats = PruneStats::default();
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(stats),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(".json") || name.starts_with(".tmp-") {
                continue;
            }
            if entry_is_live(&entry.path(), live) {
                stats.kept += 1;
            } else {
                fs::remove_file(entry.path())?;
                stats.pruned += 1;
            }
        }
        Ok(stats)
    }

    /// Atomically store `rows` as the entry for `desc`.
    pub fn store(&self, desc: &JobDesc, rows: &[MetricRow]) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let doc = Json::obj([
            ("version", Json::from(ENTRY_VERSION)),
            (
                "desc",
                Json::parse(&desc.canonical()).expect("canonical descriptors are valid JSON"),
            ),
            (
                "rows",
                Json::Arr(rows.iter().map(MetricRow::to_json).collect()),
            ),
        ]);
        let mut body = doc.render_pretty();
        body.push('\n');
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{}",
            desc.fingerprint().hex(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, body)?;
        match fs::rename(&tmp, self.entry_path(desc)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Counters returned by [`ResultsCache::prune`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Entries whose experiment and schema are still current.
    pub kept: u64,
    /// Entries removed — stale schema, unknown experiment, or corrupt.
    pub pruned: u64,
}

/// Whether a cache entry on disk could still be served by [`ResultsCache::load`]
/// for some job of a live experiment generation. Mirrors `load`'s
/// validation for the fields prune can judge without a concrete
/// requesting descriptor: entry version, a parseable stored descriptor,
/// and an (experiment, schema) pair present in `live`.
fn entry_is_live(path: &Path, live: &[(&str, u32)]) -> bool {
    let Ok(text) = fs::read_to_string(path) else {
        return false;
    };
    let Ok(doc) = Json::parse(&text) else {
        return false;
    };
    if doc.get("version").and_then(Json::as_u64) != Some(ENTRY_VERSION) {
        return false;
    }
    let Some(desc) = doc.get("desc") else {
        return false;
    };
    let (Some(experiment), Some(schema)) = (
        desc.get("experiment").and_then(Json::as_str),
        desc.get("schema").and_then(Json::as_u64),
    ) else {
        return false;
    };
    live.iter()
        .any(|&(id, s)| id == experiment && u64::from(s) == schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::RunOpts;

    fn temp_cache(tag: &str) -> ResultsCache {
        let dir = std::env::temp_dir().join(format!("ksr_cache_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultsCache::new(dir)
    }

    fn desc(label: &str, seed: u64) -> JobDesc {
        JobDesc::new("TEST", 1, label, &RunOpts::quick())
            .seed(seed)
            .param("procs", 8usize)
    }

    fn rows() -> Vec<MetricRow> {
        vec![
            MetricRow::new("m", &[("procs", Json::from(8usize))], 0.25, "s"),
            MetricRow::new("n", &[], 2.0, "cycles"),
        ]
    }

    #[test]
    fn store_then_load_round_trips_rows() {
        let cache = temp_cache("round_trip");
        let d = desc("a", 1);
        assert!(cache.load(&d).is_none(), "cold cache must miss");
        cache.store(&d, &rows()).unwrap();
        let loaded = cache.load(&d).expect("warm cache must hit");
        assert_eq!(loaded.len(), 2);
        // The cache contract is byte-identical re-rendering, which is
        // what the artifact files are built from.
        for (a, b) in loaded.iter().zip(rows()) {
            assert_eq!(a.to_json().render(), b.to_json().render());
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn different_descriptors_do_not_cross_hit() {
        let cache = temp_cache("isolation");
        cache.store(&desc("a", 1), &rows()).unwrap();
        assert!(cache.load(&desc("a", 2)).is_none(), "seed change → miss");
        assert!(cache.load(&desc("b", 1)).is_none(), "label change → miss");
        let bumped = JobDesc::new("TEST", 2, "a", &RunOpts::quick())
            .seed(1)
            .param("procs", 8usize);
        assert!(cache.load(&bumped).is_none(), "schema bump → miss");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupted_entries_read_as_misses() {
        let cache = temp_cache("corrupt");
        let d = desc("a", 1);
        cache.store(&d, &rows()).unwrap();
        let path = cache.entry_path(&d);

        // Truncation.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load(&d).is_none());

        // Valid JSON, wrong version.
        fs::write(&path, full.replace("\"version\": 1", "\"version\": 999")).unwrap();
        assert!(cache.load(&d).is_none());

        // Valid JSON, garbage rows.
        fs::write(&path, full.replace("\"metric\"", "\"mangled\"")).unwrap();
        assert!(cache.load(&d).is_none());

        // A different job's entry renamed over ours (collision guard).
        let other = desc("other", 9);
        cache.store(&other, &rows()).unwrap();
        fs::copy(cache.entry_path(&other), &path).unwrap();
        assert!(cache.load(&d).is_none());

        // Restoring the original bytes restores the hit.
        fs::write(&path, &full).unwrap();
        assert!(cache.load(&d).is_some());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn prune_keeps_live_entries_and_drops_dead_ones() {
        let cache = temp_cache("prune");
        // Live: TEST schema 1 (what desc() builds).
        let live_desc = desc("live", 1);
        cache.store(&live_desc, &rows()).unwrap();
        // Stale schema generation of the same experiment.
        let stale = JobDesc::new("TEST", 7, "stale", &RunOpts::quick()).seed(2);
        cache.store(&stale, &rows()).unwrap();
        // An experiment that no longer exists.
        let unknown = JobDesc::new("GONE", 1, "old", &RunOpts::quick()).seed(3);
        cache.store(&unknown, &rows()).unwrap();
        // Corruption.
        fs::write(cache.dir().join("deadbeef.json"), "{not json").unwrap();
        // An in-flight temp file and a foreign file must survive.
        fs::write(cache.dir().join(".tmp-abc-1-0"), "partial").unwrap();
        fs::write(cache.dir().join("README"), "not an entry").unwrap();

        let stats = cache.prune(&[("TEST", 1)]).unwrap();
        assert_eq!(stats, PruneStats { kept: 1, pruned: 3 });
        assert!(cache.load(&live_desc).is_some(), "live entry must survive");
        assert!(cache.dir().join(".tmp-abc-1-0").exists());
        assert!(cache.dir().join("README").exists());
        assert!(!cache.dir().join("deadbeef.json").exists());

        // A second pass finds nothing left to prune.
        let stats = cache.prune(&[("TEST", 1)]).unwrap();
        assert_eq!(stats, PruneStats { kept: 1, pruned: 0 });
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn prune_of_a_missing_directory_is_empty_not_an_error() {
        let cache = temp_cache("prune_missing");
        let stats = cache.prune(&[("TEST", 1)]).unwrap();
        assert_eq!(stats, PruneStats::default());
    }

    #[test]
    fn store_leaves_no_temp_files() {
        let cache = temp_cache("tmp_files");
        cache.store(&desc("a", 1), &rows()).unwrap();
        let names: Vec<String> = fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names.len(), 1);
        assert!(
            names[0].ends_with(".json") && !names[0].starts_with(".tmp-"),
            "stray files: {names:?}"
        );
        let _ = fs::remove_dir_all(cache.dir());
    }
}

//! ABL — ablation studies of the design choices the paper's analysis
//! leans on.
//!
//! The paper *explains* its measurements through specific architectural
//! mechanisms; these ablations turn each mechanism off (or sweep it) and
//! confirm the explanation holds inside the model:
//!
//! * **read-snarfing** — §3.2.2 credits it for cheap global-flag wake-ups
//!   ("read-snarfing helps this global wakeup flag notification method
//!   tremendously"): disable it and watch tournament(M) degrade;
//! * **sub-ring interleaving** — the two address-interleaved sub-rings
//!   double usable slot bandwidth: collapse to one and watch contention;
//! * **slot count** — the 24-slot budget bounds in-flight transactions:
//!   sweep it and watch the saturation knee move;
//! * **MCS arrival arity** — §3.2.2's tournament-vs-MCS analysis hinges
//!   on the 4-ary packed word: sweep the arity and watch the
//!   false-sharing cost trade against tree height;
//! * **poststore in kernels** — covered by TAB1 (CG) and TAB4 (SP).

use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::{program, Machine, MachineConfig, Program};
use ksr_mem::ProtocolOptions;
use ksr_net::{RingHierarchyConfig, Topology};
use ksr_sync::{BarrierAlg, Episode, McsBarrier, TournamentBarrier};

use crate::common::{ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};

/// Registry id.
pub const ID: &str = "ABL";
/// Registry title.
pub const TITLE: &str = "Ablations of the paper's explanatory mechanisms";
/// Cache schema version of the ablation jobs — bump when any driver or
/// the job layout changes meaning, so stale cache entries miss.
const SCHEMA: u32 = 1;

/// Mean barrier episode seconds on a machine built from `cfg`.
fn episode_secs<B, F>(cfg: MachineConfig, procs: usize, episodes: usize, alloc: F) -> f64
where
    B: BarrierAlg,
    F: FnOnce(&mut Machine) -> B,
{
    let mut m = Machine::new(cfg).expect("machine");
    let b = alloc(&mut m);
    let run_eps = episodes + 2;
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|p| {
            program(move |mut cpu| async move {
                let mut ep = Episode::default();
                for e in 0..run_eps {
                    cpu.compute(((p * 89 + e * 37) % 200) as u64 + 20);
                    b.wait(&mut cpu, &mut ep).await;
                }
            })
        })
        .collect();
    let r = m.run(programs).expect("run");
    cycles_to_seconds(r.duration_cycles() / run_eps as u64, m.config().clock_hz)
}

/// Remote-read latency (cycles) with all processors hammering, under a
/// custom ring geometry.
fn hammer_latency(cfg: MachineConfig, procs: usize) -> f64 {
    let mut m = Machine::new(cfg).expect("machine");
    let arrays: Vec<u64> = (0..procs)
        .map(|_| m.alloc(256 * 1024, 16384).expect("alloc"))
        .collect();
    let results = ksr_machine::SharedU64::alloc(&mut m, procs).expect("alloc");
    for (p, &a) in arrays.iter().enumerate() {
        m.warm((p + 1) % m.config().cells, a, 256 * 1024);
    }
    let samples = 512u64;
    m.run(
        (0..procs)
            .map(|p| {
                let a = arrays[p];
                program(move |mut cpu| async move {
                    let t0 = cpu.now();
                    for i in 0..samples {
                        let _ = cpu.read_u64(a + (i * 128) % (256 * 1024)).await;
                    }
                    let mean = (cpu.now() - t0) / samples;
                    results.set(&mut cpu, p, mean).await;
                })
            })
            .collect(),
    )
    .expect("run");
    (0..procs)
        .map(|p| results.peek(&mut m, p) as f64)
        .sum::<f64>()
        / procs as f64
}

/// Plan all ablations: one pure job per (mechanism, setting) point.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let procs = if quick { 8 } else { 16 };
    let episodes = if quick { 4 } else { 10 };
    let mut jobs = Vec::new();

    // 1. Poststore / read-snarfing ladder for the global-flag wake-up:
    // with poststore the flag broadcast refills every spinner directly;
    // without it the first woken spinner's read snarfs the rest; with
    // neither, every spinner re-fetches through the (serializing) ring —
    // "read-snarfing helps this global wakeup flag notification method
    // tremendously. Read-snarfing is further aided by the use of
    // poststore" (§3.2.2).
    let wakeup_variants: [(&str, ProtocolOptions); 3] = [
        ("poststore+snarf", ProtocolOptions::default()),
        (
            "snarf only",
            ProtocolOptions {
                poststore: false,
                ..ProtocolOptions::default()
            },
        ),
        (
            "neither",
            ProtocolOptions {
                read_snarfing: false,
                poststore: false,
                ..ProtocolOptions::default()
            },
        ),
    ];
    let seed1 = opts.machine_seed(1);
    for (variant, protocol) in wakeup_variants {
        let desc = JobDesc::new(ID, SCHEMA, format!("ABL wakeup {variant}"), opts)
            .seed(seed1)
            .param("mechanism", "wakeup")
            .param("variant", variant)
            .param("procs", procs)
            .param("episodes", episodes);
        jobs.push(Job::value(
            desc,
            procs,
            "wakeup_episode_seconds",
            "s",
            move || {
                let mut cfg = MachineConfig::ksr1(seed1);
                cfg.protocol = protocol;
                episode_secs(cfg, procs, episodes, |m| {
                    TournamentBarrier::alloc(m, procs, true).expect("alloc")
                })
            },
        ));
    }

    // 2. Sub-ring interleaving: one fat lane vs two interleaved lanes.
    let seed2 = opts.machine_seed(2);
    for subrings in [2usize, 1] {
        let desc = JobDesc::new(ID, SCHEMA, format!("ABL subrings={subrings}"), opts)
            .seed(seed2)
            .param("mechanism", "subrings")
            .param("subrings", subrings)
            .param("procs", procs);
        jobs.push(Job::value(
            desc,
            procs,
            "hammer_latency_cycles",
            "cycles",
            move || {
                let mut cfg = MachineConfig::ksr1(seed2);
                if subrings == 1 {
                    let mut ring = RingHierarchyConfig::ksr1_32();
                    ring.leaf.subrings = 1;
                    cfg.topology = Topology::ring(ring);
                }
                hammer_latency(cfg, procs)
            },
        ));
    }

    // 3. Slot-count sweep: where does the saturation knee go?
    let seed3 = opts.machine_seed(3);
    for slots in [8usize, 16, 24, 32] {
        let desc = JobDesc::new(ID, SCHEMA, format!("ABL slots={slots}"), opts)
            .seed(seed3)
            .param("mechanism", "slots")
            .param("slots", slots)
            .param("procs", procs);
        jobs.push(Job::value(
            desc,
            procs,
            "hammer_latency_cycles",
            "cycles",
            move || {
                let mut cfg = MachineConfig::ksr1(seed3);
                let mut ring = RingHierarchyConfig::ksr1_32();
                ring.leaf.slots = slots;
                cfg.topology = Topology::ring(ring);
                hammer_latency(cfg, procs)
            },
        ));
    }

    // 4. MCS arrival-arity sweep: tree height vs packed-word false sharing.
    let seed4 = opts.machine_seed(4);
    for arity in [2usize, 4, 8] {
        let desc = JobDesc::new(ID, SCHEMA, format!("ABL mcs arity={arity}"), opts)
            .seed(seed4)
            .param("mechanism", "mcs_arity")
            .param("arity", arity)
            .param("procs", procs)
            .param("episodes", episodes);
        jobs.push(Job::value(
            desc,
            procs,
            "mcs_episode_seconds",
            "s",
            move || {
                episode_secs(MachineConfig::ksr1(seed4), procs, episodes, |m| {
                    McsBarrier::alloc_with_arity(m, procs, false, arity).expect("alloc")
                })
            },
        ));
    }

    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let full = res.value(0);
        let snarf_only = res.value(1);
        let neither = res.value(2);
        out.line(format_args!(
            "wake-up ladder, tournament(M) @{procs}p: poststore+snarf {:.1} us; snarf only {:.1} us          ({:+.0}%); neither {:.1} us ({:+.0}%)",
            full * 1e6,
            snarf_only * 1e6,
            (snarf_only / full - 1.0) * 100.0,
            neither * 1e6,
            (neither / full - 1.0) * 100.0
        ));
        for (variant, v) in [
            ("poststore+snarf", full),
            ("snarf only", snarf_only),
            ("neither", neither),
        ] {
            out.row(
                "wakeup_episode_seconds",
                &[
                    ("variant", Json::from(variant)),
                    ("procs", Json::from(procs)),
                ],
                v,
                "s",
            );
        }

        let two_lanes = res.value(3);
        let one_lane = res.value(4);
        out.line(format_args!(
            "sub-ring interleave @{procs}p hammer: {:.1} cycles with 2 sub-rings, {:.1} with 1 \
             ({:+.0}%)",
            two_lanes,
            one_lane,
            (one_lane / two_lanes - 1.0) * 100.0
        ));
        for (subrings, v) in [(2u64, two_lanes), (1, one_lane)] {
            out.row(
                "hammer_latency_cycles",
                &[
                    ("subrings", Json::from(subrings)),
                    ("procs", Json::from(procs)),
                ],
                v,
                "cycles",
            );
        }

        out.push_text("slot sweep (hammer latency, cycles):");
        for (i, slots) in [8usize, 16, 24, 32].into_iter().enumerate() {
            let l = res.value(5 + i);
            out.line(format_args!("  {slots:>2} slots: {l:>7.1}"));
            out.row(
                "hammer_latency_cycles",
                &[("slots", Json::from(slots)), ("procs", Json::from(procs))],
                l,
                "cycles",
            );
        }

        out.push_text("MCS arrival arity sweep (us/episode; 4 is the paper's):");
        for (i, arity) in [2usize, 4, 8].into_iter().enumerate() {
            let t = res.value(9 + i);
            out.line(format_args!("  arity {arity}: {:.1}", t * 1e6));
            out.row(
                "mcs_episode_seconds",
                &[("arity", Json::from(arity)), ("procs", Json::from(procs))],
                t,
                "s",
            );
        }
        out
    })
}

/// Run all ablations (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snarfing_carries_the_wakeup_when_poststore_is_off() {
        let run = |protocol: ProtocolOptions| {
            let mut cfg = MachineConfig::ksr1(1);
            cfg.protocol = protocol;
            episode_secs(cfg, 16, 5, |m| {
                TournamentBarrier::alloc(m, 16, true).expect("alloc")
            })
        };
        let snarf_only = run(ProtocolOptions {
            poststore: false,
            ..ProtocolOptions::default()
        });
        let neither = run(ProtocolOptions {
            read_snarfing: false,
            poststore: false,
            ..ProtocolOptions::default()
        });
        assert!(
            neither > snarf_only,
            "without snarfing every spinner re-fetches through the ring:              {snarf_only:.2e} vs {neither:.2e}"
        );
    }

    #[test]
    fn fewer_slots_mean_more_contention() {
        let latency_at = |slots: usize| {
            let mut cfg = MachineConfig::ksr1(2);
            let mut ring = RingHierarchyConfig::ksr1_32();
            ring.leaf.slots = slots;
            cfg.topology = Topology::ring(ring);
            hammer_latency(cfg, 16)
        };
        let few = latency_at(8);
        let many = latency_at(32);
        assert!(
            few > many,
            "8 slots must contend more than 32: {few:.1} vs {many:.1}"
        );
    }

    #[test]
    fn single_subring_contends_more() {
        let two = hammer_latency(MachineConfig::ksr1(5), 16);
        let mut cfg = MachineConfig::ksr1(5);
        let mut ring = RingHierarchyConfig::ksr1_32();
        ring.leaf.subrings = 1;
        // Keep total slots equal so only the interleaving changes.
        cfg.topology = Topology::ring(ring);
        let one = hammer_latency(cfg, 16);
        assert!(
            one >= two * 0.95,
            "collapsing the interleave must not get cheaper: {two:.1} vs {one:.1}"
        );
    }

    #[test]
    fn mcs_arity_sweep_runs_and_orders_sanely() {
        for arity in [2usize, 4, 8] {
            let t = episode_secs(MachineConfig::ksr1(7), 8, 3, |m| {
                McsBarrier::alloc_with_arity(m, 8, false, arity).expect("alloc")
            });
            assert!(t > 0.0 && t < 0.01, "arity {arity}: {t}");
        }
    }
}

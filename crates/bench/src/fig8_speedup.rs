//! FIG8 — CG and IS speedup curves (§3.3, Figure 8).
//!
//! The figure plots the speedup columns of Tables 1 and 2; this module
//! re-measures both kernels on a common sweep and emits the two curves.

use ksr_core::table::Series;

use crate::common::{ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc};
use crate::table1_cg::{cg_time, paper_config as cg_config};
use crate::table2_is::{is_time, paper_config as is_config};

/// Registry id.
pub const ID: &str = "FIG8";
/// Registry title.
pub const TITLE: &str = "Speedup for CG and IS (Figure 8)";
/// Cache schema version of the FIG8 jobs — bump when either kernel
/// driver or the job layout changes meaning, so stale cache entries
/// miss.
const SCHEMA: u32 = 1;

/// Plan the Figure 8 sweep: one job per (kernel, procs) point.
#[must_use]
pub fn plan(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let procs: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16, 24, 32]
    };
    let cg_cfg = cg_config(quick);
    let is_cfg = is_config(quick);
    let cg_seed = opts.machine_seed(900);
    let is_seed = opts.machine_seed(901);
    let mut jobs = Vec::new();
    for &p in &procs {
        let desc = JobDesc::new(ID, SCHEMA, format!("FIG8 cg p={p}"), opts)
            .seed(cg_seed)
            .param("kernel", "cg")
            .param("n", cg_cfg.n)
            .param("offdiag_per_row", cg_cfg.offdiag_per_row)
            .param("iterations", cg_cfg.iterations)
            .param("procs", p);
        jobs.push(Job::value(desc, p, "cg_run_seconds", "s", move || {
            cg_time(cg_cfg, p, cg_seed)
        }));
    }
    for &p in &procs {
        let desc = JobDesc::new(ID, SCHEMA, format!("FIG8 is p={p}"), opts)
            .seed(is_seed)
            .param("kernel", "is")
            .param("keys", is_cfg.keys)
            .param("max_key", is_cfg.max_key)
            .param("chunk", is_cfg.chunk)
            .param("procs", p);
        jobs.push(Job::value(desc, p, "is_run_seconds", "s", move || {
            is_time(is_cfg, p, is_seed).0
        }));
    }
    ExperimentPlan::new(ID, TITLE, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID, TITLE);
        let n = procs.len();
        let mut cg = Series::new("CG");
        let mut is = Series::new("IS");
        let cg_t1 = res.value(0);
        let is_t1 = res.value(n);
        for (i, &p) in procs.iter().enumerate() {
            cg.push(p as f64, cg_t1 / res.value(i));
            is.push(p as f64, is_t1 / res.value(n + i));
        }
        if let (Some(&(_, cg_max)), Some(&(_, is_max))) = (cg.points.last(), is.points.last()) {
            out.line(format_args!(
                "speedup at max procs: CG {cg_max:.1} vs IS {is_max:.1} \
                 (paper at 32: CG 22.8, IS 18.9 — CG above IS)"
            ));
        }
        out.series = vec![cg, is];
        out.rows_from_series("speedup", "procs", "x");
        out
    })
}

/// Run the Figure 8 sweep (serial convenience form of [`plan`]).
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    plan(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_curves_rise_in_quick_mode() {
        let out = run(&RunOpts::quick());
        for s in &out.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(
                last > first,
                "{} speedup should grow: {first} -> {last}",
                s.label
            );
        }
    }
}

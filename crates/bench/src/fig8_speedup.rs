//! FIG8 — CG and IS speedup curves (§3.3, Figure 8).
//!
//! The figure plots the speedup columns of Tables 1 and 2; this module
//! re-measures both kernels on a common sweep and emits the two curves.

use ksr_core::table::Series;

use crate::common::{ExperimentOutput, RunOpts};
use crate::table1_cg::{cg_time, paper_config as cg_config};
use crate::table2_is::{is_time, paper_config as is_config};

/// Registry id.
pub const ID: &str = "FIG8";
/// Registry title.
pub const TITLE: &str = "Speedup for CG and IS (Figure 8)";

/// Run the Figure 8 sweep.
#[must_use]
pub fn run(opts: &RunOpts) -> ExperimentOutput {
    let quick = opts.quick;
    let mut out = ExperimentOutput::new(ID, TITLE);
    let procs: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16, 24, 32]
    };
    let cg_cfg = cg_config(quick);
    let is_cfg = is_config(quick);
    let mut cg = Series::new("CG");
    let mut is = Series::new("IS");
    let cg_t1 = cg_time(cg_cfg, 1, opts.machine_seed(900));
    let (is_t1, _) = is_time(is_cfg, 1, opts.machine_seed(901));
    for &p in &procs {
        let tc = if p == 1 {
            cg_t1
        } else {
            cg_time(cg_cfg, p, opts.machine_seed(900))
        };
        let (ti, _) = if p == 1 {
            (is_t1, 0.0)
        } else {
            is_time(is_cfg, p, opts.machine_seed(901))
        };
        cg.push(p as f64, cg_t1 / tc);
        is.push(p as f64, is_t1 / ti);
    }
    if let (Some(&(_, cg_max)), Some(&(_, is_max))) = (cg.points.last(), is.points.last()) {
        out.line(format_args!(
            "speedup at max procs: CG {cg_max:.1} vs IS {is_max:.1} \
             (paper at 32: CG 22.8, IS 18.9 — CG above IS)"
        ));
    }
    out.series = vec![cg, is];
    out.rows_from_series("speedup", "procs", "x");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_curves_rise_in_quick_mode() {
        let out = run(&RunOpts::quick());
        for s in &out.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(
                last > first,
                "{} speedup should grow: {first} -> {last}",
                s.label
            );
        }
    }
}

//! Shared experiment plumbing: output capture and result files.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use ksr_core::table::{series_to_csv, Series};

/// Output of one experiment (one paper table or figure).
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id from DESIGN.md (e.g. `"FIG4"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered text blocks (tables, analysis notes).
    pub text: String,
    /// Figure series, when the artifact is a figure.
    pub series: Vec<Series>,
}

impl ExperimentOutput {
    /// Start an output block.
    #[must_use]
    pub fn new(id: &'static str, title: &'static str) -> Self {
        Self { id, title, text: String::new(), series: Vec::new() }
    }

    /// Append a text block.
    pub fn push_text(&mut self, block: &str) {
        self.text.push_str(block);
        if !block.ends_with('\n') {
            self.text.push('\n');
        }
    }

    /// Append a formatted line.
    pub fn line(&mut self, args: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.text, "{args}");
    }

    /// Full rendering: header, text, and series as CSV.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n\n{}", self.id, self.title, self.text);
        if !self.series.is_empty() {
            out.push('\n');
            out.push_str(&series_to_csv(&self.series));
        }
        out
    }

    /// Write `<id>.txt` (and `<id>.csv` when there are series) under
    /// `dir`, creating it if needed.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let txt = dir.join(format!("{}.txt", self.id.to_lowercase()));
        fs::write(&txt, self.render())?;
        if !self.series.is_empty() {
            let csv = dir.join(format!("{}.csv", self.id.to_lowercase()));
            fs::write(csv, series_to_csv(&self.series))?;
        }
        Ok(txt)
    }
}

/// Whether quick mode is active (smaller sweeps for CI and tests). Set
/// with `KSR_QUICK=1`.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var_os("KSR_QUICK").is_some_and(|v| v != "0")
}

/// Default results directory: `results/` under the workspace root (or the
/// current directory when run elsewhere).
#[must_use]
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var_os("KSR_RESULTS").unwrap_or_else(|| "results".into()))
}

/// Processor counts for a 32-cell sweep.
#[must_use]
pub fn proc_sweep_32(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 12, 16, 20, 24, 28, 32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_header_and_text() {
        let mut o = ExperimentOutput::new("FIGX", "demo");
        o.push_text("hello");
        let r = o.render();
        assert!(r.contains("FIGX"));
        assert!(r.contains("hello\n"));
    }

    #[test]
    fn write_creates_files() {
        let dir = std::env::temp_dir().join(format!("ksr_bench_test_{}", std::process::id()));
        let mut o = ExperimentOutput::new("T1", "t");
        o.push_text("x");
        let mut s = Series::new("a");
        s.push(1.0, 2.0);
        o.series.push(s);
        let p = o.write_to(&dir).unwrap();
        assert!(p.exists());
        assert!(dir.join("t1.csv").exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sweep_contains_paper_endpoints() {
        let s = proc_sweep_32(false);
        assert!(s.contains(&2) && s.contains(&32));
    }
}

//! Shared experiment plumbing: run options, output capture, and result
//! files (text, CSV, and machine-readable JSON).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use ksr_core::table::{series_to_csv, Series};
use ksr_core::Json;

/// Options for one experiment run — the single parameter every
/// [`crate::registry::Experiment`] receives.
///
/// Replaces the old bare `quick: bool` argument. Environment variables
/// provide the defaults ([`RunOpts::from_env`]); binaries layer CLI flags
/// on top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOpts {
    /// Reduced sweeps for CI and tests (`KSR_QUICK=1`).
    pub quick: bool,
    /// Perturbation XORed into every machine seed (`KSR_SEED`, default
    /// 0 — i.e. the paper-matching baseline seeds).
    pub seed: u64,
    /// Directory result files are written under (`KSR_RESULTS`,
    /// default `results/`).
    pub results_dir: PathBuf,
    /// Verification mode (`KSR_CHECK=1` or `--check`): attach a
    /// `ksr-verify` coherence-checking sink to every machine built, run
    /// the race-detector and schedule-lint suites afterwards, and write
    /// `violations.json`. Checking observes the trace only — cycle
    /// counts and result files are bit-identical with it on or off.
    pub check: bool,
    /// Worker threads the executor schedules jobs over (`--jobs N` /
    /// `KSR_JOBS`, default from the environment is the host parallelism
    /// capped at [`MAX_DEFAULT_JOBS`]). Results are byte-identical at
    /// any value — every job is a pure (config, seed) → rows function
    /// and the reduce runs in job order. Not recorded in `summary.json`
    /// for exactly that reason.
    pub jobs: usize,
    /// Results cache directory (`--cache DIR` / `KSR_CACHE`): jobs are
    /// keyed by the fingerprint of their canonical descriptor, hits skip
    /// execution, misses execute and populate the cache. `None` disables
    /// caching. Like `jobs`, never recorded in result files — a warm run
    /// is byte-identical to a cold one.
    pub cache: Option<PathBuf>,
    /// Shard assignment (`--shard i/N`): run only this process's slice
    /// of the flattened job list into the cache, skipping reduces and
    /// artifacts. Requires [`RunOpts::cache`].
    pub shard: Option<Shard>,
}

/// One slice of a sharded sweep: this process is shard `index` (1-based)
/// of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 1-based shard index in `1..=count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parse the `--shard i/N` form. Errors on anything but
    /// `1 <= i <= N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let err = || format!("bad --shard value {s:?}: expected i/N with 1 <= i <= N");
        let (i, n) = s.split_once('/').ok_or_else(err)?;
        let index: usize = i.parse().map_err(|_| err())?;
        let count: usize = n.parse().map_err(|_| err())?;
        if index == 0 || count == 0 || index > count {
            return Err(err());
        }
        Ok(Self { index, count })
    }

    /// Whether this shard owns the job at 0-based flattened index
    /// `job_index`. Round-robin over the index — not a hash — so every
    /// shard gets an even slice of each experiment's sweep and the
    /// partition is trivially exhaustive and disjoint.
    #[must_use]
    pub fn owns(&self, job_index: usize) -> bool {
        job_index % self.count == self.index - 1
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Cap on the jobs default inferred from host parallelism; explicit
/// `--jobs` / `KSR_JOBS` values may exceed it.
pub const MAX_DEFAULT_JOBS: usize = 16;

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 0,
            results_dir: PathBuf::from("results"),
            check: false,
            jobs: 1,
            cache: None,
            shard: None,
        }
    }
}

impl RunOpts {
    /// Options taken entirely from the environment: `KSR_QUICK`,
    /// `KSR_SEED`, `KSR_RESULTS`, `KSR_CHECK`, `KSR_JOBS`, `KSR_CACHE`.
    /// (Sharding is per-invocation, so `--shard` stays CLI-only.)
    #[must_use]
    pub fn from_env() -> Self {
        let seed = std::env::var("KSR_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Self {
            quick: quick_mode(),
            seed,
            results_dir: results_dir(),
            check: check_mode(),
            jobs: default_jobs(),
            cache: cache_dir(),
            shard: None,
        }
    }

    /// Quick-mode options with default seed and results directory.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            quick: true,
            ..Self::default()
        }
    }

    /// Derive a machine seed from an experiment's baseline seed: the
    /// baseline XORed with [`RunOpts::seed`], so the default (0) leaves
    /// every published measurement untouched while `KSR_SEED` perturbs
    /// all of them coherently.
    #[must_use]
    pub fn machine_seed(&self, base: u64) -> u64 {
        base ^ self.seed
    }
}

/// One typed measurement: a named metric, the parameter point it was
/// taken at, and its value. Rows are what `results/<id>.json` carries —
/// the machine-readable counterpart of the rendered text tables.
#[derive(Debug, Clone)]
pub struct MetricRow {
    /// Metric name (e.g. `"barrier_episode_seconds"`).
    pub metric: String,
    /// Parameter point, in insertion order (e.g. `procs = 16`).
    pub params: Vec<(String, Json)>,
    /// Measured value.
    pub value: f64,
    /// Unit label (e.g. `"s"`, `"cycles"`).
    pub unit: String,
}

impl MetricRow {
    /// Build a row from borrowed parts (the job-side counterpart of
    /// [`ExperimentOutput::row`]).
    #[must_use]
    pub fn new(metric: &str, params: &[(&str, Json)], value: f64, unit: &str) -> Self {
        Self {
            metric: metric.to_string(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
            value,
            unit: unit.to_string(),
        }
    }

    /// JSON form: `{"metric": ..., "params": {...}, "value": ..., "unit": ...}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("metric", Json::from(self.metric.as_str())),
            ("params", Json::Obj(self.params.clone())),
            ("value", Json::from(self.value)),
            ("unit", Json::from(self.unit.as_str())),
        ])
    }

    /// Parse the [`MetricRow::to_json`] form back — how the results
    /// cache deserializes entries. `None` on any shape mismatch, which
    /// the cache treats as a miss. Round-trip contract:
    /// `from_json(row.to_json())` re-renders byte-identically, so
    /// cached rows reduce to byte-identical artifacts.
    #[must_use]
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            metric: v.get("metric")?.as_str()?.to_string(),
            params: v.get("params")?.as_obj()?.to_vec(),
            // `value` is rendered as a JSON number; a non-finite value
            // renders `null` and deliberately fails to parse back (the
            // job re-runs rather than resurrecting a guessed NaN).
            value: v.get("value")?.as_f64()?,
            unit: v.get("unit")?.as_str()?.to_string(),
        })
    }
}

/// Output of one experiment (one paper table or figure).
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id from DESIGN.md (e.g. `"FIG4"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered text blocks (tables, analysis notes).
    pub text: String,
    /// Figure series, when the artifact is a figure.
    pub series: Vec<Series>,
    /// Typed measurement rows (the machine-readable results).
    pub rows: Vec<MetricRow>,
}

impl ExperimentOutput {
    /// Start an output block.
    #[must_use]
    pub fn new(id: &'static str, title: &'static str) -> Self {
        Self {
            id,
            title,
            text: String::new(),
            series: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Append a text block.
    pub fn push_text(&mut self, block: &str) {
        self.text.push_str(block);
        if !block.ends_with('\n') {
            self.text.push('\n');
        }
    }

    /// Append a formatted line.
    pub fn line(&mut self, args: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.text, "{args}");
    }

    /// Append one typed measurement row.
    pub fn row(&mut self, metric: &str, params: &[(&str, Json)], value: f64, unit: &str) {
        self.rows.push(MetricRow {
            metric: metric.to_string(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
            value,
            unit: unit.to_string(),
        });
    }

    /// Derive one row per series point: `metric` at
    /// `{series: <label>, <x_name>: x}`.
    pub fn rows_from_series(&mut self, metric: &str, x_name: &str, unit: &str) {
        for s in &self.series {
            for &(x, y) in &s.points {
                self.rows.push(MetricRow {
                    metric: metric.to_string(),
                    params: vec![
                        ("series".to_string(), Json::from(s.label.as_str())),
                        (x_name.to_string(), Json::from(x)),
                    ],
                    value: y,
                    unit: unit.to_string(),
                });
            }
        }
    }

    /// Full rendering: header, text, and series as CSV.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n\n{}", self.id, self.title, self.text);
        if !self.series.is_empty() {
            out.push('\n');
            out.push_str(&series_to_csv(&self.series));
        }
        out
    }

    /// JSON form of the whole output: id, title, rows, and series.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id)),
            ("title", Json::from(self.title)),
            (
                "rows",
                Json::Arr(self.rows.iter().map(MetricRow::to_json).collect()),
            ),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("label", Json::from(s.label.as_str())),
                                (
                                    "points",
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|&(x, y)| {
                                                Json::Arr(vec![Json::from(x), Json::from(y)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Write `<id>.txt`, `<id>.json`, and (when there are series)
    /// `<id>.csv` under `dir`, creating it if needed.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let stem = self.id.to_lowercase();
        let txt = dir.join(format!("{stem}.txt"));
        fs::write(&txt, self.render())?;
        let mut json = self.to_json().render_pretty();
        json.push('\n');
        fs::write(dir.join(format!("{stem}.json")), json)?;
        if !self.series.is_empty() {
            let csv = dir.join(format!("{stem}.csv"));
            fs::write(csv, series_to_csv(&self.series))?;
        }
        Ok(txt)
    }
}

/// Write `summary.json` under `opts.results_dir`: one entry per
/// experiment (id, title, row/series counts) plus the run options, so a
/// consumer can discover every artifact without globbing.
pub fn write_summary(outputs: &[ExperimentOutput], opts: &RunOpts) -> std::io::Result<PathBuf> {
    fs::create_dir_all(&opts.results_dir)?;
    let experiments = outputs
        .iter()
        .map(|o| {
            Json::obj([
                ("id", Json::from(o.id)),
                ("title", Json::from(o.title)),
                ("file", Json::from(format!("{}.json", o.id.to_lowercase()))),
                ("rows", Json::from(o.rows.len())),
                ("series", Json::from(o.series.len())),
            ])
        })
        .collect();
    let summary = Json::obj([
        ("quick", Json::from(opts.quick)),
        ("seed", Json::from(opts.seed)),
        ("experiments", Json::Arr(experiments)),
    ]);
    let path = opts.results_dir.join("summary.json");
    let mut body = summary.render_pretty();
    body.push('\n');
    fs::write(&path, body)?;
    Ok(path)
}

/// Whether quick mode is active (smaller sweeps for CI and tests). Set
/// with `KSR_QUICK=1`.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var_os("KSR_QUICK").is_some_and(|v| v != "0")
}

/// Whether verification mode is active (see [`RunOpts::check`]). Set
/// with `KSR_CHECK=1`.
#[must_use]
pub fn check_mode() -> bool {
    std::env::var_os("KSR_CHECK").is_some_and(|v| v != "0")
}

/// Default results directory: `results/` under the workspace root (or the
/// current directory when run elsewhere).
#[must_use]
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var_os("KSR_RESULTS").unwrap_or_else(|| "results".into()))
}

/// Default cache directory from `KSR_CACHE`; unset (or empty) disables
/// caching.
#[must_use]
pub fn cache_dir() -> Option<PathBuf> {
    std::env::var_os("KSR_CACHE")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Default worker count: `KSR_JOBS` if set, otherwise the host's
/// available parallelism capped at [`MAX_DEFAULT_JOBS`].
#[must_use]
pub fn default_jobs() -> usize {
    std::env::var("KSR_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(
            || {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
                    .min(MAX_DEFAULT_JOBS)
            },
            |j| j.max(1),
        )
}

/// Processor counts for a 32-cell sweep.
#[must_use]
pub fn proc_sweep_32(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 12, 16, 20, 24, 28, 32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_header_and_text() {
        let mut o = ExperimentOutput::new("FIGX", "demo");
        o.push_text("hello");
        let r = o.render();
        assert!(r.contains("FIGX"));
        assert!(r.contains("hello\n"));
    }

    #[test]
    fn write_creates_files() {
        let dir = std::env::temp_dir().join(format!("ksr_bench_test_{}", std::process::id()));
        let mut o = ExperimentOutput::new("T1", "t");
        o.push_text("x");
        let mut s = Series::new("a");
        s.push(1.0, 2.0);
        o.series.push(s);
        o.row("metric", &[("procs", Json::from(4u64))], 1.5, "s");
        let p = o.write_to(&dir).unwrap();
        assert!(p.exists());
        assert!(dir.join("t1.csv").exists());
        let json = std::fs::read_to_string(dir.join("t1.json")).unwrap();
        assert!(json.contains("\"metric\": \"metric\""));
        assert!(json.contains("\"procs\": 4"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sweep_contains_paper_endpoints() {
        let s = proc_sweep_32(false);
        assert!(s.contains(&2) && s.contains(&32));
    }

    #[test]
    fn rows_from_series_expands_every_point() {
        let mut o = ExperimentOutput::new("T2", "t");
        let mut s = Series::new("curve");
        s.push(2.0, 0.5);
        s.push(4.0, 0.25);
        o.series.push(s);
        o.rows_from_series("time_seconds", "procs", "s");
        assert_eq!(o.rows.len(), 2);
        assert_eq!(o.rows[1].value, 0.25);
        assert_eq!(o.rows[1].params[0].1, Json::from("curve"));
    }

    #[test]
    fn summary_names_each_experiment() {
        let dir = std::env::temp_dir().join(format!("ksr_summary_test_{}", std::process::id()));
        let opts = RunOpts {
            quick: true,
            seed: 7,
            results_dir: dir.clone(),
            ..RunOpts::default()
        };
        let outs = [
            ExperimentOutput::new("A1", "a"),
            ExperimentOutput::new("B2", "b"),
        ];
        let p = write_summary(&outs, &opts).unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert!(body.contains("\"id\": \"A1\"") && body.contains("\"id\": \"B2\""));
        assert!(body.contains("\"quick\": true") && body.contains("\"seed\": 7"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn machine_seed_defaults_to_base() {
        assert_eq!(RunOpts::default().machine_seed(42), 42);
        let perturbed = RunOpts {
            seed: 1,
            ..RunOpts::default()
        };
        assert_ne!(perturbed.machine_seed(42), 42);
    }

    #[test]
    fn metric_rows_round_trip_through_json() {
        let row = MetricRow::new(
            "latency_cycles",
            &[
                ("procs", Json::from(16usize)),
                ("series", Json::from("cg")),
                ("ratio", Json::from(0.125)),
            ],
            17.5,
            "cycles",
        );
        let back = MetricRow::from_json(&row.to_json()).expect("well-formed row");
        assert_eq!(back.to_json().render(), row.to_json().render());
        // A whole-number value survives byte-identically even though its
        // Json variant may shift (Num(2.0) renders "2", reparses UInt).
        let whole = MetricRow::new("m", &[], 2.0, "s");
        let reparsed = Json::parse(&whole.to_json().render()).unwrap();
        let back = MetricRow::from_json(&reparsed).expect("parses");
        assert_eq!(back.to_json().render(), whole.to_json().render());
    }

    #[test]
    fn malformed_rows_fail_to_parse() {
        assert!(MetricRow::from_json(&Json::Null).is_none());
        assert!(MetricRow::from_json(&Json::obj([("metric", Json::from("m"))])).is_none());
        // Non-finite values render as null and must not round-trip.
        let nan = MetricRow::new("m", &[], f64::NAN, "s");
        let reparsed = Json::parse(&nan.to_json().render()).unwrap();
        assert!(MetricRow::from_json(&reparsed).is_none());
    }

    #[test]
    fn shard_parse_accepts_only_sane_slices() {
        assert_eq!(Shard::parse("1/2"), Ok(Shard { index: 1, count: 2 }));
        assert_eq!(Shard::parse("4/4"), Ok(Shard { index: 4, count: 4 }));
        assert_eq!(Shard::parse("1/1").unwrap().to_string(), "1/1");
        for bad in ["", "2", "0/2", "3/2", "1/0", "a/2", "1/b", "1/2/3", "-1/2"] {
            assert!(Shard::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn shard_partition_is_exhaustive_and_disjoint() {
        for count in 1..=5usize {
            for job in 0..37usize {
                let owners: Vec<usize> = (1..=count)
                    .filter(|&index| Shard { index, count }.owns(job))
                    .collect();
                assert_eq!(owners.len(), 1, "job {job} with {count} shards: {owners:?}");
            }
        }
        // Round-robin balance: with N shards, consecutive jobs land on
        // consecutive shards.
        let s = Shard { index: 2, count: 3 };
        assert!(s.owns(1) && s.owns(4) && !s.owns(0) && !s.owns(2));
    }
}

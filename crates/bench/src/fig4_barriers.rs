//! FIG4 / FIG5 / SEC323 — barrier performance (§3.2.2–§3.2.4).
//!
//! One driver measures the mean completion time of repeated barrier
//! episodes for any of the nine algorithms on any machine preset, then
//! three entry points reproduce:
//!
//! * Figure 4 — all nine barriers on the 32-cell KSR-1;
//! * Figure 5 — the same on the 64-cell two-level KSR-2 (plus the
//!   §3.2.4 tournament-vs-MCS analysis rows);
//! * §3.2.3 — the Symmetry and Butterfly comparison (the global-flag
//!   variants are excluded on the Butterfly, which has no coherent
//!   caches to broadcast through).

use ksr_core::table::Series;
use ksr_core::time::cycles_to_seconds;
use ksr_core::Json;
use ksr_machine::{program, Machine, Program};
use ksr_sync::{AnyBarrier, BarrierAlg, BarrierKind, Episode};

use crate::common::{proc_sweep_32, ExperimentOutput, RunOpts};
use crate::exec::{ExperimentPlan, Job, JobDesc, JobResults};

/// Registry id of the Figure 4 sweep.
pub const ID_FIG4: &str = "FIG4";
/// Registry title of the Figure 4 sweep.
pub const TITLE_FIG4: &str = "Performance of the barriers on 32-node KSR-1 (Figure 4)";
/// Registry id of the Figure 5 sweep.
pub const ID_FIG5: &str = "FIG5";
/// Registry title of the Figure 5 sweep.
pub const TITLE_FIG5: &str = "Performance of the barriers on 64-node KSR-2 (Figure 5)";
/// Registry id of the §3.2.3 comparison.
pub const ID_SEC323: &str = "SEC323";
/// Registry title of the §3.2.3 comparison.
pub const TITLE_SEC323: &str =
    "Barrier comparison with the Sequent Symmetry and the BBN Butterfly (§3.2.3)";
/// Cache schema version shared by the barrier sweeps — bump when
/// [`episode_time`] or the job layout changes meaning, so stale cache
/// entries miss.
const SCHEMA: u32 = 1;

/// Machines a barrier sweep can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierMachine {
    /// 32-cell KSR-1.
    Ksr1,
    /// 64-cell KSR-2.
    Ksr2,
    /// Bus machine (§3.2.3).
    Symmetry,
    /// MIN machine without coherent caches (§3.2.3).
    Butterfly,
}

impl BarrierMachine {
    fn build(self, procs: usize, seed: u64) -> Machine {
        match self {
            Self::Ksr1 => Machine::ksr1(seed),
            Self::Ksr2 => Machine::ksr2(seed),
            Self::Symmetry => Machine::symmetry(procs.max(2), seed),
            Self::Butterfly => Machine::butterfly(procs.max(2), seed),
        }
        .expect("machine")
    }

    /// Stable config tag for job descriptors and cache keys.
    fn tag(self) -> &'static str {
        match self {
            Self::Ksr1 => "ksr1",
            Self::Ksr2 => "ksr2",
            Self::Symmetry => "symmetry",
            Self::Butterfly => "butterfly",
        }
    }
}

/// Mean seconds per barrier episode for `kind` at `procs` processors.
#[must_use]
pub fn episode_time(
    machine: BarrierMachine,
    kind: BarrierKind,
    procs: usize,
    episodes: usize,
    seed: u64,
) -> f64 {
    let mut m = machine.build(procs, seed);
    let b = AnyBarrier::alloc(kind, &mut m, procs).expect("barrier alloc");
    // Warm-up episode (first-touch page allocations), then measure.
    let warmup = 2;
    let run_eps = episodes + warmup;
    let programs: Vec<Box<dyn Program>> = (0..procs)
        .map(|p| {
            program(move |mut cpu| async move {
                let mut ep = Episode::default();
                for e in 0..run_eps {
                    // Small skew so arrivals are staggered like real
                    // compute phases, not lock-step.
                    cpu.compute(((p * 89 + e * 37) % 200) as u64 + 20);
                    b.wait(&mut cpu, &mut ep).await;
                }
            })
        })
        .collect();
    let r = m.run(programs).expect("run");
    let total = r.duration_cycles();
    // Subtract the (tiny) skew compute to first order by dividing over
    // all episodes including warm-up; warm-up inflation is then bounded
    // by 2/episodes.
    cycles_to_seconds(total / run_eps as u64, m.config().clock_hz)
}

/// One job per (kind, procs) point, kind-major — the job-level form of
/// the old serial sweep loop.
fn sweep_jobs(
    experiment: &'static str,
    machine: BarrierMachine,
    kinds: &[BarrierKind],
    procs: &[usize],
    episodes: usize,
    base_seed: u64,
    opts: &RunOpts,
) -> Vec<Job> {
    let mut jobs = Vec::new();
    for &kind in kinds {
        for &p in procs {
            let seed = base_seed + p as u64;
            let desc = JobDesc::new(
                experiment,
                SCHEMA,
                format!("{experiment} {} p={p}", kind.label()),
                opts,
            )
            .seed(seed)
            .param("machine", machine.tag())
            .param("barrier", kind.label())
            .param("procs", p)
            .param("episodes", episodes);
            jobs.push(Job::value(
                desc,
                p,
                "barrier_episode_seconds",
                "s",
                move || episode_time(machine, kind, p, episodes, seed),
            ));
        }
    }
    jobs
}

/// Reassemble [`sweep_jobs`] results into per-kind series.
fn sweep_series(res: &JobResults, kinds: &[BarrierKind], procs: &[usize]) -> Vec<Series> {
    kinds
        .iter()
        .enumerate()
        .map(|(ki, &kind)| {
            let mut s = Series::new(kind.label());
            for (pi, &p) in procs.iter().enumerate() {
                s.push(p as f64, res.value(ki * procs.len() + pi));
            }
            s
        })
        .collect()
}

/// Plan Figure 4: the nine barriers on the 32-node KSR-1.
#[must_use]
pub fn plan_fig4(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let procs = proc_sweep_32(quick);
    let episodes = if quick { 6 } else { 16 };
    let kinds: Vec<BarrierKind> = if quick {
        vec![
            BarrierKind::Counter,
            BarrierKind::TournamentFlag,
            BarrierKind::Mcs,
        ]
    } else {
        BarrierKind::ALL.to_vec()
    };
    let jobs = sweep_jobs(
        ID_FIG4,
        BarrierMachine::Ksr1,
        &kinds,
        &procs,
        episodes,
        opts.machine_seed(1000),
        opts,
    );
    ExperimentPlan::new(ID_FIG4, TITLE_FIG4, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID_FIG4, TITLE_FIG4);
        let series = sweep_series(&res, &kinds, &procs);
        let at_max = |label: &str| {
            series
                .iter()
                .find(|s| s.label == label)
                .and_then(|s| s.points.last())
                .map_or(f64::NAN, |&(_, y)| y)
        };
        let pmax = *procs.last().unwrap();
        out.line(format_args!("per-episode times at {pmax} procs (us):"));
        for s in &series {
            out.line(format_args!(
                "  {:<14} {:8.1}",
                s.label,
                at_max(&s.label) * 1e6
            ));
        }
        out.push_text(
            "paper's ordering at 32 procs: counter slowest; dissemination and tree mid-pack; \
             tournament ~ MCS; global-flag variants fastest with tournament(M) best.",
        );
        out.series = series;
        out.rows_from_series("barrier_episode_seconds", "procs", "s");
        out
    })
}

/// Figure 4 (serial convenience form of [`plan_fig4`]).
#[must_use]
pub fn run_fig4(opts: &RunOpts) -> ExperimentOutput {
    plan_fig4(opts).run_serial()
}

/// Plan Figure 5: the nine barriers on the 64-node KSR-2 (two-level
/// ring).
#[must_use]
pub fn plan_fig5(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let procs: Vec<usize> = if quick {
        vec![16, 32, 40]
    } else {
        vec![16, 24, 32, 36, 40, 48, 56, 64]
    };
    let episodes = if quick { 4 } else { 12 };
    let kinds: Vec<BarrierKind> = if quick {
        vec![
            BarrierKind::TournamentFlag,
            BarrierKind::Mcs,
            BarrierKind::Tournament,
        ]
    } else {
        BarrierKind::ALL.to_vec()
    };
    let jobs = sweep_jobs(
        ID_FIG5,
        BarrierMachine::Ksr2,
        &kinds,
        &procs,
        episodes,
        opts.machine_seed(1000),
        opts,
    );
    ExperimentPlan::new(ID_FIG5, TITLE_FIG5, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID_FIG5, TITLE_FIG5);
        let series = sweep_series(&res, &kinds, &procs);
        // §3.2.4 analysis: the jump past one ring, and tournament vs MCS.
        for s in &series {
            let y32 = s.y_at(32.0);
            let y36 = s.y_at(36.0);
            if let (Some(a), Some(b)) = (y32, y36) {
                out.line(format_args!(
                    "  {:<14} 32→36 procs: {:+.0}% (crossing the ring boundary)",
                    s.label,
                    (b / a - 1.0) * 100.0
                ));
            }
        }
        let find = |label: &str| series.iter().find(|s| s.label == label);
        if let (Some(t), Some(m_)) = (find("Tournament"), find("MCS")) {
            if let (Some(&(_, ty)), Some(&(_, my))) = (t.points.last(), m_.points.last()) {
                out.line(format_args!(
                    "tournament vs MCS at max procs: {:+.1}% (paper §3.2.4: tournament 10-15% worse \
                     on KSR-2)",
                    (ty / my - 1.0) * 100.0
                ));
            }
        }
        out.push_text(
            "paper: trends carry over from the 32-node system; execution time jumps once the \
             processor set spans both leaf rings; tournament(M) remains best.",
        );
        out.series = series;
        out.rows_from_series("barrier_episode_seconds", "procs", "s");
        out
    })
}

/// Figure 5 (serial convenience form of [`plan_fig5`]).
#[must_use]
pub fn run_fig5(opts: &RunOpts) -> ExperimentOutput {
    plan_fig5(opts).run_serial()
}

/// Plan §3.2.3: the same barrier code on the Symmetry and the
/// Butterfly.
#[must_use]
pub fn plan_sec323(opts: &RunOpts) -> ExperimentPlan {
    let quick = opts.quick;
    let episodes = if quick { 4 } else { 12 };
    let procs = if quick { 8 } else { 16 };
    let sym_seed = opts.machine_seed(77);
    let bfly_seed = opts.machine_seed(78);
    // Symmetry: all nine run (it has coherent caches); Butterfly: no
    // coherent caches, so no global-flag variants.
    let bfly_kinds: Vec<BarrierKind> = BarrierKind::ALL
        .iter()
        .filter(|k| !k.needs_coherent_caches())
        .copied()
        .collect();
    let mut jobs = Vec::new();
    let sec323_desc = |machine: BarrierMachine, k: BarrierKind, seed: u64| {
        JobDesc::new(
            ID_SEC323,
            SCHEMA,
            format!("SEC323 {} {}", machine.tag(), k.label()),
            opts,
        )
        .seed(seed)
        .param("machine", machine.tag())
        .param("barrier", k.label())
        .param("procs", procs)
        .param("episodes", episodes)
    };
    for &k in BarrierKind::ALL.iter() {
        jobs.push(Job::value(
            sec323_desc(BarrierMachine::Symmetry, k, sym_seed),
            procs,
            "barrier_episode_seconds",
            "s",
            move || episode_time(BarrierMachine::Symmetry, k, procs, episodes, sym_seed),
        ));
    }
    for &k in &bfly_kinds {
        jobs.push(Job::value(
            sec323_desc(BarrierMachine::Butterfly, k, bfly_seed),
            procs,
            "barrier_episode_seconds",
            "s",
            move || episode_time(BarrierMachine::Butterfly, k, procs, episodes, bfly_seed),
        ));
    }
    ExperimentPlan::new(ID_SEC323, TITLE_SEC323, jobs, move |res| {
        let mut out = ExperimentOutput::new(ID_SEC323, TITLE_SEC323);
        out.line(format_args!("Sequent Symmetry, {procs} procs, us/episode:"));
        let mut sym: Vec<(f64, &'static str)> = BarrierKind::ALL
            .iter()
            .enumerate()
            .map(|(i, k)| (res.value(i), k.label()))
            .collect();
        sym.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, l) in &sym {
            out.line(format_args!("  {:<14} {:8.1}", l, t * 1e6));
            out.row(
                "barrier_episode_seconds",
                &[
                    ("machine", Json::from("symmetry")),
                    ("barrier", Json::from(*l)),
                    ("procs", Json::from(procs)),
                ],
                *t,
                "s",
            );
        }
        out.push_text("paper: the counter algorithm performs the best on the Symmetry.");
        out.line(format_args!("BBN Butterfly, {procs} procs, us/episode:"));
        let base = BarrierKind::ALL.len();
        let mut bfly: Vec<(f64, &'static str)> = bfly_kinds
            .iter()
            .enumerate()
            .map(|(i, k)| (res.value(base + i), k.label()))
            .collect();
        bfly.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, l) in &bfly {
            out.line(format_args!("  {:<14} {:8.1}", l, t * 1e6));
            out.row(
                "barrier_episode_seconds",
                &[
                    ("machine", Json::from("butterfly")),
                    ("barrier", Json::from(*l)),
                    ("procs", Json::from(procs)),
                ],
                *t,
                "s",
            );
        }
        out.push_text(
            "paper: on the Butterfly dissemination does best, then tournament, then MCS \
             (no coherent caches, so the winner is the number of communication rounds).",
        );
        out
    })
}

/// §3.2.3 (serial convenience form of [`plan_sec323`]).
#[must_use]
pub fn run_sec323(opts: &RunOpts) -> ExperimentOutput {
    plan_sec323(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_much_slower_than_tournament_flag_at_scale() {
        let c = episode_time(BarrierMachine::Ksr1, BarrierKind::Counter, 16, 6, 1);
        let t = episode_time(BarrierMachine::Ksr1, BarrierKind::TournamentFlag, 16, 6, 1);
        assert!(c > 2.0 * t, "counter {c:.2e} vs tournament(M) {t:.2e}");
    }

    #[test]
    fn flag_wakeup_beats_tree_wakeup_for_tournament() {
        let plain = episode_time(BarrierMachine::Ksr1, BarrierKind::Tournament, 16, 6, 2);
        let flag = episode_time(BarrierMachine::Ksr1, BarrierKind::TournamentFlag, 16, 6, 2);
        assert!(
            flag < plain,
            "flag {flag:.2e} must beat tree wake-up {plain:.2e}"
        );
    }

    #[test]
    fn counter_wins_on_the_bus() {
        let counter = episode_time(BarrierMachine::Symmetry, BarrierKind::Counter, 8, 6, 3);
        for kind in [
            BarrierKind::Dissemination,
            BarrierKind::Tournament,
            BarrierKind::Mcs,
        ] {
            let other = episode_time(BarrierMachine::Symmetry, kind, 8, 6, 3);
            assert!(
                counter < other * 1.1,
                "bus: counter {counter:.2e} should be at or near the best; {} was {other:.2e}",
                kind.label()
            );
        }
    }

    #[test]
    fn dissemination_wins_on_the_butterfly() {
        let d = episode_time(
            BarrierMachine::Butterfly,
            BarrierKind::Dissemination,
            16,
            6,
            4,
        );
        let t = episode_time(BarrierMachine::Butterfly, BarrierKind::Tournament, 16, 6, 4);
        let m = episode_time(BarrierMachine::Butterfly, BarrierKind::Mcs, 16, 6, 4);
        assert!(
            d < t && t < m * 1.2,
            "butterfly ordering: diss {d:.2e} tour {t:.2e} mcs {m:.2e}"
        );
    }

    #[test]
    fn ksr2_jump_past_one_ring() {
        // Algorithms whose critical path includes cross-ring traffic show
        // the §3.2.4 jump clearly; tournament(M) hides most of it.
        let inside = episode_time(BarrierMachine::Ksr2, BarrierKind::Dissemination, 32, 6, 5);
        let across = episode_time(BarrierMachine::Ksr2, BarrierKind::Dissemination, 40, 6, 5);
        assert!(
            across > inside * 1.25,
            "crossing the ring boundary must jump: {inside:.2e} vs {across:.2e}"
        );
        let inside = episode_time(BarrierMachine::Ksr2, BarrierKind::Mcs, 32, 6, 5);
        let across = episode_time(BarrierMachine::Ksr2, BarrierKind::Mcs, 40, 6, 5);
        assert!(
            across > inside * 1.1,
            "MCS must also feel the boundary: {inside:.2e} vs {across:.2e}"
        );
    }
}

//! A bump allocator over the System Virtual Address space.
//!
//! Experiments allocate their shared data structures before the simulation
//! runs (matching the paper's methodology of setting up arrays and then
//! timing the access phases). Sub-page alignment matters: §3.2.2 notes "we
//! have aligned (whenever possible) mutually exclusive parts of shared
//! data structures on separate cache lines so that there is no false
//! sharing" — allocators therefore default to 128 B alignment for
//! synchronization variables.

use ksr_core::{Error, Result};
use ksr_mem::SUBPAGE_BYTES;

/// Upper bound of the simulated SVA space: 1 TB, far beyond any
/// experiment; exists only to catch runaway allocation loops.
const SVA_LIMIT: u64 = 1 << 40;

/// Bump allocator handing out SVA ranges.
#[derive(Debug, Clone)]
pub struct Heap {
    next: u64,
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Fresh heap. Address 0 is left unmapped so that a zero address can
    /// serve as a sentinel in simulated programs.
    #[must_use]
    pub fn new() -> Self {
        Self {
            next: SUBPAGE_BYTES,
        }
    }

    /// Allocate `bytes` with the given power-of-two alignment.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Result<u64> {
        if bytes == 0 {
            return Err(Error::Config("zero-sized allocation".into()));
        }
        if !align.is_power_of_two() {
            return Err(Error::Config(format!(
                "alignment {align} is not a power of two"
            )));
        }
        let base = self.next.next_multiple_of(align);
        let end = base
            .checked_add(bytes)
            .filter(|&e| e <= SVA_LIMIT)
            .ok_or(Error::OutOfMemory { requested: bytes })?;
        self.next = end;
        Ok(base)
    }

    /// Allocate `words` 8-byte words, 8-byte aligned.
    pub fn alloc_words(&mut self, words: u64) -> Result<u64> {
        self.alloc(words * 8, 8)
    }

    /// Allocate on a fresh 128 B sub-page (and round the size up to whole
    /// sub-pages) so the object shares its coherence unit with nothing —
    /// the paper's false-sharing-avoidance discipline.
    pub fn alloc_subpage_aligned(&mut self, bytes: u64) -> Result<u64> {
        let rounded = bytes.next_multiple_of(SUBPAGE_BYTES);
        self.alloc(rounded, SUBPAGE_BYTES)
    }

    /// Bytes allocated so far.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut h = Heap::new();
        let a = h.alloc(100, 8).unwrap();
        let b = h.alloc(100, 8).unwrap();
        assert!(b >= a + 100);
    }

    #[test]
    fn alignment_respected() {
        let mut h = Heap::new();
        h.alloc(3, 1).unwrap();
        let a = h.alloc(8, 64).unwrap();
        assert_eq!(a % 64, 0);
        let b = h.alloc_subpage_aligned(1).unwrap();
        assert_eq!(b % 128, 0);
    }

    #[test]
    fn subpage_aligned_rounds_size_up() {
        let mut h = Heap::new();
        let a = h.alloc_subpage_aligned(1).unwrap();
        let b = h.alloc(1, 1).unwrap();
        assert!(b >= a + 128, "next object must not share the sub-page");
    }

    #[test]
    fn zero_and_bad_align_rejected() {
        let mut h = Heap::new();
        assert!(h.alloc(0, 8).is_err());
        assert!(h.alloc(8, 3).is_err());
    }

    #[test]
    fn address_zero_never_returned() {
        let mut h = Heap::new();
        assert_ne!(h.alloc(8, 8).unwrap(), 0);
    }

    #[test]
    fn oom_on_absurd_request() {
        let mut h = Heap::new();
        assert!(h.alloc(u64::MAX - 100, 8).is_err());
    }
}

//! Point-in-time performance-monitor snapshots.
//!
//! The paper's authors read the KSR-1's hardware monitor before and
//! after a phase and attributed the difference to it (the §3.3.2 IS
//! analysis separates ranking from counting this way). A
//! [`PerfSnapshot`] captures every cell's [`PerfMon`] block plus the
//! fabric counters at one virtual time; [`PerfSnapshot::delta_since`]
//! yields the counters attributable to the interval between two
//! snapshots.

use ksr_core::time::Cycles;
use ksr_mem::PerfMon;
use ksr_net::FabricStats;

/// Every hardware counter of one machine, frozen at one virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfSnapshot {
    /// Virtual time of the capture (the machine's current epoch).
    pub at: Cycles,
    /// One counter block per cell.
    pub per_cell: Vec<PerfMon>,
    /// Machine-wide sum of `per_cell`.
    pub total: PerfMon,
    /// Interconnect counters.
    pub fabric: FabricStats,
}

impl PerfSnapshot {
    /// Counters accumulated between `earlier` and this snapshot: the
    /// per-phase attribution the paper's measurement method relies on.
    /// Cell counts must match (snapshots of the same machine).
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        assert_eq!(
            self.per_cell.len(),
            earlier.per_cell.len(),
            "snapshots come from machines with different cell counts"
        );
        Self {
            at: self.at,
            per_cell: self
                .per_cell
                .iter()
                .zip(&earlier.per_cell)
                .map(|(now, then)| now.delta(*then))
                .collect(),
            total: self.total.delta(earlier.total),
            fabric: self.fabric.delta(earlier.fabric),
        }
    }

    /// Virtual cycles spanned since `earlier`.
    #[must_use]
    pub fn cycles_since(&self, earlier: &Self) -> Cycles {
        self.at.saturating_sub(earlier.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: Cycles, ring_transactions: u64) -> PerfSnapshot {
        let cell = PerfMon {
            ring_transactions,
            ..Default::default()
        };
        PerfSnapshot {
            at,
            per_cell: vec![cell; 2],
            total: cell.merged(cell),
            fabric: FabricStats {
                packets: ring_transactions * 2,
                wait_cycles: 0,
            },
        }
    }

    #[test]
    fn delta_attributes_the_interval() {
        let before = snap(100, 10);
        let after = snap(900, 35);
        let d = after.delta_since(&before);
        assert_eq!(d.at, 900);
        assert_eq!(d.per_cell[0].ring_transactions, 25);
        assert_eq!(d.total.ring_transactions, 50);
        assert_eq!(d.fabric.packets, 50);
        assert_eq!(after.cycles_since(&before), 800);
    }

    #[test]
    #[should_panic(expected = "different cell counts")]
    fn mismatched_snapshots_rejected() {
        let mut a = snap(0, 0);
        a.per_cell.pop();
        let _ = snap(1, 1).delta_since(&a);
    }
}

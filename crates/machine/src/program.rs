//! The program abstraction: what one simulated processor executes.

use crate::cpu::Cpu;

/// A program for one simulated processor.
///
/// Implemented automatically for closures, so most experiments spawn
/// processors like:
///
/// ```ignore
/// let programs: Vec<Box<dyn Program>> = (0..p)
///     .map(|_| Box::new(move |cpu: &mut Cpu| { /* ... */ }) as Box<dyn Program>)
///     .collect();
/// machine.run(programs)?;
/// ```
pub trait Program: Send {
    /// Run to completion on `cpu`. The processor's finish time is the
    /// value of `cpu.now()` when this returns.
    fn run(&mut self, cpu: &mut Cpu);
}

impl<F: FnMut(&mut Cpu) + Send> Program for F {
    fn run(&mut self, cpu: &mut Cpu) {
        self(cpu);
    }
}

/// Box a closure as a program (sugar for experiment code).
#[must_use]
pub fn program(f: impl FnMut(&mut Cpu) + Send + 'static) -> Box<dyn Program> {
    Box::new(f)
}

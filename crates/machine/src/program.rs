//! The program abstraction: what one simulated processor executes.
//!
//! A program is a **resumable state machine**: the machine starts it with
//! its [`Cpu`] handle and then repeatedly *polls* it. Each step either
//! yields one timestamped [`AccessOp`] (the program is suspended at a
//! shared-memory operation awaiting its [`Reply`]) or reports completion
//! with the processor's final clock and FLOP count. A program that
//! panics propagates the panic out of the step call — the driver treats
//! the payload as the run's root cause.
//!
//! Nobody writes these state machines by hand: [`program`] wraps an
//! ordinary `async` closure and lets the compiler derive the state
//! machine, with every `cpu.read_u64(a).await` becoming one yield point.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use ksr_core::time::Cycles;

use crate::cpu::{AccessOp, Cpu, Reply, Slot};

/// One step of a resumable program.
#[derive(Debug)]
pub enum Step {
    /// The program is suspended on a shared-memory operation issued at
    /// local time `at`; it must next be resumed with the op's [`Reply`].
    Yield {
        /// Issue time (the program's local clock).
        at: Cycles,
        /// The operation awaiting coordination.
        op: AccessOp,
    },
    /// The program ran to completion.
    Done {
        /// Final local clock.
        at: Cycles,
        /// Total floating-point operations performed.
        flops: u64,
    },
}

/// A resumable program for one simulated processor.
///
/// Drivers call [`start`](Self::start) exactly once with the processor
/// handle, then alternate servicing the yielded [`AccessOp`] and calling
/// [`resume`](Self::resume) with its [`Reply`] until [`Step::Done`].
pub trait Program {
    /// Begin execution on `cpu`; runs until the first yield point or
    /// completion.
    fn start(&mut self, cpu: Cpu) -> Step;

    /// Deliver the reply to the last yielded op and run to the next
    /// yield point or completion.
    ///
    /// # Panics
    /// Re-raises any panic from the simulated program itself (the driver
    /// propagates it as the run's root cause), and panics if called
    /// before [`start`](Self::start) or after [`Step::Done`].
    fn resume(&mut self, reply: Reply) -> Step;
}

/// Box an async closure as a program (how all experiment code builds
/// programs):
///
/// ```ignore
/// let programs: Vec<Box<dyn Program>> = (0..p)
///     .map(|_| program(move |mut cpu| async move {
///         let v = cpu.read_u64(a).await;
///         cpu.write_u64(a, v + 1).await;
///     }))
///     .collect();
/// machine.run(programs)?;
/// ```
#[must_use]
pub fn program<F, Fut>(f: F) -> Box<dyn Program>
where
    F: FnOnce(Cpu) -> Fut + 'static,
    Fut: Future<Output = ()> + 'static,
{
    Box::new(AsyncProgram::NotStarted(Some(f)))
}

/// [`Program`] implementation wrapping a compiler-generated async state
/// machine. The wrapper polls the future with a no-op waker: a pending
/// poll means the future just deposited an [`AccessOp`] in the
/// processor's [`Slot`]; a ready poll means the `Cpu` (owned by the
/// future) was dropped and left its final clock/FLOP tally there.
enum AsyncProgram<F, Fut> {
    /// Waiting for the machine to supply the processor handle.
    NotStarted(Option<F>),
    /// Mid-run: the pinned state machine plus its yield cell.
    Running {
        /// The program's future.
        fut: Pin<Box<Fut>>,
        /// Yield cell shared with the `Cpu` inside the future.
        slot: Rc<Slot>,
    },
    /// Completed; stepping again is a contract violation.
    Finished,
}

impl<F, Fut> AsyncProgram<F, Fut>
where
    Fut: Future<Output = ()>,
{
    fn poll_step(&mut self) -> Step {
        let Self::Running { fut, slot } = self else {
            unreachable!("poll_step outside Running");
        };
        let mut cx = Context::from_waker(Waker::noop());
        match fut.as_mut().poll(&mut cx) {
            Poll::Pending => {
                let (at, op) = slot.take_request().expect(
                    "program suspended without yielding an access \
                     (simulated programs must only await Cpu operations)",
                );
                Step::Yield { at, op }
            }
            Poll::Ready(()) => {
                let (at, flops) = slot
                    .take_finished()
                    .expect("program completed without dropping its Cpu");
                *self = Self::Finished;
                Step::Done { at, flops }
            }
        }
    }
}

impl<F, Fut> Program for AsyncProgram<F, Fut>
where
    F: FnOnce(Cpu) -> Fut,
    Fut: Future<Output = ()>,
{
    fn start(&mut self, cpu: Cpu) -> Step {
        let Self::NotStarted(f) = self else {
            panic!("program started twice");
        };
        let f = f.take().expect("program closure present before start");
        let slot = cpu.slot();
        *self = Self::Running {
            fut: Box::pin(f(cpu)),
            slot,
        };
        self.poll_step()
    }

    fn resume(&mut self, reply: Reply) -> Step {
        let Self::Running { slot, .. } = self else {
            panic!("resume on a program that is not running");
        };
        slot.put_reply(reply);
        self.poll_step()
    }
}

//! # ksr-machine
//!
//! The deterministic machine simulator for the KSR-1 scalability-study
//! reproduction. A [`Machine`] combines the ALLCACHE memory system
//! (`ksr-mem`) and an interconnect (`ksr-net`) with a set of processor
//! cells; experiments hand it one [`Program`] per processor and get back a
//! [`RunReport`] with virtual-time measurements.
//!
//! * [`config`] — machine presets: the 32-cell KSR-1, the 64-cell KSR-2
//!   (two-level ring, doubled clock), deeper `ksr_ring` trees up to 1024
//!   cells, and the Symmetry/Butterfly comparison machines of §3.2.3,
//!   plus the timer-interrupt model used by the lock experiment. The
//!   interconnect shape is a `ksr_net::Topology` value.
//! * [`cpu`] — the processor handle: timed reads/writes,
//!   `get_sub_page`/`release_sub_page`, `prefetch`, `poststore`, private
//!   compute, FLOP accounting, and fast-forwarded spin loops.
//! * [`program`] — the resumable-state-machine contract ([`Program`],
//!   [`Step`](program::Step)) that simulated programs compile down to,
//!   written as ordinary `async` closures.
//! * [`machine`] — the coordinator that serializes all shared-memory
//!   operations in global virtual-time order (fully deterministic runs):
//!   the single-threaded event core, and scoped per-thread machine
//!   observers ([`ObserverScope`]) for verification harnesses.
//! * [`schedule`] — [`ScheduleOracle`]: controlled resolution of the
//!   coordinator's equal-timestamp ties, the hook the small-scope
//!   schedule explorer (`ksr_verify::explore`) enumerates interleavings
//!   through. No oracle installed ⇒ the historical deterministic order.
//! * [`arrays`] — typed shared-vector handles for kernel code.
//! * [`heap`] — the SVA bump allocator with the paper's
//!   false-sharing-avoiding sub-page alignment discipline.
//! * [`report`] — run timing and FLOP reports.
//! * [`snapshot`] — point-in-time [`PerfSnapshot`]s of every hardware
//!   counter, with delta arithmetic for per-phase attribution (the way
//!   the paper's authors used the hardware monitor).

#![warn(missing_docs)]

pub mod arrays;
pub mod config;
pub mod cpu;
pub mod heap;
pub mod machine;
pub mod program;
pub mod report;
pub mod schedule;
pub mod snapshot;

pub use arrays::{SharedF64, SharedU64};
pub use config::{InterruptConfig, MachineConfig};
pub use cpu::{AccessOp, Cpu, Reply};
pub use heap::Heap;
pub use machine::{Machine, MachineObserver, ObserverScope};
pub use program::{program, Program, Step};
pub use report::RunReport;
pub use schedule::{ReplayOracle, ScheduleOracle, ScheduleTrace};
pub use snapshot::PerfSnapshot;

//! Results of one simulated run.

use ksr_core::time::{cycles_to_seconds, Cycles, Hz};

/// Timing and accounting for one call to
/// [`crate::machine::Machine::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time at which all processors started.
    pub started_at: Cycles,
    /// Virtual time at which the last processor finished.
    pub finished_at: Cycles,
    /// Cell clock rate (for conversions).
    pub clock_hz: Hz,
    /// Per-processor finish times.
    pub proc_end: Vec<Cycles>,
    /// Per-processor floating-point operation counts.
    pub proc_flops: Vec<u64>,
}

impl RunReport {
    /// Makespan in cycles (start of run to last finisher).
    #[must_use]
    pub fn duration_cycles(&self) -> Cycles {
        self.finished_at - self.started_at
    }

    /// Makespan in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        cycles_to_seconds(self.duration_cycles(), self.clock_hz)
    }

    /// One processor's elapsed seconds.
    #[must_use]
    pub fn proc_seconds(&self, p: usize) -> f64 {
        cycles_to_seconds(self.proc_end[p] - self.started_at, self.clock_hz)
    }

    /// Total floating-point operations across all processors.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.proc_flops.iter().sum()
    }

    /// Aggregate MFLOPS over the makespan (the paper quotes ~11 MFLOPS
    /// sustained per processor for EP against a 40 MFLOPS peak).
    #[must_use]
    pub fn mflops(&self) -> f64 {
        let s = self.seconds();
        if s == 0.0 {
            0.0
        } else {
            self.total_flops() as f64 / s / 1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            started_at: 1_000,
            finished_at: 21_000,
            clock_hz: 20_000_000,
            proc_end: vec![11_000, 21_000],
            proc_flops: vec![4_000, 6_000],
        }
    }

    #[test]
    fn durations() {
        let r = report();
        assert_eq!(r.duration_cycles(), 20_000);
        assert!((r.seconds() - 0.001).abs() < 1e-12);
        assert!((r.proc_seconds(0) - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn flops_aggregate() {
        let r = report();
        assert_eq!(r.total_flops(), 10_000);
        assert!((r.mflops() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_mflops_is_zero() {
        let mut r = report();
        r.finished_at = r.started_at;
        assert_eq!(r.mflops(), 0.0);
    }
}

//! Typed shared-array handles.
//!
//! Kernels manipulate large shared vectors; these little wrappers keep the
//! address arithmetic in one place and make simulated code read like the
//! Fortran loops in the paper (`y.set(cpu, i, y.get(cpu, i) + a.get(cpu, k) * xj)`).

use ksr_core::Result;

use crate::cpu::Cpu;
use crate::machine::Machine;

/// A shared vector of `f64`.
#[derive(Debug, Clone, Copy)]
pub struct SharedF64 {
    base: u64,
    len: usize,
}

impl SharedF64 {
    /// Allocate a shared `f64` vector (sub-page aligned so independent
    /// vectors never false-share).
    pub fn alloc(m: &mut Machine, len: usize) -> Result<Self> {
        let base = m.alloc_subpage(len as u64 * 8)?;
        Ok(Self { base, len })
    }

    /// Wrap an externally allocated range (used by experiments that need
    /// exact control of base-address alignment, e.g. the SP padding
    /// study). `base` must be 8-byte aligned.
    #[must_use]
    pub fn from_raw(base: u64, len: usize) -> Self {
        assert_eq!(base % 8, 0, "f64 vector base must be 8-byte aligned");
        Self { base, len }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// SVA address of element `i`.
    #[must_use]
    pub fn addr(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + (i as u64) * 8
    }

    /// Timed load of element `i`.
    pub async fn get(&self, cpu: &mut Cpu, i: usize) -> f64 {
        cpu.read_f64(self.addr(i)).await
    }

    /// Timed store to element `i`.
    pub async fn set(&self, cpu: &mut Cpu, i: usize, v: f64) {
        cpu.write_f64(self.addr(i), v).await;
    }

    /// Prefetch the sub-page holding element `i`.
    pub async fn prefetch(&self, cpu: &mut Cpu, i: usize, exclusive: bool) {
        cpu.prefetch(self.addr(i), exclusive).await;
    }

    /// Poststore the sub-page holding element `i`.
    pub async fn poststore(&self, cpu: &mut Cpu, i: usize) {
        cpu.poststore(self.addr(i)).await;
    }

    /// Untimed store (setup).
    ///
    /// # Panics
    /// If the vector was built over an unmapped range via
    /// [`SharedF64::from_raw`]; allocated vectors cannot fault.
    pub fn poke(&self, m: &mut Machine, i: usize, v: f64) {
        m.poke_f64(self.addr(i), v)
            .expect("allocated shared vectors are in-heap by construction");
    }

    /// Untimed load (verification).
    ///
    /// # Panics
    /// If the vector was built over an unmapped range via
    /// [`SharedF64::from_raw`]; allocated vectors cannot fault.
    pub fn peek(&self, m: &mut Machine, i: usize) -> f64 {
        m.peek_f64(self.addr(i))
            .expect("allocated shared vectors are in-heap by construction")
    }
}

/// A shared vector of `u64`.
#[derive(Debug, Clone, Copy)]
pub struct SharedU64 {
    base: u64,
    len: usize,
}

impl SharedU64 {
    /// Allocate a shared `u64` vector (sub-page aligned).
    pub fn alloc(m: &mut Machine, len: usize) -> Result<Self> {
        let base = m.alloc_subpage(len as u64 * 8)?;
        Ok(Self { base, len })
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// SVA address of element `i`.
    #[must_use]
    pub fn addr(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base + (i as u64) * 8
    }

    /// Timed load of element `i`.
    pub async fn get(&self, cpu: &mut Cpu, i: usize) -> u64 {
        cpu.read_u64(self.addr(i)).await
    }

    /// Timed store to element `i`.
    pub async fn set(&self, cpu: &mut Cpu, i: usize, v: u64) {
        cpu.write_u64(self.addr(i), v).await;
    }

    /// Prefetch the sub-page holding element `i`.
    pub async fn prefetch(&self, cpu: &mut Cpu, i: usize, exclusive: bool) {
        cpu.prefetch(self.addr(i), exclusive).await;
    }

    /// Poststore the sub-page holding element `i`.
    pub async fn poststore(&self, cpu: &mut Cpu, i: usize) {
        cpu.poststore(self.addr(i)).await;
    }

    /// Untimed store (setup).
    ///
    /// # Panics
    /// Never for allocated vectors: their addresses are in-heap by
    /// construction.
    pub fn poke(&self, m: &mut Machine, i: usize, v: u64) {
        m.poke_u64(self.addr(i), v)
            .expect("allocated shared vectors are in-heap by construction");
    }

    /// Untimed load (verification).
    ///
    /// # Panics
    /// Never for allocated vectors: their addresses are in-heap by
    /// construction.
    pub fn peek(&self, m: &mut Machine, i: usize) -> u64 {
        m.peek_u64(self.addr(i))
            .expect("allocated shared vectors are in-heap by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::program;

    #[test]
    fn f64_vector_roundtrip() {
        let mut m = Machine::ksr1(1).unwrap();
        let v = SharedF64::alloc(&mut m, 16).unwrap();
        v.poke(&mut m, 3, 2.5);
        m.run(vec![program(move |mut cpu| async move {
            let x = v.get(&mut cpu, 3).await;
            v.set(&mut cpu, 4, x * 2.0).await;
        })])
        .expect("run");
        assert_eq!(v.peek(&mut m, 4), 5.0);
    }

    #[test]
    fn u64_vector_roundtrip() {
        let mut m = Machine::ksr1(1).unwrap();
        let v = SharedU64::alloc(&mut m, 4).unwrap();
        m.run(vec![program(move |mut cpu| async move {
            v.set(&mut cpu, 0, 10).await;
            let x = v.get(&mut cpu, 0).await;
            v.set(&mut cpu, 1, x + 1).await;
        })])
        .expect("run");
        assert_eq!(v.peek(&mut m, 1), 11);
    }

    #[test]
    fn vectors_are_subpage_aligned_and_disjoint() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = SharedF64::alloc(&mut m, 1).unwrap();
        let b = SharedF64::alloc(&mut m, 1).unwrap();
        assert_eq!(a.addr(0) % 128, 0);
        assert_eq!(b.addr(0) % 128, 0);
        assert!(b.addr(0) >= a.addr(0) + 128);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_index_panics() {
        let mut m = Machine::ksr1(1).unwrap();
        let v = SharedU64::alloc(&mut m, 4).unwrap();
        let _ = v.addr(4);
    }

    #[test]
    fn len_and_empty() {
        let mut m = Machine::ksr1(1).unwrap();
        let v = SharedU64::alloc(&mut m, 4).unwrap();
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
    }
}

//! Latency-adaptive channel receive for the coordinator/processor
//! rendezvous.
//!
//! Every simulated shared-memory access crosses two channel hops: the
//! program thread sends a request and blocks on its reply channel, and
//! the coordinator blocks on the shared request channel between
//! requests. With `std::sync::mpsc`, each blocking `recv` on an empty
//! channel costs a futex sleep plus a futex wake from the sender —
//! two syscalls per hop, four per access, and they dominate the
//! simulator's wall time (a quick FIG2 run spends over half its time in
//! the kernel).
//!
//! The right mitigation depends on the host:
//!
//! * **Multi-core**: the peer is typically running on another core and
//!   its message arrives within a few hundred nanoseconds, so a short
//!   `try_recv` spin usually catches it and skips the sleep/wake pair
//!   entirely. The spin is bounded, so oversubscribed runs (more
//!   simulated processors than cores) degrade to plain blocking.
//! * **Single-core**: spinning only burns the timeslice the peer needs
//!   to produce the message. Instead, `yield_now` hands the core
//!   directly to a runnable peer; a couple of yields usually beat the
//!   futex round-trip, and we fall back to blocking after that.
//!
//! Neither strategy can affect simulation results: the coordinator
//! processes requests in strict smallest-timestamp order regardless of
//! their arrival order, so receive latency is invisible to virtual time.

use std::sync::mpsc::{Receiver, RecvError, TryRecvError};
use std::sync::OnceLock;

/// `try_recv` attempts before blocking on a multi-core host. At a few
/// nanoseconds per attempt this stays well under one futex round-trip.
const SPIN_ROUNDS: u32 = 128;

/// `try_recv`+`yield_now` attempts before blocking on a single-core
/// host. Exactly one: a single yield usually hands the core straight to
/// the (sole runnable) peer, making the whole rendezvous one syscall.
/// Measured on a 1-CPU host, longer yield loops are *slower* than plain
/// blocking — when the first yield fails to schedule the peer, further
/// yields just re-pick the yielder and add syscalls before the
/// inevitable futex wait.
const YIELD_ROUNDS: u32 = 1;

fn single_core() -> bool {
    static SINGLE: OnceLock<bool> = OnceLock::new();
    *SINGLE.get_or_init(|| std::thread::available_parallelism().is_ok_and(|n| n.get() == 1))
}

/// Receive with a host-appropriate busy phase before blocking.
pub(crate) fn recv_hot<T>(rx: &Receiver<T>) -> Result<T, RecvError> {
    let (rounds, yield_each) = if single_core() {
        (YIELD_ROUNDS, true)
    } else {
        (SPIN_ROUNDS, false)
    };
    for _ in 0..rounds {
        match rx.try_recv() {
            Ok(v) => return Ok(v),
            Err(TryRecvError::Empty) => {
                if yield_each {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            Err(TryRecvError::Disconnected) => return Err(RecvError),
        }
    }
    rx.recv()
}

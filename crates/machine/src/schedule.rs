//! Schedule oracles: controlled resolution of the coordinator's
//! scheduling ties.
//!
//! The event core is deterministic: it services the outstanding request
//! with the smallest virtual timestamp, breaking ties by processor id.
//! That single schedule is the only one the `ksr-verify` checkers ever
//! observe — a bug that needs a different wake order is invisible. A
//! [`ScheduleOracle`] makes the tie-break a *choice point*: whenever two
//! or more processors are ready at the same minimal virtual time, the
//! coordinator asks the oracle which one runs next, and a model checker
//! (`ksr_verify::explore`) can systematically enumerate every answer.
//!
//! Two properties keep this sound:
//!
//! * **No oracle, no change.** With no oracle installed the coordinator
//!   uses the historical `(time, proc id)` min order, so every result
//!   artifact stays byte-identical.
//! * **Ties are the whole schedule space.** Wake order is subsumed:
//!   parked processors re-enter the ready queue keyed by wake time, and
//!   the queue orders distinct `(time, proc)` keys totally — the only
//!   freedom the coordinator ever has is which of several *equal-time*
//!   requests to service first, which is exactly the hook.

use std::sync::{Arc, Mutex};

use ksr_core::time::Cycles;

/// Resolves the coordinator's ready-queue ties.
///
/// Installed on a [`Machine`](crate::Machine) via
/// [`Machine::set_schedule_oracle`](crate::Machine::set_schedule_oracle).
/// The coordinator consults it only when a genuine choice exists
/// (`tied.len() >= 2`); runs whose schedule never forks never call it.
pub trait ScheduleOracle: Send {
    /// Choose which processor runs next among `tied` — the processors
    /// whose pending requests share the globally minimal timestamp
    /// `at`, in ascending proc-id order (so index 0 reproduces the
    /// default schedule). Returns an index into `tied`; out-of-range
    /// values are clamped by the caller.
    fn pick(&mut self, at: Cycles, tied: &[usize]) -> usize;
}

/// The choice-point log of one run under a [`ReplayOracle`]: how wide
/// each encountered choice point was and which branch was taken.
///
/// `fanouts[k]` is the number of tied processors at the `k`-th choice
/// point; `decisions[k]` the index actually chosen. Both vectors always
/// have the same length. A schedule explorer reads the log after a run
/// to enumerate the untaken branches.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Width (number of tied processors) of each choice point, in
    /// encounter order.
    pub fanouts: Vec<usize>,
    /// Branch taken at each choice point (an index below the fanout).
    pub decisions: Vec<usize>,
}

/// A [`ScheduleOracle`] that replays a decision prefix and records the
/// choice points it encounters.
///
/// At the `k`-th choice point it answers `prefix[k]` (clamped to the
/// actual fanout); past the end of the prefix it answers 0, which is
/// the default `(time, proc id)` order. Every consultation appends to
/// the shared [`ScheduleTrace`], so after the run the caller knows the
/// complete decision vector taken and the fanout at every point — the
/// exact information a DFS over schedules needs to generate sibling
/// prefixes.
#[derive(Debug)]
pub struct ReplayOracle {
    prefix: Vec<usize>,
    trace: Arc<Mutex<ScheduleTrace>>,
}

impl ReplayOracle {
    /// An oracle replaying `prefix`, plus the shared handle its
    /// choice-point log is published through.
    #[must_use]
    pub fn with_trace(prefix: Vec<usize>) -> (Self, Arc<Mutex<ScheduleTrace>>) {
        let trace = Arc::new(Mutex::new(ScheduleTrace::default()));
        (
            Self {
                prefix,
                trace: Arc::clone(&trace),
            },
            trace,
        )
    }
}

impl ScheduleOracle for ReplayOracle {
    fn pick(&mut self, _at: Cycles, tied: &[usize]) -> usize {
        let mut trace = self.trace.lock().expect("schedule trace poisoned");
        let k = trace.fanouts.len();
        let d = self
            .prefix
            .get(k)
            .copied()
            .unwrap_or(0)
            .min(tied.len().saturating_sub(1));
        trace.fanouts.push(tied.len());
        trace.decisions.push(d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_oracle_follows_prefix_then_defaults_to_zero() {
        let (mut o, trace) = ReplayOracle::with_trace(vec![1, 9]);
        assert_eq!(o.pick(10, &[0, 1]), 1, "prefix[0]");
        assert_eq!(o.pick(20, &[0, 1, 2]), 2, "prefix[1]=9 clamps to fanout-1");
        assert_eq!(o.pick(30, &[1, 3]), 0, "past the prefix: default order");
        let t = trace.lock().unwrap();
        assert_eq!(t.fanouts, vec![2, 3, 2]);
        assert_eq!(t.decisions, vec![1, 2, 0]);
    }
}

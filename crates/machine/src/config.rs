//! Machine configuration and presets.

use ksr_core::time::{Hz, KSR1_CLOCK_HZ, KSR2_CLOCK_HZ};
use ksr_core::{Error, Result};
use ksr_mem::{CacheTiming, MemGeometry, ProtocolOptions};
use ksr_net::{Fabric, RingHierarchy, RingHierarchyConfig};

/// Which machine of the study this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// 32-cell KSR-1 (single-level ring, 20 MHz cells).
    Ksr1,
    /// 64-cell KSR-2 (two-level ring, 40 MHz cells; the ring keeps its
    /// absolute speed, so it costs twice as many *processor* cycles).
    Ksr2,
    /// Sequent Symmetry-style bus machine (§3.2.3 comparison).
    Symmetry,
    /// BBN Butterfly-style MIN machine without coherent caches (§3.2.3).
    Butterfly,
}

/// Unsynchronized per-processor timer interrupts — the OS effect the
/// authors cite (via personal communication with Steve Frank) to explain
/// why their software queue lock beats the hardware lock even with
/// writers only (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptConfig {
    /// Start-to-start interval between interrupts on one processor.
    pub quantum_cycles: u64,
    /// Processor cycles consumed by each interrupt.
    pub duration_cycles: u64,
}

impl InterruptConfig {
    /// A 100 Hz scheduler tick on a 20 MHz cell costing ~50 µs of handler
    /// time — coarse, but the *unsynchronized phase* across processors is
    /// what matters for the lock experiment.
    #[must_use]
    pub fn ksr_os() -> Self {
        Self {
            quantum_cycles: 200_000,
            duration_cycles: 1_000,
        }
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Machine family.
    pub kind: MachineKind,
    /// Number of processor cells physically present (the fabric always has
    /// its full complement of stations; experiments may run fewer
    /// programs).
    pub cells: usize,
    /// Cache geometry per cell.
    pub geometry: MemGeometry,
    /// Cache/controller timing constants.
    pub timing: CacheTiming,
    /// Cell clock rate.
    pub clock_hz: Hz,
    /// Peak floating-point operations per cycle (KSR-1: 2, i.e. 40 MFLOPS
    /// at 20 MHz).
    pub flops_per_cycle: u64,
    /// Master seed for replacement policies and workloads.
    pub seed: u64,
    /// Timer-interrupt model, if enabled.
    pub interrupts: Option<InterruptConfig>,
    /// Whether the processor has a native fetch-and-Φ instruction. The
    /// KSR-1 does not (fetch-and-add is synthesised from `get_sub_page`,
    /// §3.2.2); the Symmetry and Butterfly do, which matters for the
    /// §3.2.3 barrier comparison.
    pub native_fetch_op: bool,
    /// Coherence-protocol feature toggles (ablations).
    pub protocol: ProtocolOptions,
    /// Ring-geometry override for ablation studies (Ksr1/Ksr2 kinds only;
    /// `None` uses the machine's standard geometry).
    pub ring_override: Option<RingHierarchyConfig>,
}

impl MachineConfig {
    /// The paper's 32-cell KSR-1 with full-size caches.
    #[must_use]
    pub fn ksr1(seed: u64) -> Self {
        Self {
            kind: MachineKind::Ksr1,
            cells: 32,
            geometry: MemGeometry::ksr1(),
            timing: CacheTiming::ksr1(),
            clock_hz: KSR1_CLOCK_HZ,
            flops_per_cycle: 2,
            seed,
            interrupts: None,
            native_fetch_op: false,
            protocol: ProtocolOptions::default(),
            ring_override: None,
        }
    }

    /// KSR-1 with caches scaled down by `factor` (used with problem sizes
    /// scaled by the same factor; see DESIGN.md).
    #[must_use]
    pub fn ksr1_scaled(seed: u64, factor: u64) -> Self {
        Self {
            geometry: MemGeometry::scaled(factor),
            ..Self::ksr1(seed)
        }
    }

    /// The 64-cell two-level KSR-2 of §3.2.4.
    #[must_use]
    pub fn ksr2(seed: u64) -> Self {
        Self {
            kind: MachineKind::Ksr2,
            cells: 64,
            geometry: MemGeometry::ksr1(),
            timing: CacheTiming::ksr1(),
            clock_hz: KSR2_CLOCK_HZ,
            flops_per_cycle: 2,
            seed,
            interrupts: None,
            native_fetch_op: false,
            protocol: ProtocolOptions::default(),
            ring_override: None,
        }
    }

    /// Sequent Symmetry-style bus machine with `cells` processors.
    #[must_use]
    pub fn symmetry(cells: usize, seed: u64) -> Self {
        Self {
            kind: MachineKind::Symmetry,
            cells,
            geometry: MemGeometry::ksr1(),
            timing: CacheTiming::symmetry(),
            clock_hz: 16_000_000,
            flops_per_cycle: 1,
            seed,
            interrupts: None,
            native_fetch_op: true,
            protocol: ProtocolOptions::default(),
            ring_override: None,
        }
    }

    /// BBN Butterfly-style MIN machine with `cells` processors.
    #[must_use]
    pub fn butterfly(cells: usize, seed: u64) -> Self {
        Self {
            kind: MachineKind::Butterfly,
            cells,
            geometry: MemGeometry::ksr1(),
            timing: CacheTiming::butterfly(),
            clock_hz: 16_000_000,
            flops_per_cycle: 1,
            seed,
            interrupts: None,
            native_fetch_op: true,
            protocol: ProtocolOptions::default(),
            ring_override: None,
        }
    }

    /// Enable the timer-interrupt model.
    #[must_use]
    pub fn with_interrupts(mut self, ints: InterruptConfig) -> Self {
        self.interrupts = Some(ints);
        self
    }

    /// Build the interconnect for this configuration.
    pub fn build_fabric(&self) -> Result<Fabric> {
        if let Some(ring_cfg) = self.ring_override {
            if !matches!(self.kind, MachineKind::Ksr1 | MachineKind::Ksr2) {
                return Err(Error::Config(
                    "ring_override applies to ring machines only".into(),
                ));
            }
            if self.cells > ring_cfg.total_cells() {
                return Err(Error::Config(
                    "ring_override too small for cell count".into(),
                ));
            }
            return Ok(Fabric::Ring(RingHierarchy::new(ring_cfg)?));
        }
        match self.kind {
            MachineKind::Ksr1 => {
                if self.cells > 32 {
                    return Err(Error::Config(
                        "a single-level KSR-1 ring holds 32 cells".into(),
                    ));
                }
                Fabric::ksr1_32()
            }
            MachineKind::Ksr2 => {
                if self.cells > 64 {
                    return Err(Error::Config("the modelled KSR-2 has 64 cells".into()));
                }
                // Same ring in absolute time; the 40 MHz cell sees every
                // hop cost twice the cycles.
                let mut cfg = RingHierarchyConfig::ksr_64();
                cfg.leaf.hop_cycles *= 2;
                cfg.top.hop_cycles *= 2;
                cfg.ard_cycles *= 2;
                Ok(Fabric::Ring(RingHierarchy::new(cfg)?))
            }
            MachineKind::Symmetry => Fabric::symmetry(),
            MachineKind::Butterfly => Fabric::butterfly(self.cells),
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        self.geometry.validate()?;
        if self.cells == 0 {
            return Err(Error::Config("need at least one cell".into()));
        }
        if self.flops_per_cycle == 0 {
            return Err(Error::Config("flops_per_cycle must be non-zero".into()));
        }
        if self.clock_hz == 0 {
            return Err(Error::Config("clock must be non-zero".into()));
        }
        if let Some(i) = &self.interrupts {
            if i.quantum_cycles == 0 || i.duration_cycles >= i.quantum_cycles {
                return Err(Error::Config(
                    "interrupt duration must be well below quantum".into(),
                ));
            }
        }
        self.build_fabric().map(drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::ksr1(1).validate().unwrap();
        MachineConfig::ksr1_scaled(1, 64).validate().unwrap();
        MachineConfig::ksr2(1).validate().unwrap();
        MachineConfig::symmetry(16, 1).validate().unwrap();
        MachineConfig::butterfly(32, 1).validate().unwrap();
    }

    #[test]
    fn ksr1_is_the_papers_machine() {
        let c = MachineConfig::ksr1(0);
        assert_eq!(c.cells, 32);
        assert_eq!(c.clock_hz, 20_000_000);
        assert_eq!(c.flops_per_cycle, 2, "40 MFLOPS peak at 20 MHz");
    }

    #[test]
    fn ksr2_doubles_clock_and_ring_cycle_cost() {
        let c = MachineConfig::ksr2(0);
        assert_eq!(c.clock_hz, 40_000_000);
        match c.build_fabric().unwrap() {
            Fabric::Ring(h) => {
                assert_eq!(
                    h.config().leaf.hop_cycles,
                    8,
                    "ring absolute speed unchanged"
                );
                assert_eq!(h.config().n_leaves, 2);
            }
            _ => panic!("KSR-2 is a ring machine"),
        }
    }

    #[test]
    fn oversized_configs_rejected() {
        let mut c = MachineConfig::ksr1(0);
        c.cells = 33;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::ksr2(0);
        c.cells = 65;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_interrupts_rejected() {
        let c = MachineConfig::ksr1(0).with_interrupts(InterruptConfig {
            quantum_cycles: 100,
            duration_cycles: 100,
        });
        assert!(c.validate().is_err());
    }
}

//! Machine configuration and presets.

use ksr_core::time::{Hz, KSR1_CLOCK_HZ, KSR2_CLOCK_HZ};
use ksr_core::{Error, Result};
use ksr_mem::{CacheTiming, MemGeometry, ProtocolOptions};
use ksr_net::{Fabric, Topology};

/// Unsynchronized per-processor timer interrupts — the OS effect the
/// authors cite (via personal communication with Steve Frank) to explain
/// why their software queue lock beats the hardware lock even with
/// writers only (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptConfig {
    /// Start-to-start interval between interrupts on one processor.
    pub quantum_cycles: u64,
    /// Processor cycles consumed by each interrupt.
    pub duration_cycles: u64,
}

impl InterruptConfig {
    /// A 100 Hz scheduler tick on a 20 MHz cell costing ~50 µs of handler
    /// time — coarse, but the *unsynchronized phase* across processors is
    /// what matters for the lock experiment.
    #[must_use]
    pub fn ksr_os() -> Self {
        Self {
            quantum_cycles: 200_000,
            duration_cycles: 1_000,
        }
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Interconnect topology (the fabric always has its full complement
    /// of stations; experiments may run fewer programs than `cells`).
    pub topology: Topology,
    /// Number of processor cells physically present.
    pub cells: usize,
    /// Cache geometry per cell.
    pub geometry: MemGeometry,
    /// Cache/controller timing constants.
    pub timing: CacheTiming,
    /// Cell clock rate.
    pub clock_hz: Hz,
    /// Peak floating-point operations per cycle (KSR-1: 2, i.e. 40 MFLOPS
    /// at 20 MHz).
    pub flops_per_cycle: u64,
    /// Master seed for replacement policies and workloads.
    pub seed: u64,
    /// Timer-interrupt model, if enabled.
    pub interrupts: Option<InterruptConfig>,
    /// Whether the processor has a native fetch-and-Φ instruction. The
    /// KSR-1 does not (fetch-and-add is synthesised from `get_sub_page`,
    /// §3.2.2); the Symmetry and Butterfly do, which matters for the
    /// §3.2.3 barrier comparison.
    pub native_fetch_op: bool,
    /// Coherence-protocol feature toggles (ablations).
    pub protocol: ProtocolOptions,
}

impl MachineConfig {
    /// The paper's 32-cell KSR-1 with full-size caches.
    #[must_use]
    pub fn ksr1(seed: u64) -> Self {
        Self {
            topology: Topology::ksr1_32(),
            cells: 32,
            geometry: MemGeometry::ksr1(),
            timing: CacheTiming::ksr1(),
            clock_hz: KSR1_CLOCK_HZ,
            flops_per_cycle: 2,
            seed,
            interrupts: None,
            native_fetch_op: false,
            protocol: ProtocolOptions::default(),
        }
    }

    /// KSR-1 with caches scaled down by `factor` (used with problem sizes
    /// scaled by the same factor; see DESIGN.md).
    #[must_use]
    pub fn ksr1_scaled(seed: u64, factor: u64) -> Self {
        Self {
            geometry: MemGeometry::scaled(factor),
            ..Self::ksr1(seed)
        }
    }

    /// The 64-cell two-level KSR-2 of §3.2.4: same ring in absolute time,
    /// 40 MHz cells, so every hop and ARD crossing costs twice the cycles.
    #[must_use]
    pub fn ksr2(seed: u64) -> Self {
        Self {
            topology: Topology::ksr2_64(),
            cells: 64,
            clock_hz: KSR2_CLOCK_HZ,
            ..Self::ksr1(seed)
        }
    }

    /// A deeper KSR-1-style ring system from a shape spec (`spec[0]`
    /// cells per leaf ring, further entries per-level fanout — see
    /// [`Topology::ring_levels`]): KSR-1 clock, caches and timing, with
    /// as many cells as the tree holds. `&[32, 8, 4]` is the 1024-cell
    /// three-level machine of the scaling experiments.
    #[must_use]
    pub fn ksr_ring(seed: u64, spec: &[usize]) -> Self {
        let topology = Topology::ring_levels(spec);
        let cells = topology.capacity().unwrap_or(0);
        Self {
            topology,
            cells,
            ..Self::ksr1(seed)
        }
    }

    /// Sequent Symmetry-style bus machine with `cells` processors.
    #[must_use]
    pub fn symmetry(cells: usize, seed: u64) -> Self {
        Self {
            topology: Topology::bus(),
            cells,
            geometry: MemGeometry::ksr1(),
            timing: CacheTiming::symmetry(),
            clock_hz: 16_000_000,
            flops_per_cycle: 1,
            seed,
            interrupts: None,
            native_fetch_op: true,
            protocol: ProtocolOptions::default(),
        }
    }

    /// BBN Butterfly-style MIN machine with `cells` processors.
    #[must_use]
    pub fn butterfly(cells: usize, seed: u64) -> Self {
        Self {
            topology: Topology::butterfly(cells),
            timing: CacheTiming::butterfly(),
            ..Self::symmetry(cells, seed)
        }
    }

    /// Enable the timer-interrupt model.
    #[must_use]
    pub fn with_interrupts(mut self, ints: InterruptConfig) -> Self {
        self.interrupts = Some(ints);
        self
    }

    /// Replace the interconnect topology.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Build the interconnect for this configuration. Capacity and shape
    /// errors come from the topology's own validation.
    pub fn build_fabric(&self) -> Result<Fabric> {
        self.topology.build(self.cells)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        self.geometry.validate()?;
        if self.cells == 0 {
            return Err(Error::Config("need at least one cell".into()));
        }
        if self.flops_per_cycle == 0 {
            return Err(Error::Config("flops_per_cycle must be non-zero".into()));
        }
        if self.clock_hz == 0 {
            return Err(Error::Config("clock must be non-zero".into()));
        }
        if let Some(i) = &self.interrupts {
            if i.quantum_cycles == 0 || i.duration_cycles >= i.quantum_cycles {
                return Err(Error::Config(
                    "interrupt duration must be well below quantum".into(),
                ));
            }
        }
        self.build_fabric().map(drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::ksr1(1).validate().unwrap();
        MachineConfig::ksr1_scaled(1, 64).validate().unwrap();
        MachineConfig::ksr2(1).validate().unwrap();
        MachineConfig::symmetry(16, 1).validate().unwrap();
        MachineConfig::butterfly(32, 1).validate().unwrap();
        MachineConfig::ksr_ring(1, &[32, 8, 4]).validate().unwrap();
    }

    #[test]
    fn ksr1_is_the_papers_machine() {
        let c = MachineConfig::ksr1(0);
        assert_eq!(c.cells, 32);
        assert_eq!(c.clock_hz, 20_000_000);
        assert_eq!(c.flops_per_cycle, 2, "40 MFLOPS peak at 20 MHz");
    }

    #[test]
    fn ksr2_doubles_clock_and_ring_cycle_cost() {
        let c = MachineConfig::ksr2(0);
        assert_eq!(c.clock_hz, 40_000_000);
        match c.build_fabric().unwrap() {
            Fabric::Ring(h) => {
                assert_eq!(
                    h.config().leaf.hop_cycles,
                    8,
                    "ring absolute speed unchanged"
                );
                assert_eq!(h.config().n_leaves(), 2);
            }
            _ => panic!("KSR-2 is a ring machine"),
        }
    }

    #[test]
    fn ksr_ring_spans_1024_cells() {
        let c = MachineConfig::ksr_ring(0, &[32, 8, 4]);
        assert_eq!(c.cells, 1024);
        assert_eq!(c.topology.ring_depth(), Some(3));
        assert_eq!(c.clock_hz, 20_000_000, "KSR-1 cells throughout");
    }

    #[test]
    fn oversized_configs_rejected_by_the_topology() {
        let mut c = MachineConfig::ksr1(0);
        c.cells = 33;
        let err = c.validate().unwrap_err().to_string();
        assert!(
            err.contains("ring[32]") && err.contains("33"),
            "capacity errors come from the topology: {err}"
        );
        let mut c = MachineConfig::ksr2(0);
        c.cells = 65;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_interrupts_rejected() {
        let c = MachineConfig::ksr1(0).with_interrupts(InterruptConfig {
            quantum_cycles: 100,
            duration_cycles: 100,
        });
        assert!(c.validate().is_err());
    }
}

//! The machine: processors + memory system + coordinator.
//!
//! ## Execution model
//!
//! Each simulated processor runs its [`Program`] on a dedicated OS thread
//! against a [`Cpu`] handle; every shared-memory operation is sent to the
//! coordinator (running on the caller's thread) and answered in **global
//! virtual-time order**: the coordinator only ever processes the
//! outstanding request with the smallest timestamp (ties broken by
//! processor id), so a run is fully deterministic for a given
//! configuration and seed, regardless of host scheduling.
//!
//! Spin loops ([`Cpu::spin_until`]) and accesses blocked on an atomic
//! sub-page park on a per-sub-page watch list and are re-issued — as
//! fully costed reads — whenever the memory system reports a visibility
//! event on that sub-page. This is semantically identical to a tight
//! polling loop (the woken read pays invalidation-refetch or snarf-refill
//! costs exactly as the protocol dictates) at O(updates) instead of
//! O(poll iterations) simulation cost.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;

use ksr_core::time::Cycles;
use ksr_core::trace::{TraceEvent, Tracer};
use ksr_core::{Error, FxHashMap, Result};
use ksr_mem::{MemOp, MemorySystem, Outcome, PerfMon};
use ksr_net::FabricStats;

use crate::config::MachineConfig;
use crate::cpu::{Cpu, Envelope, Reply, Request};
use crate::heap::Heap;
use crate::program::Program;
use crate::report::RunReport;
use crate::snapshot::PerfSnapshot;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Running,
    Waiting,
    Parked,
    Done,
}

/// A hook invoked on every freshly built [`Machine`] (see
/// [`ObserverScope`]).
pub type MachineObserver = dyn Fn(&mut Machine) + Send + Sync;

thread_local! {
    /// Stack of scoped observers for the *current thread*. Deliberately
    /// thread-local rather than process-global: concurrent jobs each
    /// install their own observer and must never see machines built by
    /// another job's thread.
    static SCOPED_OBSERVERS: RefCell<Vec<Arc<MachineObserver>>> =
        const { RefCell::new(Vec::new()) };
}

/// Scoped, stacked registration of a hook invoked on every [`Machine`]
/// built **on the current thread** while the scope is alive.
/// Verification harnesses use this to attach checking sinks to machines
/// built deep inside experiment code they do not control; the hook runs
/// before the machine executes anything, so an attached sink observes
/// the complete event stream.
///
/// Scopes nest: the innermost (most recently installed) observer wins.
/// Dropping the scope uninstalls its observer. The handle is
/// deliberately `!Send` — registration is per-thread, and moving the
/// guard across threads would silently uninstall on the wrong stack.
#[must_use = "the observer is uninstalled when the scope is dropped"]
pub struct ObserverScope {
    _not_send: PhantomData<*const ()>,
}

impl ObserverScope {
    /// Push `observer` onto the current thread's observer stack.
    pub fn install(observer: Arc<MachineObserver>) -> Self {
        SCOPED_OBSERVERS.with(|stack| stack.borrow_mut().push(observer));
        Self {
            _not_send: PhantomData,
        }
    }
}

impl Drop for ObserverScope {
    fn drop(&mut self) {
        SCOPED_OBSERVERS.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// A simulated multiprocessor.
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    heap: Heap,
    epoch: Cycles,
    tracer: Tracer,
}

impl Machine {
    /// Build a machine from a validated configuration.
    pub fn new(cfg: MachineConfig) -> Result<Self> {
        cfg.validate()?;
        let fabric = cfg.build_fabric()?;
        let mem = MemorySystem::with_options(
            cfg.geometry,
            cfg.timing,
            fabric,
            cfg.cells,
            cfg.seed,
            cfg.protocol,
        )?;
        let mut machine = Self {
            cfg,
            mem,
            heap: Heap::new(),
            epoch: 0,
            tracer: Tracer::disabled(),
        };
        // Clone the innermost hook out before invoking it (the borrow
        // must end first) so a hook that builds another machine
        // re-enters the thread-local stack cleanly.
        let observer = SCOPED_OBSERVERS.with(|stack| stack.borrow().last().cloned());
        if let Some(observer) = observer {
            observer(&mut machine);
        }
        Ok(machine)
    }

    /// Attach a tracer to every instrumented layer of this machine: the
    /// interconnect (slot grants), the memory system (coherence
    /// transitions, snarfs, invalidations, atomic rejections), the
    /// coordinator (lock/flag handoffs), and the processors (barrier
    /// episodes). Sinks observe only — cycle counts are identical with
    /// tracing on or off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mem.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The paper's 32-cell KSR-1.
    pub fn ksr1(seed: u64) -> Result<Self> {
        Self::new(MachineConfig::ksr1(seed))
    }

    /// KSR-1 with caches scaled down by `factor`.
    pub fn ksr1_scaled(seed: u64, factor: u64) -> Result<Self> {
        Self::new(MachineConfig::ksr1_scaled(seed, factor))
    }

    /// The 64-cell KSR-2.
    pub fn ksr2(seed: u64) -> Result<Self> {
        Self::new(MachineConfig::ksr2(seed))
    }

    /// Sequent Symmetry-style bus machine.
    pub fn symmetry(cells: usize, seed: u64) -> Result<Self> {
        Self::new(MachineConfig::symmetry(cells, seed))
    }

    /// BBN Butterfly-style MIN machine.
    pub fn butterfly(cells: usize, seed: u64) -> Result<Self> {
        Self::new(MachineConfig::butterfly(cells, seed))
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The memory system (for perfmon and directory inspection).
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// One cell's performance monitor.
    #[must_use]
    pub fn perfmon(&self, cell: usize) -> &PerfMon {
        self.mem.perfmon(cell)
    }

    /// Machine-wide performance-monitor totals.
    #[must_use]
    pub fn perfmon_total(&self) -> PerfMon {
        self.mem.perfmon_total()
    }

    /// Interconnect counters.
    #[must_use]
    pub fn fabric_stats(&self) -> FabricStats {
        self.mem.fabric().stats()
    }

    /// Freeze every hardware counter at the current virtual time. Take
    /// one snapshot before and one after a phase and
    /// [`PerfSnapshot::delta_since`] attributes the counters to it —
    /// exactly how the paper's authors used the hardware monitor.
    #[must_use]
    pub fn perfmon_snapshot(&self) -> PerfSnapshot {
        PerfSnapshot {
            at: self.epoch,
            per_cell: (0..self.cfg.cells).map(|c| *self.mem.perfmon(c)).collect(),
            total: self.mem.perfmon_total(),
            fabric: self.mem.fabric().stats(),
        }
    }

    /// Allocate `bytes` of shared memory with the given alignment.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Result<u64> {
        self.heap.alloc(bytes, align)
    }

    /// Allocate `words` 8-byte words.
    pub fn alloc_words(&mut self, words: u64) -> Result<u64> {
        self.heap.alloc_words(words)
    }

    /// Allocate on a fresh 128 B sub-page (no false sharing).
    pub fn alloc_subpage(&mut self, bytes: u64) -> Result<u64> {
        self.heap.alloc_subpage_aligned(bytes)
    }

    /// Pre-install an address range in a cell's local cache (untimed
    /// setup; see [`MemorySystem::warm`]).
    pub fn warm(&mut self, cell: usize, addr: u64, len: u64) {
        self.mem.warm(cell, addr, len);
    }

    /// **Extension** (§4 wish list): turn sub-caching off for an address
    /// range — streaming data then bypasses the sub-cache instead of
    /// thrashing the hot working set out of it.
    pub fn set_uncached(&mut self, addr: u64, len: u64) {
        self.mem.set_uncached(addr, len);
    }

    /// Untimed data-plane store (experiment setup).
    pub fn poke_u64(&mut self, addr: u64, value: u64) {
        self.mem.data_mut().write_u64(addr, value).expect("poke");
    }

    /// Untimed data-plane load (result verification).
    pub fn peek_u64(&mut self, addr: u64) -> u64 {
        self.mem.data_mut().read_u64(addr).expect("peek")
    }

    /// Untimed `f64` store.
    pub fn poke_f64(&mut self, addr: u64, value: f64) {
        self.mem.data_mut().write_f64(addr, value).expect("poke");
    }

    /// Untimed `f64` load.
    pub fn peek_f64(&mut self, addr: u64) -> f64 {
        self.mem.data_mut().read_f64(addr).expect("peek")
    }

    /// Run one program per processor to completion; returns the run's
    /// timing report. May be called repeatedly — cache and directory state
    /// persist across runs (virtual time keeps increasing), which is how
    /// multi-phase experiments separate warm-up from measurement.
    ///
    /// Each program gets a dedicated OS thread, reserved against the
    /// process-wide [thread budget](crate::budget) before anything is
    /// spawned; if the host then still cannot provide a thread, the run
    /// aborts cleanly and returns [`Error::Host`] instead of panicking.
    ///
    /// # Errors
    /// [`Error::Host`] when the operating system refuses to spawn a
    /// processor thread.
    ///
    /// # Panics
    /// Panics on simulation deadlock (every live processor parked on a
    /// sub-page no one is going to touch) — always a bug in the simulated
    /// program.
    pub fn run(&mut self, mut programs: Vec<Box<dyn Program + '_>>) -> Result<RunReport> {
        let n = programs.len();
        assert!(n >= 1, "need at least one program");
        assert!(
            n <= self.cfg.cells,
            "{n} programs exceed the machine's {} cells",
            self.cfg.cells
        );
        let _permits = crate::budget::acquire(n);
        let start = self.epoch;
        let (req_tx, req_rx) = mpsc::channel::<Envelope>();
        let mut reply_txs: Vec<Sender<Reply>> = Vec::with_capacity(n);
        let mut cpus: Vec<Cpu> = Vec::with_capacity(n);
        for p in 0..n {
            let (rtx, rrx) = mpsc::channel::<Reply>();
            reply_txs.push(rtx);
            cpus.push(Cpu::new(
                p,
                n,
                start,
                self.cfg.clock_hz,
                self.cfg.flops_per_cycle,
                self.cfg.interrupts,
                self.cfg.native_fetch_op,
                self.tracer.clone(),
                req_tx.clone(),
                rrx,
            ));
        }
        drop(req_tx);

        let mem = &mut self.mem;
        let tracer = &self.tracer;
        let (proc_end, proc_flops) = std::thread::scope(|s| {
            for (p, (prog, cpu)) in programs.iter_mut().zip(cpus).enumerate() {
                let spawned = std::thread::Builder::new()
                    .name(format!("ksr-proc-{p}"))
                    .spawn_scoped(s, move || {
                        let mut cpu = cpu;
                        // If the coordinator unwinds (deadlock detection, a
                        // protocol invariant), program threads wake with a
                        // CoordinatorGone panic; swallow it so the
                        // coordinator's panic is the one that propagates. Any
                        // other panic (a failed assertion in the simulated
                        // program) is handed to the coordinator as an
                        // `Aborted` request: the coordinator re-raises it on
                        // its own thread, so the program's message — not a
                        // generic "a scoped thread panicked" or a misleading
                        // deadlock report from a parked peer — is what
                        // reaches the user.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            prog.run(&mut cpu);
                        }));
                        match result {
                            Ok(()) => cpu.finish(),
                            Err(payload) => {
                                if payload.is::<crate::cpu::CoordinatorGone>() {
                                    cpu.finish();
                                } else {
                                    cpu.abort(payload);
                                }
                            }
                        }
                    });
                if let Err(e) = spawned {
                    // Dropping the reply senders wakes every
                    // already-spawned program thread with CoordinatorGone
                    // (which it swallows), so the scope joins cleanly and
                    // the machine is left unperturbed at its old epoch.
                    drop(reply_txs);
                    return Err(Error::Host(format!(
                        "could not spawn simulated processor {p} of {n}: {e}"
                    )));
                }
            }
            // `coordinate` owns the reply senders: if it unwinds, they
            // drop, the program threads wake and exit, and the scope join
            // completes instead of hanging.
            Ok(coordinate(mem, tracer, n, &req_rx, reply_txs))
        })?;

        let finished_at = proc_end.iter().copied().max().unwrap_or(start);
        self.epoch = finished_at;
        Ok(RunReport {
            started_at: start,
            finished_at,
            clock_hz: self.cfg.clock_hz,
            proc_end,
            proc_flops,
        })
    }
}

/// The coordinator loop: strict smallest-timestamp-first processing.
fn coordinate(
    mem: &mut MemorySystem,
    tracer: &Tracer,
    n: usize,
    req_rx: &Receiver<Envelope>,
    reply_txs: Vec<Sender<Reply>>,
) -> (Vec<Cycles>, Vec<u64>) {
    let mut state = vec![ProcState::Running; n];
    let mut slots: Vec<Option<Request>> = (0..n).map(|_| None).collect();
    let mut heap: BinaryHeap<Reverse<(Cycles, usize)>> = BinaryHeap::new();
    // Fast path for the common single-runnable-processor case (n == 1, or
    // everyone else parked/done): the sole ready request is held here and
    // never touches the heap. Invariant: when `direct` is `Some`, the heap
    // is empty — so `direct` is trivially the global minimum.
    let mut direct: Option<(Cycles, usize)> = None;
    // sub-page -> parked (proc, parked_at)
    let mut parked: FxHashMap<u64, Vec<(usize, Cycles)>> = FxHashMap::default();
    // Reused across iterations so draining visibility events allocates
    // only until both buffers reach their high-water mark.
    let mut events = Vec::new();
    let mut running = n;
    let mut done = 0usize;
    let mut end_at = vec![0; n];
    let mut flops = vec![0; n];

    macro_rules! reply {
        ($p:expr, $r:expr) => {{
            reply_txs[$p].send($r).expect("program thread died");
            state[$p] = ProcState::Running;
            running += 1;
        }};
    }
    macro_rules! park {
        ($p:expr, $sp:expr, $at:expr, $req:expr) => {{
            mem.watch($sp);
            parked.entry($sp).or_default().push(($p, $at));
            slots[$p] = Some($req);
            state[$p] = ProcState::Parked;
        }};
    }
    // Mark a processor runnable at a virtual time, maintaining the
    // `direct`/heap invariant above.
    macro_rules! ready {
        ($at:expr, $p:expr) => {{
            let at = $at;
            let p = $p;
            if direct.is_none() && heap.is_empty() {
                direct = Some((at, p));
            } else {
                if let Some(d) = direct.take() {
                    heap.push(Reverse(d));
                }
                heap.push(Reverse((at, p)));
            }
            state[p] = ProcState::Waiting;
        }};
    }

    loop {
        // Wait until every live processor has an outstanding request.
        while running > 0 {
            let env = crate::hotrecv::recv_hot(req_rx).expect("program thread died");
            running -= 1;
            match env.req {
                Request::Finish { flops: f } => {
                    state[env.proc] = ProcState::Done;
                    done += 1;
                    end_at[env.proc] = env.at;
                    flops[env.proc] = f;
                }
                Request::Aborted { payload } => {
                    // The program's own panic is the root cause of
                    // whatever happens next (parked peers would otherwise
                    // die as a bogus "deadlock"). Re-raise it here: the
                    // unwind drops the reply senders, which wakes every
                    // other program thread with CoordinatorGone, and
                    // `thread::scope` then resumes this payload.
                    std::panic::resume_unwind(payload);
                }
                req => {
                    slots[env.proc] = Some(req);
                    ready!(env.at, env.proc);
                }
            }
        }
        if done == n {
            break;
        }
        let next = direct.take().or_else(|| heap.pop().map(|Reverse(x)| x));
        let Some((t, p)) = next else {
            let mut waiters: Vec<(usize, u64, Cycles)> = parked
                .iter()
                .flat_map(|(&sp, v)| v.iter().map(move |&(proc, at)| (proc, sp, at)))
                .collect();
            waiters.sort_unstable();
            panic!(
                "simulation deadlock: {} processor(s) parked with no pending \
                 writer; waiters as (proc, sub-page, parked_at): {waiters:?}",
                n - done
            );
        };
        let req = slots[p].take().expect("scheduled processor has a request");

        match req {
            Request::Read { addr } => match mem.access(p, addr, MemOp::Read, t) {
                Outcome::Done { done_at } => {
                    let value = mem.data_mut().read_u64(addr).expect("read");
                    tracer.emit_with(|| TraceEvent::DataRead {
                        at: done_at,
                        cell: p,
                        addr,
                    });
                    reply!(p, Reply::Value { value, at: done_at });
                }
                Outcome::BlockedOnAtomic { subpage } => {
                    park!(p, subpage, t, Request::Read { addr });
                }
                Outcome::AtomicFailed { .. } => unreachable!("reads cannot fail atomically"),
            },
            Request::Write { addr, value } => match mem.access(p, addr, MemOp::Write, t) {
                Outcome::Done { done_at } => {
                    mem.data_mut().write_u64(addr, value).expect("write");
                    tracer.emit_with(|| TraceEvent::DataWrite {
                        at: done_at,
                        cell: p,
                        addr,
                    });
                    reply!(p, Reply::Unit { at: done_at });
                }
                Outcome::BlockedOnAtomic { subpage } => {
                    park!(p, subpage, t, Request::Write { addr, value });
                }
                Outcome::AtomicFailed { .. } => unreachable!("writes cannot fail atomically"),
            },
            Request::GetSubPage { addr } => match mem.access(p, addr, MemOp::GetSubPage, t) {
                Outcome::Done { done_at } => {
                    tracer.emit_with(|| TraceEvent::SyncAcquire {
                        at: done_at,
                        cell: p,
                        subpage: ksr_mem::subpage_of(addr),
                        rmw: false,
                    });
                    reply!(
                        p,
                        Reply::Flag {
                            ok: true,
                            at: done_at
                        }
                    );
                }
                Outcome::AtomicFailed { done_at } => {
                    reply!(
                        p,
                        Reply::Flag {
                            ok: false,
                            at: done_at
                        }
                    );
                }
                Outcome::BlockedOnAtomic { .. } => {
                    unreachable!("get_sub_page reports failure, not blockage")
                }
            },
            Request::FetchAdd { addr, delta } => match mem.access(p, addr, MemOp::AtomicRmw, t) {
                Outcome::Done { done_at } => {
                    let old = mem.data_mut().read_u64(addr).expect("rmw read");
                    mem.data_mut()
                        .write_u64(addr, old.wrapping_add(delta))
                        .expect("rmw");
                    // A native RMW is one indivisible acquire+release on
                    // its sub-page: race detectors get a synchronization
                    // edge without any `Atomic` directory state existing.
                    let sp = ksr_mem::subpage_of(addr);
                    tracer.emit_with(|| TraceEvent::SyncAcquire {
                        at: done_at,
                        cell: p,
                        subpage: sp,
                        rmw: true,
                    });
                    tracer.emit_with(|| TraceEvent::SyncRelease {
                        at: done_at,
                        cell: p,
                        subpage: sp,
                        rmw: true,
                    });
                    reply!(
                        p,
                        Reply::Value {
                            value: old,
                            at: done_at
                        }
                    );
                }
                Outcome::BlockedOnAtomic { subpage } => {
                    park!(p, subpage, t, Request::FetchAdd { addr, delta });
                }
                Outcome::AtomicFailed { .. } => unreachable!("RMW cannot fail atomically"),
            },
            Request::ReleaseSubPage { addr } => {
                // Stamped at issue time, before the memory system applies
                // the transition: the holder must still be `Atomic` here,
                // which is exactly what a checking sink verifies.
                tracer.emit_with(|| TraceEvent::SyncRelease {
                    at: t,
                    cell: p,
                    subpage: ksr_mem::subpage_of(addr),
                    rmw: false,
                });
                let done_at = mem.access(p, addr, MemOp::ReleaseSubPage, t).done_at();
                reply!(p, Reply::Unit { at: done_at });
            }
            Request::Prefetch { addr, exclusive } => {
                let done_at = mem
                    .access(p, addr, MemOp::Prefetch { exclusive }, t)
                    .done_at();
                reply!(p, Reply::Unit { at: done_at });
            }
            Request::Poststore { addr } => {
                let done_at = mem.access(p, addr, MemOp::Poststore, t).done_at();
                reply!(p, Reply::Unit { at: done_at });
            }
            Request::SubcachePrefetch { addr } => {
                let done_at = mem.access(p, addr, MemOp::SubcachePrefetch, t).done_at();
                reply!(p, Reply::Unit { at: done_at });
            }
            Request::Spin { addr, mut pred } => match mem.access(p, addr, MemOp::Read, t) {
                Outcome::Done { done_at } => {
                    let value = mem.data_mut().read_u64(addr).expect("spin read");
                    if pred(value) {
                        tracer.emit_with(|| TraceEvent::SpinRead {
                            at: done_at,
                            cell: p,
                            addr,
                        });
                        reply!(p, Reply::Value { value, at: done_at });
                    } else {
                        let sp = ksr_mem::subpage_of(addr);
                        park!(p, sp, done_at, Request::Spin { addr, pred });
                    }
                }
                Outcome::BlockedOnAtomic { subpage } => {
                    park!(p, subpage, t, Request::Spin { addr, pred });
                }
                Outcome::AtomicFailed { .. } => unreachable!("reads cannot fail atomically"),
            },
            Request::Finish { .. } | Request::Aborted { .. } => {
                unreachable!("finish/abort are intercepted at receive time")
            }
        }

        // Visibility events wake parked processors for a costed retry.
        mem.drain_events_into(&mut events);
        for ev in events.drain(..) {
            if let Some(waiters) = parked.remove(&ev.subpage) {
                for (proc, parked_at) in waiters {
                    mem.unwatch(ev.subpage);
                    let wake_at = parked_at.max(ev.at);
                    tracer.emit_with(|| TraceEvent::LockHandoff {
                        at: wake_at,
                        cell: proc,
                        subpage: ev.subpage,
                    });
                    ready!(wake_at, proc);
                }
            }
        }
    }
    (end_at, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::program;

    #[test]
    fn single_program_runs_and_reports() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_words(8).unwrap();
        let report = m
            .run(vec![program(move |cpu| {
                cpu.write_u64(a, 7);
                cpu.compute(100);
                let v = cpu.read_u64(a);
                assert_eq!(v, 7);
            })])
            .expect("run");
        assert!(report.duration_cycles() > 100);
        assert_eq!(m.peek_u64(a), 7);
    }

    #[test]
    fn determinism_across_runs() {
        let run_once = || {
            let mut m = Machine::ksr1(99).unwrap();
            let a = m.alloc_subpage(8).unwrap();
            let r = m
                .run(
                    (0..8)
                        .map(|_| {
                            program(move |cpu: &mut Cpu| {
                                for _ in 0..20 {
                                    cpu.acquire_sub_page(a);
                                    let v = cpu.read_u64(a);
                                    cpu.write_u64(a, v + 1);
                                    cpu.release_sub_page(a);
                                    cpu.compute(50);
                                }
                            })
                        })
                        .collect(),
                )
                .expect("run");
            (r.duration_cycles(), r.proc_end.clone())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn atomic_counter_is_exact_under_contention() {
        let mut m = Machine::ksr1(5).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let procs = 16;
        let iters = 25;
        m.run(
            (0..procs)
                .map(|_| {
                    program(move |cpu: &mut Cpu| {
                        for _ in 0..iters {
                            cpu.acquire_sub_page(a);
                            let v = cpu.read_u64(a);
                            cpu.write_u64(a, v + 1);
                            cpu.release_sub_page(a);
                        }
                    })
                })
                .collect(),
        )
        .expect("run");
        assert_eq!(m.peek_u64(a), (procs * iters) as u64);
    }

    #[test]
    fn spin_until_observes_writer() {
        let mut m = Machine::ksr1(3).unwrap();
        let flag = m.alloc_subpage(8).unwrap();
        let data = m.alloc_subpage(8).unwrap();
        let r = m
            .run(vec![
                program(move |cpu| {
                    cpu.compute(5_000);
                    cpu.write_u64(data, 42);
                    cpu.write_u64(flag, 1);
                }),
                program(move |cpu| {
                    cpu.spin_until_eq(flag, 1);
                    let v = cpu.read_u64(data);
                    assert_eq!(v, 42, "flag ordering must publish data");
                }),
            ])
            .expect("run");
        // The spinner cannot have finished before the writer's flag write.
        assert!(r.proc_end[1] > 5_000);
    }

    #[test]
    fn blocked_access_waits_for_release() {
        let mut m = Machine::ksr1(7).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let r = m
            .run(vec![
                program(move |cpu| {
                    cpu.acquire_sub_page(a);
                    cpu.write_u64(a, 9);
                    cpu.compute(10_000);
                    cpu.release_sub_page(a);
                }),
                program(move |cpu| {
                    cpu.compute(500); // let proc 0 take the lock first
                    let v = cpu.read_u64(a); // blocks until release
                    assert_eq!(v, 9);
                }),
            ])
            .expect("run");
        assert!(
            r.proc_end[1] > 10_000,
            "reader must stall past the critical section: {}",
            r.proc_end[1]
        );
    }

    #[test]
    fn per_proc_flops_accounted() {
        let mut m = Machine::ksr1(1).unwrap();
        let r = m
            .run(vec![
                program(|cpu: &mut Cpu| cpu.flops(1000)),
                program(|cpu: &mut Cpu| cpu.flops(500)),
            ])
            .expect("run");
        assert_eq!(r.proc_flops, vec![1000, 500]);
        assert_eq!(r.total_flops(), 1500);
        // 1000 flops at 2/cycle = 500 cycles.
        assert_eq!(r.proc_end[0], 500);
    }

    #[test]
    fn consecutive_runs_share_machine_state() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_words(1).unwrap();
        let r1 = m
            .run(vec![program(move |cpu| cpu.write_u64(a, 5))])
            .expect("run");
        // Second run starts where the first ended, and the data persists.
        let r2 = m
            .run(vec![program(move |cpu| {
                assert_eq!(cpu.read_u64(a), 5);
            })])
            .expect("run");
        assert!(r2.started_at >= r1.finished_at);
        // Warm cache: that read is a cheap hit now.
        assert!(r2.duration_cycles() <= 30, "{}", r2.duration_cycles());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut m = Machine::ksr1(1).unwrap();
        let a = m.alloc_subpage(8).unwrap();
        let _ = m.run(vec![program(move |cpu| {
            cpu.spin_until_eq(a, 1); // nobody will ever write this
        })]);
    }

    #[test]
    fn deadlock_report_names_each_waiter() {
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = Machine::ksr1(1).unwrap();
            let a = m.alloc_subpage(8).unwrap();
            let _ = m.run(vec![
                program(move |cpu| {
                    cpu.spin_until_eq(a, 1); // nobody will ever write this
                }),
                program(move |cpu| {
                    cpu.compute(10);
                    cpu.spin_until_eq(a, 2); // nor this
                }),
            ]);
        }))
        .expect_err("two parked processors with no writer must deadlock");
        let msg = panic_message(&*payload);
        // The diagnostic must identify each waiter as a
        // (proc, sub-page, parked_at) triple, not just raw sub-page keys.
        assert!(msg.contains("(proc, sub-page, parked_at)"), "got: {msg}");
        assert!(msg.contains("(0, "), "waiter for proc 0 missing: {msg}");
        assert!(msg.contains("(1, "), "waiter for proc 1 missing: {msg}");
    }

    #[test]
    fn program_panic_propagates_its_own_message() {
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = Machine::ksr1(7).unwrap();
            let flag = m.alloc_subpage(8).unwrap();
            let _ = m.run(vec![
                program(move |cpu| {
                    cpu.compute(10);
                    let v = cpu.read_u64(flag);
                    assert_eq!(v, 99, "the simulated program's own diagnosis");
                }),
                // Parked forever on a flag the panicking peer was about to
                // write: without the Aborted protocol this peer dies with
                // a misleading "simulation deadlock" panic instead.
                program(move |cpu| {
                    cpu.spin_until_eq(flag, 1);
                }),
            ]);
        }))
        .expect_err("a panicking program must fail the run");
        let msg = panic_message(&*payload);
        assert!(
            msg.contains("the simulated program's own diagnosis"),
            "expected the program's assertion to surface, got: {msg}"
        );
        assert!(
            !msg.contains("deadlock"),
            "the program's panic must not be masked as a deadlock: {msg}"
        );
    }

    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map_or_else(|| "<non-string payload>".to_string(), |s| (*s).to_string())
            })
    }

    #[test]
    fn timer_interrupts_stretch_compute() {
        use crate::config::InterruptConfig;
        let cfg = MachineConfig::ksr1(1).with_interrupts(InterruptConfig {
            quantum_cycles: 1_000,
            duration_cycles: 100,
        });
        let mut m = Machine::new(cfg).unwrap();
        let r = m
            .run(vec![program(|cpu: &mut Cpu| cpu.compute(10_000))])
            .expect("run");
        // ~10 interrupts of 100 cycles land inside 10k cycles of work.
        assert!(r.duration_cycles() >= 10_900, "{}", r.duration_cycles());
        assert!(r.duration_cycles() <= 11_200, "{}", r.duration_cycles());
    }

    #[test]
    fn many_procs_distinct_data_pipelines() {
        // 16 processors each hammering their own sub-page: total time must
        // be far below 16x a single processor's (parallelism is real).
        let mut m = Machine::ksr1(11).unwrap();
        let addrs: Vec<u64> = (0..16).map(|_| m.alloc_subpage(8).unwrap()).collect();
        let solo = {
            let a = addrs[0];
            let mut m1 = Machine::ksr1(11).unwrap();
            let a1 = m1.alloc_subpage(8).unwrap();
            let _ = a;
            let r = m1
                .run(vec![program(move |cpu: &mut Cpu| {
                    for i in 0..200 {
                        cpu.write_u64(a1, i);
                    }
                })])
                .expect("run");
            r.duration_cycles()
        };
        let r = m
            .run(
                addrs
                    .iter()
                    .map(|&a| {
                        program(move |cpu: &mut Cpu| {
                            for i in 0..200 {
                                cpu.write_u64(a, i);
                            }
                        })
                    })
                    .collect(),
            )
            .expect("run");
        assert!(
            r.duration_cycles() < solo * 4,
            "16 procs on distinct data should not serialize: {} vs solo {solo}",
            r.duration_cycles()
        );
    }

    #[test]
    fn observer_scope_sees_machines_built_in_scope_only() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        {
            let _scope = ObserverScope::install(Arc::new(move |_m: &mut Machine| {
                seen2.fetch_add(1, Ordering::SeqCst);
            }));
            let _a = Machine::ksr1_scaled(1, 64).unwrap();
            let _b = Machine::ksr1_scaled(2, 64).unwrap();
        }
        // Scope dropped: further machines are unobserved.
        let _c = Machine::ksr1_scaled(3, 64).unwrap();
        assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn observer_scopes_nest_innermost_wins() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let outer = Arc::new(AtomicUsize::new(0));
        let inner = Arc::new(AtomicUsize::new(0));
        let (o2, i2) = (Arc::clone(&outer), Arc::clone(&inner));
        let _outer_scope = ObserverScope::install(Arc::new(move |_m: &mut Machine| {
            o2.fetch_add(1, Ordering::SeqCst);
        }));
        {
            let _inner_scope = ObserverScope::install(Arc::new(move |_m: &mut Machine| {
                i2.fetch_add(1, Ordering::SeqCst);
            }));
            let _m = Machine::ksr1_scaled(4, 64).unwrap();
        }
        let _m = Machine::ksr1_scaled(5, 64).unwrap();
        assert_eq!(inner.load(Ordering::SeqCst), 1, "inner scope shadowed");
        assert_eq!(outer.load(Ordering::SeqCst), 1, "outer resumes after pop");
    }

    #[test]
    fn observers_are_thread_local() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let _scope = ObserverScope::install(Arc::new(move |_m: &mut Machine| {
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        // A machine built on another thread must not trip this thread's
        // observer.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _m = Machine::ksr1_scaled(6, 64).unwrap();
            });
        });
        assert_eq!(seen.load(Ordering::SeqCst), 0);
        let _m = Machine::ksr1_scaled(7, 64).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn runs_respect_a_tiny_thread_budget() {
        // With a cap of 1, two 4-proc machines on two threads must still
        // both complete (the oversized-when-idle rule prevents deadlock;
        // the budget serializes them).
        crate::budget::set_thread_cap(1);
        std::thread::scope(|s| {
            for seed in [21u64, 22] {
                s.spawn(move || {
                    let mut m = Machine::ksr1_scaled(seed, 64).unwrap();
                    let a = m.alloc_subpage(8).unwrap();
                    m.run(
                        (0..4)
                            .map(|_| {
                                program(move |cpu: &mut Cpu| {
                                    cpu.fetch_add(a, 1);
                                })
                            })
                            .collect(),
                    )
                    .expect("run under tiny budget");
                    assert_eq!(m.peek_u64(a), 4);
                });
            }
        });
        crate::budget::set_thread_cap(crate::budget::DEFAULT_THREAD_CAP);
    }
}
